"""Fences, atomics, and what actually fixes the canonical bug.

The paper's §7 sketches fences as future work; this example walks the
full mitigation spectrum on both the abstract model and the machine:

1. *Do nothing* — the Theorem 6.2 baseline.
2. *Fence the critical section* (abstract model): an acquire barrier at
   distance k truncates the window; k = 0 makes every model as safe as
   SC — but SC itself is only 0.1667-safe, because the interleaving race
   is untouched.
3. *Fence on the machine*: same story mechanistically.
4. *Make the increment atomic* (machine): the only real fix — the window
   disappears entirely and the bug never manifests, under any model.

Run:  python examples/fences_and_fixes.py
"""

from __future__ import annotations

from repro.core import (
    PAPER_MODELS,
    fenced_non_manifestation,
    non_manifestation_probability,
)
from repro.reporting import render_table
from repro.sim import run_canonical_bug


def abstract_fence_sweep() -> None:
    rows = []
    for distance in (0, 1, 2, 4, 8, 32):
        row: dict[str, object] = {"fence distance k": distance}
        for model in PAPER_MODELS:
            row[f"Pr[bug] {model.name}"] = 1.0 - fenced_non_manifestation(
                model, distance
            ).value
        rows.append(row)
    unfenced = {
        model.name: 1.0 - non_manifestation_probability(model).value
        for model in PAPER_MODELS
    }
    rows.append({"fence distance k": "unfenced", **{
        f"Pr[bug] {name}": value for name, value in unfenced.items()
    }})
    print(render_table(rows, precision=6,
                       title="Abstract model: acquire fence at distance k (n = 2)"))
    print()
    print("k = 0 collapses every model onto SC — and no further: even with")
    print("no reordering at all, five of six interleavings still lose an")
    print("update. Fences fix the *memory model's* contribution only.")
    print()


def machine_mitigations() -> None:
    rows = []
    for model in ("SC", "TSO", "WO"):
        racy = run_canonical_bug(model, 2, trials=2_000, seed=21, body_length=8)
        fenced = run_canonical_bug(model, 2, trials=2_000, seed=21, body_length=8,
                                   fenced=True)
        atomic = run_canonical_bug(model, 2, trials=2_000, seed=21, body_length=8,
                                   atomic=True)
        rows.append(
            {
                "model": model,
                "racy": racy.manifestation.estimate,
                "fenced": fenced.manifestation.estimate,
                "atomic": atomic.manifestation.estimate,
            }
        )
    print(render_table(rows, precision=4,
                       title="Machine: Pr[bug] under each mitigation (n = 2)"))
    print()
    print("The atomic fetch-and-add is the only zero column: correctness")
    print("comes from atomicity, not ordering. The paper's reliability axis")
    print("measures how much *worse* a weak model makes an already-broken")
    print("program — not whether synchronisation can be skipped.")


def main() -> None:
    abstract_fence_sweep()
    machine_mitigations()


if __name__ == "__main__":
    main()
