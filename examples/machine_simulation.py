"""Run the canonical bug on the simulated multiprocessor.

The probabilistic model abstracts hardware away; this example runs the
§2.2 counter race on the *mechanistic* substrate — store-buffer cores for
TSO/PSO, an out-of-order core for WO — and shows:

* a single annotated execution (who read what, when, and why x ends at 1),
* manifestation rates per model, side by side with the abstract model,
* the §7 fence extension: fencing the critical section narrows the window
  under WO but cannot fix the race itself.

Run:  python examples/machine_simulation.py
"""

from __future__ import annotations

from repro.analysis import compare_model_and_machine
from repro.core import PAPER_MODELS
from repro.reporting import render_table
from repro.sim import (
    Machine,
    canonical_increment,
    run_canonical_bug,
)
from repro.stats import RandomSource


def show_one_execution() -> None:
    """Trace one racy execution under TSO with full access logging."""
    programs = [canonical_increment(0, [True, True]), canonical_increment(1, [True, True])]
    machine = Machine("TSO", programs, log_accesses=True, drain_probability=0.3)
    result = machine.run(RandomSource(12))
    print("One TSO execution of the counter race (x should end at 2):")
    for record in result.log:
        if record.location == "x":
            print(f"  {record}")
    print(f"  final x = {result.location('x')}"
          + ("   <- the bug manifested!" if result.location("x") < 2 else ""))
    print()


def main() -> None:
    show_one_execution()

    comparisons = [
        compare_model_and_machine(model, threads=2, trials=2_000, seed=3, body_length=8)
        for model in PAPER_MODELS
    ]
    print(render_table([comparison.row() for comparison in comparisons], precision=4,
                       title="Abstract model vs machine: Pr[bug], n = 2"))
    print()
    print("Absolute numbers differ (the machine's timing model is not the")
    print("paper's shift process) but the ordering matches: SC is safest and")
    print("the relaxed models cluster well above it.")
    print()

    fenced_rows = []
    for model in ("TSO", "WO"):
        loose = run_canonical_bug(model, threads=2, trials=2_000, seed=9, body_length=8)
        fenced = run_canonical_bug(model, threads=2, trials=2_000, seed=9, body_length=8,
                                   fenced=True)
        fenced_rows.append(
            {
                "model": model,
                "Pr[bug] unfenced": loose.manifestation.estimate,
                "Pr[bug] fenced": fenced.manifestation.estimate,
            }
        )
    print(render_table(fenced_rows, precision=4, title="Fences (§7 extension)"))
    print()
    print("Fences stop the *window* from widening but the interleaving race")
    print("remains — only a lock (or atomic RMW) fixes the bug.")


if __name__ == "__main__":
    main()
