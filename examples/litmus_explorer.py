"""Explore litmus tests: which outcomes can each memory model produce?

Litmus tests are the lingua franca of memory-model semantics.  This
example enumerates the classic shapes (store buffering, message passing,
load buffering, coherence, 2+2W, IRIW) under each paper model — exactly,
via the reordering+interleaving semantics of Table 1 — and prints:

* the allowed/forbidden verdict for each test's distinguished outcome,
* the full reachable-outcome set for one test under SC vs WO,
* a custom litmus test built from scratch with the same API.

Run:  python examples/litmus_explorer.py
"""

from __future__ import annotations

from repro.core import PAPER_MODELS, SC, TSO, WO
from repro.litmus import (
    ALL_TESTS,
    check_test,
    enumerate_outcomes,
    get_test,
    outcome_to_string,
)
from repro.reporting import render_table
from repro.sim import Load, Store, ThreadProgram


def verdict_matrix() -> None:
    rows = []
    for test in ALL_TESTS:
        row: dict[str, object] = {
            "test": test.name,
            "relaxed outcome": outcome_to_string(test.relaxed_outcome),
        }
        for model in PAPER_MODELS:
            verdict = check_test(test, model)
            row[model.name] = "allowed" if verdict.relaxed_reachable else "-"
        rows.append(row)
    print(render_table(rows, title="Relaxed outcomes per memory model"))
    print()


def outcome_sets() -> None:
    test = get_test("SB")
    print(f"{test.name}: {test.description}")
    for model in (SC, WO):
        outcomes = enumerate_outcomes(list(test.programs), model)
        print(f"  under {model.name}: {len(outcomes)} reachable outcomes")
        for outcome in sorted(outcomes):
            print(f"    {outcome_to_string(outcome)}")
    print()


def custom_litmus() -> None:
    """R-shape: one writer, one reader-then-writer on the same pair."""
    programs = [
        ThreadProgram("T0", (Store("x", value=1), Store("y", value=1))),
        ThreadProgram("T1", (Load("r1", "y"), Store("x", value=2))),
    ]
    print("Custom test R: T0 {ST x=1; ST y=1}  T1 {r1=LD y; ST x=2}")
    target_note = "r1=1 with final x=1 (T0's store to x lands after T1's)"
    for model in (SC, TSO, WO):
        outcomes = enumerate_outcomes(programs, model, observed_locations=("x",))
        exotic = (("T1:r1", 1), ("mem:x", 1))
        reachable = exotic in outcomes
        print(f"  {model.name}: {target_note} -> {'allowed' if reachable else 'forbidden'}")
    print()
    print("Only WO reaches it: T0's two stores must reorder *and* T1's load")
    print("must see y early — composition of two relaxations in one outcome.")


def main() -> None:
    verdict_matrix()
    outcome_sets()
    custom_litmus()


if __name__ == "__main__":
    main()
