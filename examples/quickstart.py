"""Quickstart: how likely is the canonical concurrency bug under each model?

This walks the library's public API end to end in a few lines each:

1. look at the memory models (Table 1 of the paper),
2. get each model's critical-window law (Theorem 4.1),
3. compute the two-thread bug probability (Theorem 6.2),
4. sanity-check one value with the end-to-end Monte-Carlo pipeline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.reporting import render_table


def main() -> None:
    # 1. The models, as relaxation sets -------------------------------------
    print(render_table(repro.table1_rows(), title="Memory models (Table 1)"))
    print()

    # 2. Critical-window growth laws (Theorem 4.1) --------------------------
    rows = []
    for gamma in range(5):
        row: dict[str, object] = {"gamma": gamma}
        for model in repro.PAPER_MODELS:
            row[model.name] = repro.window_distribution(model).pmf(gamma)
        rows.append(row)
    print(render_table(rows, precision=5,
                       title="Pr[gamma instructions open up inside the critical section]"))
    print()

    # 3. The headline numbers (Theorem 6.2): two racing threads -------------
    rows = []
    for model in repro.PAPER_MODELS:
        survive = repro.non_manifestation_probability(model)
        rows.append(
            {
                "model": model.name,
                "Pr[no bug]": survive.value,
                "Pr[bug manifests]": 1.0 - survive.value,
            }
        )
    print(render_table(rows, precision=6, title="Two threads racing on a counter"))
    print()
    print("Weaker model -> likelier bug;"
          " TSO lands much closer to WO than to SC, as the paper observes.")
    print()

    # 4. Trust but verify: simulate the whole pipeline for TSO --------------
    empirical = repro.estimate_non_manifestation(repro.TSO, n=2, trials=100_000, seed=1)
    exact = repro.non_manifestation_probability(repro.TSO).value
    print(f"TSO Pr[no bug]: exact/numeric {exact:.6f}, simulated {empirical}")
    print(f"agreement: {empirical.agrees_with(exact)}")


if __name__ == "__main__":
    main()
