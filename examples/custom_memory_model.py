"""Define and analyse your own memory model.

The paper analyses four points in the relaxation lattice; the library lets
you analyse *any* of the 16 relaxation sets, with any per-pair settle
probabilities (footnote 3's generalised form).  This example:

1. builds "TSO-lite" — TSO whose ST→LD swaps succeed rarely (s = 0.1), a
   stand-in for a machine with small store buffers;
2. builds an exotic model that relaxes only LD→LD and LD→ST (no store
   buffering at all, but aggressive load scheduling);
3. compares their window laws and two-thread bug probabilities against the
   paper's models, using the analytic route where it exists and the
   reference settling simulator where it does not.

Run:  python examples/custom_memory_model.py
"""

from __future__ import annotations

from repro.core import LD, ST  # instruction-type aliases
from repro.core import (
    PAPER_MODELS,
    TSO,
    MemoryModel,
    SettlingProcess,
    estimate_non_manifestation,
    non_manifestation_probability,
    window_distribution,
)
from repro.reporting import render_table
from repro.stats import RandomSource, run_categorical_trials


def main() -> None:
    # 1. TSO-lite: the TSO relaxation, rarely exercised ----------------------
    tso_lite = TSO.with_settle_probability(0.1)
    rows = []
    for model in (*PAPER_MODELS, tso_lite):
        name = "TSO(s=0.1)" if model is tso_lite else model.name
        window = window_distribution(model)
        survive = non_manifestation_probability(model)
        rows.append(
            {
                "model": name,
                "Pr[window grows]": 1.0 - window.pmf(0),
                "Pr[bug], n=2": 1.0 - survive.value,
            }
        )
    print(render_table(rows, precision=6, title="Analytic route (uniform s)"))
    print()
    print("TSO-lite sits almost on top of SC: with s = 0.1 the window rarely")
    print("opens, so the relaxation is statistically invisible.")
    print()

    # 2. An exotic relaxation set: loads scheduled freely, stores pinned ----
    load_scheduler = MemoryModel(
        "LD-sched",
        relaxed_pairs=[(LD, LD), (LD, ST)],
        description="loads reorder among themselves and past... nothing else",
    )
    # No closed form exists for this set; measure its window empirically with
    # the reference settler.
    empirical = run_categorical_trials(
        lambda source: SettlingProcess(load_scheduler)
        .sample_result(source, body_length=64)
        .window_growth,
        trials=40_000,
        seed=5,
    )
    rows = [
        {"gamma": gamma, "Pr[B_gamma] (simulated)": empirical.estimate(gamma)}
        for gamma in range(4)
    ]
    print(render_table(rows, precision=5, title="LD-sched window law (no closed form)"))
    print()
    print("This set is the mirror image of PSO: the critical load climbs")
    print("through *load* runs (LD/LD), and the (LD,ST) relaxation lets the")
    print("critical store chase it back down through them — so the window")
    print("law looks PSO-shaped even though the relaxed pairs are disjoint")
    print("from PSO's. The lattice position alone does not determine risk;")
    print("which pairs bracket the racy access pattern does.")
    print()

    # 3. End-to-end check for the custom model (slow path, small trials) ----
    result = estimate_non_manifestation(load_scheduler, n=2, trials=4_000, seed=7,
                                        body_length=32)
    print(f"LD-sched Pr[no bug] simulated end-to-end: {result}")
    print(f"SC exact for comparison:                  {1 / 6:.6f}")


if __name__ == "__main__":
    main()
