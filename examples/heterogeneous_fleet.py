"""Mixed fleets: what happens when threads run under different models?

Real systems mix core types (big.LITTLE, host + accelerator) and migrate
threads between them, so the homogeneous analysis of the paper's §6 is
only the boundary case.  This example uses the heterogeneous extension:

* all 2-thread mixes of the paper's models — exactly computed, showing
  the n = 2 averaging law,
* an SC→WO downgrade ladder at n = 4 — the near-constant per-thread cost,
* a Monte-Carlo cross-check with the shared-program coupling intact.

Run:  python examples/heterogeneous_fleet.py
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from repro.core import (
    PAPER_MODELS,
    SC,
    WO,
    estimate_heterogeneous_non_manifestation,
    heterogeneous_non_manifestation,
    non_manifestation_probability,
)
from repro.reporting import render_table


def pairwise_matrix() -> None:
    rows = []
    for left, right in combinations_with_replacement(PAPER_MODELS, 2):
        value = heterogeneous_non_manifestation([left, right]).value
        pure_mean = (
            non_manifestation_probability(left).value
            + non_manifestation_probability(right).value
        ) / 2
        rows.append(
            {
                "fleet": f"{left.name}+{right.name}",
                "Pr[A]": value,
                "mean of pures": pure_mean,
            }
        )
    print(render_table(rows, precision=6, title="All 2-thread mixes (exact)"))
    print()
    print("At n = 2 mixing is exactly arithmetic averaging: only each")
    print("thread's marginal window transform enters the formula.")
    print()


def downgrade_ladder() -> None:
    rows = []
    for weak_count in range(5):
        fleet = [WO] * weak_count + [SC] * (4 - weak_count)
        value = heterogeneous_non_manifestation(fleet).value
        rows.append(
            {
                "WO threads (of 4)": weak_count,
                "Pr[A]": value,
            }
        )
    rows[0]["step ratio"] = ""
    for previous, current in zip(rows, rows[1:]):
        current["step ratio"] = current["Pr[A]"] / previous["Pr[A]"]
    print(render_table(rows, precision=6, title="SC -> WO downgrades at n = 4"))
    print()
    print("Each downgraded thread multiplies Pr[A] by a near-constant")
    print("factor: no single weak core dominates, and none is free.")
    print()


def monte_carlo_check() -> None:
    fleet = [SC, WO, WO]
    exact = heterogeneous_non_manifestation(fleet).value
    empirical = estimate_heterogeneous_non_manifestation(fleet, trials=200_000, seed=8)
    print(f"SC+WO+WO: exact {exact:.6f}, simulated {empirical}")
    print(f"agreement: {empirical.agrees_with(exact)}")


def main() -> None:
    pairwise_matrix()
    downgrade_ladder()
    monte_carlo_check()


if __name__ == "__main__":
    main()
