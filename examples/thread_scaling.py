"""Thread scaling: does the memory model still matter at high core counts?

The paper's most surprising result (Theorem 6.3): as the number of racing
threads grows, every model's survival probability collapses like
e^{-n²(1+o(1))} with the *same* leading constant — so the relative
advantage of Sequential Consistency evaporates exactly when intuition says
it should matter most.

This example traces that collapse:

* ln Pr[A] per model over n (all parabolas of the same curvature),
* the normalised exponent −ln Pr[A]/n² converging to (3/2)·ln 2,
* the SC/WO log-ratio climbing to 1 while the raw survival ratio explodes
  (the gap vanishes *in proportion to the risk*, not absolutely).

Run:  python examples/thread_scaling.py
"""

from __future__ import annotations

from repro import RunConfig
from repro.analysis import (
    exponent_curve,
    exponent_gap_curve,
    limiting_exponent,
    thread_sweep,
)
from repro.reporting import ascii_plot, render_table

THREAD_COUNTS = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)

# All execution knobs travel in one validated record (docs/API.md,
# "RunConfig"): the sweep's grid points are independent, so two worker
# processes halve the wall time without touching any row value.
CONFIG = RunConfig(workers=2, retries=1)


def main() -> None:
    rows = thread_sweep(THREAD_COUNTS, config=CONFIG)
    print(render_table(rows, precision=3, title="ln Pr[A] per model"))
    print()

    curve = exponent_curve(THREAD_COUNTS)
    print(
        ascii_plot(
            [float(row["n"]) for row in curve],
            {
                name: [float(row[f"exponent {name}"]) for row in curve]
                for name in ("SC", "TSO", "PSO", "WO")
            },
            title=f"-ln Pr[A] / n^2  (common limit {limiting_exponent():.4f})",
        )
    )
    print()

    gap = exponent_gap_curve(THREAD_COUNTS, weak_model=__import__("repro").WO)
    print(render_table(gap, precision=4,
                       title="SC vs WO: relative gap vanishes, absolute gap grows"))
    print()
    first, last = gap[0], gap[-1]
    print(
        f"At n = {first['n']}: SC is {float(first['survival ratio']):.2f}x more "
        f"likely to survive; log-ratio {float(first['log-ratio']):.3f}."
    )
    print(
        f"At n = {last['n']}: the survival ratio is a meaningless "
        f"{float(last['survival ratio']):.2e}x (both sides are ~zero) while the "
        f"log-ratio is {float(last['log-ratio']):.4f} -> the models are "
        "indistinguishable relative to the overall risk."
    )
    print()
    print("Take-away: scaling out the thread count, not weakening the memory")
    print("model, is what destroys reliability — so the case for paying SC's")
    print("performance cost weakens as core counts grow.")


if __name__ == "__main__":
    main()
