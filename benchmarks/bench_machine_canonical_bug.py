"""E10 — the §2.2 canonical bug on the simulated multiprocessor.

The abstract model predicts (Theorem 6.2) that weaker models manifest the
race more often and (Theorem 6.3) that more threads overwhelm the model
choice.  This bench runs the *mechanistic* version — store-buffer and
out-of-order cores racing on a real simulated counter — and checks that
the machine agrees with the abstract model on every qualitative claim.
Absolute numbers differ by construction (the machine's timing is not the
shift process); who-wins and the thread trend must match.
"""

from __future__ import annotations

from conftest import show

from repro.analysis import compare_model_and_machine, ordering_consistent
from repro.core import PAPER_MODELS, get_model
from repro.reporting import render_table
from repro.sim import run_canonical_bug

TRIALS = 3_000


def test_machine_vs_model_ordering(run_once):
    def compute():
        return [
            compare_model_and_machine(model, threads=2, trials=TRIALS,
                                      seed=1212, body_length=8)
            for model in PAPER_MODELS
        ]

    comparisons = run_once(compute)
    show(render_table([comparison.row() for comparison in comparisons],
                      precision=4, title="E10: abstract vs machine Pr[bug], n = 2"))

    by_name = {comparison.model.name: comparison for comparison in comparisons}
    # SC is strictly safest on the machine, as the abstract model predicts.
    for weak in ("TSO", "PSO", "WO"):
        assert (
            by_name["SC"].machine.manifestation.high
            < by_name[weak].machine.manifestation.low
        ), weak
    # Full ranking agreement, allowing ties within MC noise + microarch blur
    # (the single-address canonical bug makes machine-PSO ~ machine-TSO).
    assert ordering_consistent(comparisons, tolerance=0.04)


def test_machine_thread_scaling(run_once):
    """More threads -> more manifestations, for strong and weak models alike,
    and the SC-vs-WO gap shrinks relative to the risk (Theorem 6.3's shape)."""

    def compute():
        rows = []
        for threads in (2, 3, 4, 6):
            sc = run_canonical_bug("SC", threads, TRIALS, seed=1313, body_length=8)
            wo = run_canonical_bug("WO", threads, TRIALS, seed=1313, body_length=8)
            rows.append(
                {
                    "n": threads,
                    "SC Pr[bug]": sc.manifestation.estimate,
                    "WO Pr[bug]": wo.manifestation.estimate,
                    "survival gap (SC - WO)": wo.manifestation.estimate
                    - sc.manifestation.estimate,
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=4, title="E10: machine thread scaling"))
    sc_curve = [float(row["SC Pr[bug]"]) for row in rows]
    wo_curve = [float(row["WO Pr[bug]"]) for row in rows]
    assert sc_curve == sorted(sc_curve)
    assert wo_curve == sorted(wo_curve)
    # The absolute SC advantage shrinks as both saturate towards 1.
    gaps = [float(row["survival gap (SC - WO)"]) for row in rows]
    assert gaps[-1] < gaps[0]


def test_machine_fence_extension(run_once):
    """§7: fences reduce (but do not eliminate) manifestation under WO."""

    def compute():
        loose = run_canonical_bug("WO", 2, TRIALS, seed=1414, body_length=8)
        fenced = run_canonical_bug("WO", 2, TRIALS, seed=1414, body_length=8,
                                   fenced=True)
        return loose, fenced

    loose, fenced = run_once(compute)
    show(
        render_table(
            [
                {"variant": "unfenced", "Pr[bug]": loose.manifestation.estimate},
                {"variant": "fenced", "Pr[bug]": fenced.manifestation.estimate},
            ],
            precision=4,
            title="E10: fence extension (WO, n = 2)",
        )
    )
    assert fenced.manifestation.estimate <= loose.manifestation.estimate
    assert fenced.manifestation.estimate > 0.0  # the race itself remains


def test_machine_window_measurement(run_once):
    """Theorem 4.1's shape, measured on the machine: SC's window is a
    deterministic point mass; the store-buffer models add geometric-ish
    tails with PSO < TSO (the footnote-4 twist); WO is widest."""
    from repro.sim import measure_critical_windows

    def compute():
        return {
            model: measure_critical_windows(model, threads=2, trials=1500,
                                            seed=1616, body_length=6)
            for model in ("SC", "TSO", "PSO", "WO")
        }

    measurements = run_once(compute)
    rows = []
    for model, measurement in measurements.items():
        interval = measurement.mean_duration
        rows.append(
            {
                "model": model,
                "mean window (cycles)": interval.mean,
                "CI": f"[{interval.low:.3f}, {interval.high:.3f}]",
                "deterministic": measurement.deterministic,
                "manifest w/o overlap": measurement.manifest_without_overlap,
            }
        )
    show(render_table(rows, precision=4, title="E10: measured critical windows"))

    assert measurements["SC"].deterministic
    means = {model: m.mean_duration.mean for model, m in measurements.items()}
    assert means["SC"] < means["PSO"] < means["TSO"] < means["WO"]
    # §3.2: a lost update requires overlapping windows — zero exceptions.
    assert all(m.manifest_without_overlap == 0 for m in measurements.values())


def test_machine_drain_rate_ablation(run_once):
    """The machine analogue of the settle probability s: slower store-buffer
    drains widen the vulnerability window under TSO."""

    def compute():
        rows = []
        for drain in (0.9, 0.5, 0.1):
            result = run_canonical_bug("TSO", 2, TRIALS, seed=1515, body_length=8,
                                       drain_probability=drain)
            rows.append({"drain prob": drain, "Pr[bug]": result.manifestation.estimate})
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=4, title="E10: drain-rate ablation (TSO)"))
    bugs = [float(row["Pr[bug]"]) for row in rows]
    assert bugs == sorted(bugs)  # slower drain (listed later) -> more bugs
