"""E20 — vectorized kernels: scalar reference vs whole-array NumPy throughput.

The :mod:`repro.kernels` subsystem claims that every Monte-Carlo hot
path has a whole-array formulation that is statistically equivalent to
the scalar reference (pinned by the tier-1 equivalence suite) and at
least an order of magnitude faster per core.  This bench quantifies the
second claim on the four kernel families:

* **settling** — Theorem 4.1 window growth: per-trial
  :func:`repro.core.settling.sample_window_growth` vs
  :func:`repro.kernels.window_growth_batch`;
* **shift** — Theorem 5.1 disjointness: per-trial
  :meth:`repro.core.shift.ShiftProcess.sample_event` vs
  :func:`repro.kernels.shift_disjoint_batch`;
* **joined** — the §6 pipeline: the scalar reference trial loop vs
  :func:`repro.kernels.non_manifestation_batch`;
* **fused** — the same §6 pipeline as a single fused pass
  (:func:`repro.kernels.non_manifestation_fused_batch`) vs the composed
  batch kernel at **equal trial counts**, tracked as ``fused_speedup``
  with a committed ``>= 1.3x`` floor (full mode);
* **machine** — the §2.2 race: the per-trial simulated multiprocessor vs
  :func:`repro.kernels.canonical_bug_batch`.

Each side is timed on its own budget (the scalar reference would take
minutes at the vectorized trial counts) and compared by *throughput*
(trials/second), so the speedup ratio is host-scale free.  The committed
floor: ``>= 10x`` on the settling and shift paths at 10^6 vectorized
trials.  Results land in ``BENCH_vectorized_kernels.json`` with the
speedups tracked for ``check_regression.py`` (the CI 25% gate).

In smoke mode (``REPRO_BENCH_SMOKE=1``) the budgets shrink to seconds
and the absolute >=10x floor is *not* asserted (tiny batches are
dominated by NumPy dispatch overhead); the regression gate still
compares the tracked ratios against this committed baseline.
"""

from __future__ import annotations

import os
import time

from conftest import results_path, scaled, show, smoke_mode

from repro.core import TSO, WINDOW_LENGTH_OFFSET
from repro.core.settling import sample_window_growth
from repro.core.shift import DEFAULT_SHIFT_RATIO, ShiftProcess
from repro.kernels import (
    non_manifestation_batch,
    non_manifestation_fused_batch,
    non_manifestation_scalar_batch,
    shift_disjoint_batch,
    window_growth_batch,
)
from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.stats import RandomSource

SEED = 20_011
REPEATS = 3
BODY_LENGTH = 8
SHIFT_LENGTHS = (2, 2)

#: The committed claim (full mode only): vectorized settling and shift
#: throughput must be at least this factor over the scalar reference.
SPEEDUP_FLOOR = 10.0

#: The fused-chain claim (full mode only): the single-pass joined kernel
#: must beat the composed batch kernel by this factor at equal trials.
FUSED_FLOOR = 1.3


def _throughput(name: str, trials: int, runner, rows: list[dict[str, object]]):
    """Best-of-``REPEATS`` throughput: minimum time is the noise-robust
    estimator (scheduling hiccups only ever add to a leg's wall time)."""
    seconds = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        runner()
        seconds.append(time.perf_counter() - start)
    best = max(min(seconds), 1e-9)
    rate = trials / best
    rows.append({"path": name, "trials": trials,
                 "seconds": round(best, 4),
                 "trials_per_second": round(rate, 1)})
    return rate


def _bench_settling(rows) -> float:
    scalar_trials = scaled(20_000, 200)
    vector_trials = scaled(1_000_000, 5_000)

    def scalar():
        source = RandomSource(SEED)
        for _ in range(scalar_trials):
            sample_window_growth(TSO, source, body_length=BODY_LENGTH)

    def vectorized():
        window_growth_batch(TSO, RandomSource(SEED), vector_trials,
                            body_length=BODY_LENGTH)

    scalar_rate = _throughput("settling/scalar", scalar_trials, scalar, rows)
    vector_rate = _throughput("settling/vectorized", vector_trials,
                              vectorized, rows)
    return vector_rate / scalar_rate


def _bench_shift(rows) -> float:
    scalar_trials = scaled(100_000, 500)
    vector_trials = scaled(1_000_000, 5_000)
    process = ShiftProcess(DEFAULT_SHIFT_RATIO)

    def scalar():
        source = RandomSource(SEED)
        for _ in range(scalar_trials):
            process.sample_event(source, SHIFT_LENGTHS)

    def vectorized():
        shift_disjoint_batch(RandomSource(SEED), vector_trials, SHIFT_LENGTHS,
                             DEFAULT_SHIFT_RATIO)

    scalar_rate = _throughput("shift/scalar", scalar_trials, scalar, rows)
    vector_rate = _throughput("shift/vectorized", vector_trials,
                              vectorized, rows)
    return vector_rate / scalar_rate


def _bench_joined(rows) -> float:
    scalar_trials = scaled(4_000, 50)
    vector_trials = scaled(400_000, 2_000)
    options = dict(model=TSO, n=2, store_probability=0.5,
                   beta=DEFAULT_SHIFT_RATIO, body_length=BODY_LENGTH,
                   critical_section_length=WINDOW_LENGTH_OFFSET)

    scalar_rate = _throughput(
        "joined/scalar", scalar_trials,
        lambda: non_manifestation_scalar_batch(
            RandomSource(SEED), scalar_trials, **options),
        rows)
    vector_rate = _throughput(
        "joined/vectorized", vector_trials,
        lambda: non_manifestation_batch(
            RandomSource(SEED), vector_trials, **options),
        rows)
    return vector_rate / scalar_rate


def _bench_fused(rows) -> float:
    # Equal trial counts on both sides: the fused chain replaces the
    # composed kernel like-for-like, so the ratio is a direct measure of
    # what fusion (inversion sampling + in-place transforms) buys.  The
    # smoke budget stays at 20k trials — below that, NumPy dispatch
    # overhead dilutes the ratio the regression gate compares.
    trials = scaled(400_000, 20_000)
    options = dict(model=TSO, n=2, store_probability=0.5,
                   beta=DEFAULT_SHIFT_RATIO, body_length=BODY_LENGTH,
                   critical_section_length=WINDOW_LENGTH_OFFSET)

    composed_rate = _throughput(
        "joined/composed", trials,
        lambda: non_manifestation_batch(
            RandomSource(SEED), trials, **options),
        rows)
    fused_rate = _throughput(
        "joined/fused", trials,
        lambda: non_manifestation_fused_batch(
            RandomSource(SEED), trials, **options),
        rows)
    return fused_rate / composed_rate


def _bench_machine(rows) -> float:
    from repro.sim import run_canonical_bug

    # Smoke budgets stay large enough that per-call engine overhead and
    # NumPy dispatch don't dominate: the tracked speedup must be
    # comparable to the committed full-budget baseline.
    scalar_trials = scaled(1_000, 200)
    vector_trials = scaled(50_000, 30_000)

    def run(backend: str, trials: int):
        return run_canonical_bug("TSO", 2, trials, seed=SEED, workers=1,
                                 shards=1, body_length=BODY_LENGTH,
                                 backend=backend)

    scalar_rate = _throughput(
        "machine/scalar", scalar_trials,
        lambda: run("scalar", scalar_trials), rows)
    vector_rate = _throughput(
        "machine/vectorized", vector_trials,
        lambda: run("vectorized", vector_trials), rows)
    return vector_rate / scalar_rate


def test_vectorized_kernel_speedups(run_once):
    def compute():
        rows: list[dict[str, object]] = []
        speedups = {
            "settling_speedup": _bench_settling(rows),
            "shift_speedup": _bench_shift(rows),
            "joined_speedup": _bench_joined(rows),
            "fused_speedup": _bench_fused(rows),
            "machine_speedup": _bench_machine(rows),
        }
        return rows, speedups

    rows, speedups = run_once(compute)
    show(render_table(rows, precision=1,
                      title="E20: scalar vs vectorized kernel throughput"))
    show("[kernels] " + ", ".join(
        f"{name.removesuffix('_speedup')} {value:.1f}x"
        for name, value in speedups.items()
    ) + f" (floors, full mode: {SPEEDUP_FLOOR}x settling/shift, "
        f"{FUSED_FLOOR}x fused)")

    write_rows(
        results_path("vectorized_kernels"),
        rows,
        metadata={
            "experiment": "vectorized_kernels",
            "seed": SEED,
            "repeats": REPEATS,
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "speedup_floor": SPEEDUP_FLOOR,
            "fused_speedup_floor": FUSED_FLOOR,
            "tracked": {
                name: {"value": round(value, 2), "higher_is_better": True}
                for name, value in speedups.items()
            },
        },
    )

    for name, value in speedups.items():
        assert value > 1.0, (
            f"{name}: the vectorized kernel is *slower* than the scalar "
            f"reference ({value:.2f}x)"
        )
    if not smoke_mode():
        for name in ("settling_speedup", "shift_speedup"):
            assert speedups[name] >= SPEEDUP_FLOOR, (
                f"{name} {speedups[name]:.1f}x below the committed "
                f"{SPEEDUP_FLOOR}x floor"
            )
        assert speedups["fused_speedup"] >= FUSED_FLOOR, (
            f"fused chain only {speedups['fused_speedup']:.2f}x over the "
            f"composed kernel at equal trials (floor {FUSED_FLOOR}x)"
        )
