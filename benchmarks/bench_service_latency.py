"""E22 — the estimation service: cold vs warm submit-to-result latency.

``repro serve`` (:mod:`repro.service`, docs/SERVICE.md) fronts the
sharded engine with an HTTP job API whose whole pitch is that repeated
questions are cheap: identical concurrent submissions collapse to one
job (request dedup on the v2 identity), and even a dedup-opt-out
resubmission executes zero shards because its shards land on the shared
content-addressed store.  This bench measures that end to end — through
real HTTP, the job queue, polling, and manifest validation, not a
hand-picked fast path.

Three phases against one in-process server on an ephemeral port:

* **cold** — N distinct jobs (distinct seeds), submitted serially;
  each latency is submit → ``wait`` → validated result.
* **warm** — the same N jobs resubmitted with ``dedup: false``: fresh
  job ids, zero shards executed (asserted via the manifest's
  ``run.cache_hits`` / ``executed_shards``), identical numbers.
* **mixed throughput** — 2N concurrent resubmissions from a small
  thread pool, half dedup absorbs and half warm fresh jobs.

The tracked regression metric is ``warm_p50_speedup`` capped at ``8x``
(like BENCH_cache_reuse's): raw cold/warm gaps are host-noisy, the gate
should pin "warm answers stay an order of magnitude cheaper", not a
200x-vs-400x coin flip.  Latency percentiles and throughput are
recorded for the curious but untracked (absolute ms are pure host
facts).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import results_path, scaled, show, smoke_mode

from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.runconfig import RunConfig
from repro.service import ServiceClient, serve

SEED0 = 22_011
SHARDS = 4

#: Tracked-metric cap — keeps the committed baseline host-independent.
SPEEDUP_CAP = 8.0

#: Full-mode floor: a warm resubmission must beat its cold twin by this.
SPEEDUP_FLOOR = 3.0

#: Poll fast enough that waiting, not polling, dominates warm latency.
POLL_SECONDS = 0.002


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _submit_and_wait(client: ServiceClient, params: dict, *,
                     dedup: bool) -> tuple[float, dict]:
    start = time.perf_counter()
    submitted = client.submit("non_manifestation", params,
                              config={"shards": SHARDS}, dedup=dedup)
    job_id = submitted["job"]["id"]
    record = client.wait(job_id, timeout=300.0, poll_seconds=POLL_SECONDS)
    assert record["state"] == "done", record.get("error")
    result = client.result(job_id)
    return time.perf_counter() - start, result


def test_service_latency(run_once):
    trials = scaled(400_000, 160_000)
    jobs = scaled(12, 8)
    param_sets = [{"model": "TSO", "trials": trials, "seed": SEED0 + i}
                  for i in range(jobs)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as state:
        server = serve("127.0.0.1", 0, state,
                       default_config=RunConfig(), job_workers=1)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(server.url)
        try:
            def run_phases():
                cold = [_submit_and_wait(client, params, dedup=True)
                        for params in param_sets]
                warm = [_submit_and_wait(client, params, dedup=False)
                        for params in param_sets]
                mixed_start = time.perf_counter()
                with ThreadPoolExecutor(max_workers=4) as pool:
                    futures = [pool.submit(_submit_and_wait, client, params,
                                           dedup=dedup)
                               for dedup in (True, False)
                               for params in param_sets]
                    mixed = [future.result() for future in futures]
                mixed_seconds = time.perf_counter() - mixed_start
                return cold, warm, mixed, mixed_seconds

            cold, warm, mixed, mixed_seconds = run_once(run_phases)
            metrics = client.metrics()
        finally:
            server.shutdown()
            server.server_close()
            server.service.shutdown(drain_seconds=1.0)

    # Warm jobs must have computed nothing — every shard a cache hit —
    # and returned the same numbers as their cold twins.
    for (_, cold_result), (_, warm_result) in zip(cold, warm):
        warm_run = warm_result["manifest"]["runs"][0]
        assert warm_run["metrics"]["run.cache_hits"]["value"] == SHARDS
        assert warm_run["execution"]["executed_shards"] == 0
        assert warm_result["result"] == cold_result["result"], (
            "warm resubmission diverged from its cold twin"
        )
    # The dedup half of the mixed phase collapsed onto finished jobs.
    deduped = metrics["service.jobs_deduped"]["value"]
    assert deduped >= jobs, metrics

    cold_s = [seconds for seconds, _ in cold]
    warm_s = [seconds for seconds, _ in warm]
    mixed_s = [seconds for seconds, _ in mixed]
    speedup = _percentile(cold_s, 0.5) / max(_percentile(warm_s, 0.5), 1e-9)
    throughput = len(mixed) / max(mixed_seconds, 1e-9)

    rows = [
        {"phase": "cold (distinct jobs)", "jobs": len(cold_s),
         "p50_ms": round(_percentile(cold_s, 0.5) * 1e3, 2),
         "p99_ms": round(_percentile(cold_s, 0.99) * 1e3, 2),
         "total_s": round(sum(cold_s), 3)},
        {"phase": "warm (dedup off, cached shards)", "jobs": len(warm_s),
         "p50_ms": round(_percentile(warm_s, 0.5) * 1e3, 2),
         "p99_ms": round(_percentile(warm_s, 0.99) * 1e3, 2),
         "total_s": round(sum(warm_s), 3)},
        {"phase": "mixed concurrent (dedup + warm)", "jobs": len(mixed_s),
         "p50_ms": round(_percentile(mixed_s, 0.5) * 1e3, 2),
         "p99_ms": round(_percentile(mixed_s, 0.99) * 1e3, 2),
         "total_s": round(mixed_seconds, 3)},
    ]
    show(render_table(rows, precision=3,
                      title="E22: service submit-to-result latency"))
    show(f"[service] warm p50 speedup {speedup:.1f}x "
         f"(floor {SPEEDUP_FLOOR}x full mode, tracked capped at "
         f"{SPEEDUP_CAP}x) · mixed throughput {throughput:.1f} jobs/s · "
         f"deduped {deduped}")

    write_rows(
        results_path("service_latency"),
        rows,
        metadata={
            "experiment": "service_latency",
            "seed": SEED0,
            "shards": SHARDS,
            "trials": trials,
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "speedup_floor": SPEEDUP_FLOOR,
            "warm_p50_speedup_raw": round(speedup, 2),
            "mixed_throughput_jobs_per_s": round(throughput, 1),
            "tracked": {
                "warm_p50_speedup": {
                    "value": round(min(speedup, SPEEDUP_CAP), 2),
                    "higher_is_better": True,
                },
            },
        },
    )

    assert speedup > 1.0, (
        f"warm service jobs are slower than cold ({speedup:.2f}x)"
    )
    if not smoke_mode():
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm p50 speedup {speedup:.1f}x below the committed "
            f"{SPEEDUP_FLOOR}x floor"
        )
