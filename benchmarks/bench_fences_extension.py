"""E13 — §7 fences: one-way barriers in the settling model.

The paper sketches acquire/release fences as future work and conjectures
that *"adding fences will not significantly change the main conclusions"*.
This bench implements the sketch and tests the conjecture:

* exact fenced window laws vs the fenced reference simulator,
* Pr[A] as a function of the fence distance k: k = 0 collapses every
  model onto SC's 1/6; k → ∞ recovers the unfenced Theorem 6.2 values;
  the model *ordering* is preserved at every k (the conjecture, part 1),
* the Theorem 6.3 exponent is untouched by any fixed fence distance
  (the conjecture, part 2).
"""

from __future__ import annotations

import math

import pytest
from conftest import show

from repro.core import (
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    fenced_non_manifestation,
    fenced_window_distribution,
    log_disjointness_iid,
    non_manifestation_probability,
    sample_fenced_window_growth,
)
from repro.reporting import render_table
from repro.stats import run_categorical_trials

DISTANCES = (0, 1, 2, 4, 8, 16, 48)


def test_fenced_window_law_vs_simulator(run_once):
    def compute():
        results = {}
        for model in (TSO, WO):
            results[model.name] = run_categorical_trials(
                lambda source, m=model: sample_fenced_window_growth(
                    m, source, fence_distance=3, body_length=48
                ),
                trials=40_000,
                seed=1818,
            )
        return results

    simulated = run_once(compute)
    rows = []
    for name in ("TSO", "WO"):
        model = TSO if name == "TSO" else WO
        exact = fenced_window_distribution(model, 3)
        for gamma in range(4):
            rows.append(
                {
                    "model": name,
                    "gamma": gamma,
                    "exact": exact.pmf(gamma),
                    "simulated": simulated[name].estimate(gamma),
                }
            )
            assert simulated[name].probability(gamma).contains(exact.pmf(gamma)), (
                name,
                gamma,
            )
    show(render_table(rows, precision=5, title="E13: fenced window law (k = 3)"))


def test_fence_distance_sweep(benchmark):
    def sweep():
        rows = []
        for distance in DISTANCES:
            row: dict[str, object] = {"fence distance": distance}
            for model in PAPER_MODELS:
                row[model.name] = fenced_non_manifestation(model, distance).value
            rows.append(row)
        return rows

    rows = benchmark(sweep)
    show(render_table(rows, precision=6, title="E13: Pr[A] vs fence distance, n = 2"))

    # k = 0: every model is SC.
    for model in PAPER_MODELS:
        assert rows[0][model.name] == pytest.approx(1 / 6)
    # k large: the unfenced Theorem 6.2 values.
    for model in PAPER_MODELS:
        unfenced = non_manifestation_probability(model).value
        assert rows[-1][model.name] == pytest.approx(unfenced, abs=1e-6)
    # The conjecture: ordering preserved at every distance, and Pr[A] is
    # monotone non-increasing in the distance for every model.
    for row in rows:
        assert (
            row["WO"] <= row["TSO"] <= row["PSO"] <= row["SC"] + 1e-12
        ), row["fence distance"]
    for model in PAPER_MODELS:
        series = [float(row[model.name]) for row in rows]
        assert series == sorted(series, reverse=True), model.name


def test_fences_do_not_change_asymptotics(benchmark):
    """Part 2 of the conjecture: any fixed fence distance leaves the
    Theorem 6.3 exponent at (3/2)·ln 2."""

    def exponents():
        rows = []
        for n in (8, 32, 96):
            row: dict[str, object] = {"n": n}
            for distance in (2, 8):
                growth = fenced_window_distribution(WO, distance)
                row[f"WO exponent (k={distance})"] = -log_disjointness_iid(growth, n) / n**2
            row["unfenced WO exponent"] = -log_disjointness_iid(
                fenced_window_distribution(WO, 64), n
            ) / n**2
            rows.append(row)
        return rows

    rows = benchmark(exponents)
    show(render_table(rows, precision=5, title="E13: fenced Theorem 6.3 exponents"))
    limit = 1.5 * math.log(2)
    final = rows[-1]
    for key, value in final.items():
        if key != "n":
            assert abs(float(value) - limit) < 0.12 * limit, key
