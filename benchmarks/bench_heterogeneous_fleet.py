"""E14 — heterogeneous fleets: threads under different memory models.

Theorem 6.1 needs identical marginals; this bench exercises the exact
order-conditioned extension for mixed fleets and validates it end to end:

* homogeneous fleets reproduce the Theorem 6.2 route,
* at n = 2 mixing is *exactly arithmetic averaging* of the pure values,
* at n = 3 downgrading threads one by one interpolates between all-SC and
  all-WO with a near-constant per-thread factor,
* the shared-program Monte Carlo agrees with the exact route for every
  independent-window fleet.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    SC,
    TSO,
    WO,
    estimate_heterogeneous_non_manifestation,
    heterogeneous_non_manifestation,
    non_manifestation_probability,
)
from repro.reporting import render_table


def _fleet_name(fleet) -> str:
    return "+".join(model.name for model in fleet)


def test_heterogeneous_exact_vs_monte_carlo(run_once):
    fleets = [[SC, WO], [SC, TSO], [WO, TSO], [SC, SC, WO], [SC, WO, WO]]

    def compute():
        rows = []
        for index, fleet in enumerate(fleets):
            exact = heterogeneous_non_manifestation(fleet).value
            empirical = estimate_heterogeneous_non_manifestation(
                fleet, trials=200_000, seed=1919 + index
            )
            rows.append(
                {
                    "fleet": _fleet_name(fleet),
                    "exact": exact,
                    "monte carlo": empirical.estimate,
                    "agrees": empirical.agrees_with(exact),
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=6, title="E14: mixed fleets, exact vs MC"))
    assert all(row["agrees"] for row in rows)


def test_two_thread_mixing_is_averaging(benchmark):
    def compute():
        mixed = heterogeneous_non_manifestation([SC, WO]).value
        sc = non_manifestation_probability(SC).value
        wo = non_manifestation_probability(WO).value
        return mixed, sc, wo

    mixed, sc, wo = benchmark(compute)
    show(
        f"Pr[A(SC+WO)] = {mixed:.6f}; arithmetic mean of pures = {(sc + wo) / 2:.6f}"
    )
    assert mixed == pytest.approx((sc + wo) / 2, rel=1e-9)


def test_downgrade_ladder(benchmark):
    """Replacing SC threads with WO threads one at a time, n = 3."""

    def ladder():
        rows = []
        fleets = [[SC, SC, SC], [SC, SC, WO], [SC, WO, WO], [WO, WO, WO]]
        previous = None
        for fleet in fleets:
            value = heterogeneous_non_manifestation(fleet).value
            ratio = value / previous if previous is not None else float("nan")
            rows.append(
                {
                    "fleet": _fleet_name(fleet),
                    "Pr[A]": value,
                    "step ratio": ratio,
                }
            )
            previous = value
        return rows

    rows = benchmark(ladder)
    show(render_table(rows, precision=6, title="E14: SC -> WO downgrade ladder, n = 3"))
    values = [float(row["Pr[A]"]) for row in rows]
    assert values == sorted(values, reverse=True)
    # Near-constant per-downgrade factor (log-linear interpolation):
    ratios = [float(row["step ratio"]) for row in rows[1:]]
    assert max(ratios) - min(ratios) < 0.06
    # Endpoints match the homogeneous routes.
    assert values[0] == pytest.approx(non_manifestation_probability(SC, n=3).value, rel=1e-9)
    assert values[-1] == pytest.approx(non_manifestation_probability(WO, n=3).value, rel=1e-9)
