"""Performance benchmarks for the library's computational kernels.

Unlike the experiment benches (E1–E15), these measure raw throughput of
the hot paths — useful for catching performance regressions and for
sizing Monte-Carlo budgets.  pytest-benchmark's default multi-round
timing applies (these kernels are cheap enough to run repeatedly).
"""

from __future__ import annotations

from repro.core import (
    TSO,
    WO,
    SettlingProcess,
    batch_disjoint,
    disjointness_probability,
    generate_program,
    run_length_distribution,
    sample_growth_matrix,
    tso_window_distribution,
    window_distribution,
)
from repro.stats import RandomSource


def test_kernel_settle_reference(benchmark):
    """Full settling of a 96-instruction program under TSO."""
    source = RandomSource(1)
    program = generate_program(96, source)
    process = SettlingProcess(TSO)

    benchmark(lambda: process.settle(program, source))


def test_kernel_settle_weak_ordering(benchmark):
    """Full settling under WO (more swaps per round than TSO)."""
    source = RandomSource(2)
    program = generate_program(96, source)
    process = SettlingProcess(WO)

    benchmark(lambda: process.settle(program, source))


def test_kernel_growth_matrix_tso(benchmark):
    """Vectorised shared-program growth sampling: 4096 trials x 4 threads."""
    source = RandomSource(3)

    benchmark(lambda: sample_growth_matrix(TSO, source, trials=4096, threads=4))


def test_kernel_growth_matrix_wo(benchmark):
    source = RandomSource(4)

    benchmark(lambda: sample_growth_matrix(WO, source, trials=4096, threads=4))


def test_kernel_run_length_distribution(benchmark):
    """The exact-numeric Lemma 4.2 solve (matrix iteration)."""
    benchmark(run_length_distribution)


def test_kernel_window_distribution_tso(benchmark):
    """The full TSO Theorem 4.1 law (chain solve + fold)."""
    benchmark(tso_window_distribution)


def test_kernel_batch_disjoint(benchmark):
    """Vectorised overlap checking: 8192 trials x 8 segments."""
    source = RandomSource(5)
    shifts = source.geometric_array(0.5, (8192, 8))
    lengths = source.geometric_array(0.5, (8192, 8)) + 2

    benchmark(lambda: batch_disjoint(shifts, lengths))


def test_kernel_exact_disjointness_n8(benchmark):
    """Theorem 5.1's 8!-term enumeration."""
    lengths = [2, 3, 1, 4, 2, 0, 5, 2]

    benchmark(lambda: disjointness_probability(lengths))


def test_kernel_window_dispatch(benchmark):
    """The cached-free analytic dispatcher for all four models."""
    from repro.core import PAPER_MODELS

    def all_models():
        return [window_distribution(model) for model in PAPER_MODELS]

    benchmark(all_models)
