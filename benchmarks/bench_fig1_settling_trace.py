"""E2 — Figure 1: an instantiation of the settling process under TSO.

Regenerates the round-by-round settling trace the figure draws, checks its
structural properties (loads settle upward past stores only; stores are
pinned; the critical pair ends adjacent-or-separated-by-stores), and times
the traced settler.
"""

from __future__ import annotations

from conftest import show

from repro.core import TSO, SettlingProcess, program_from_types
from repro.stats import RandomSource
from repro.viz import describe_settling, render_settling_trace

#: A body shaped like the figure's (mostly stores with interspersed loads).
FIGURE_BODY = "SLSSS"


def _trace_once(seed: int = 11):
    program = program_from_types(FIGURE_BODY)
    return SettlingProcess(TSO).settle(program, RandomSource(seed), record_trace=True)


def test_figure1_trace(benchmark):
    result = benchmark(_trace_once)
    show(render_settling_trace(result))
    show("final order: " + describe_settling(result))

    program = result.program
    assert len(result.trace) == program.length
    # TSO pins stores: non-critical stores keep their relative order.
    stores = [
        index
        for index in range(1, program.length + 1)
        if program.type_of(index).mnemonic == "ST"
        and not program.instruction(index).is_critical
    ]
    positions = [result.position_of(index) for index in stores]
    assert positions == sorted(positions)
    # The instructions inside the critical window (exclusive) are stores the
    # critical load climbed past.
    for position in result.window_indices()[1:-1]:
        index = result.order[position - 1]
        assert program.type_of(index).mnemonic == "ST"


def test_figure1_windows_over_many_seeds(benchmark):
    """The bottom-of-figure observation: the last instructions form the
    critical window; across seeds its growth matches Pr[B_γ > 0] = 1/3."""

    def grown_fraction() -> float:
        grown = 0
        trials = 3000
        source = RandomSource(2)
        for _ in range(trials):
            result = SettlingProcess(TSO).sample_result(source.child(), body_length=48)
            grown += result.window_growth > 0
        return grown / trials

    fraction = benchmark(grown_fraction)
    show(f"Pr[window grew] measured {fraction:.4f} vs analytic 1/3 = {1 / 3:.4f}")
    assert abs(fraction - 1 / 3) < 0.03
