"""E15 — store atomicity: checking the paper's §2.1 scoping decision.

The paper studies instruction reordering and "ignores store atomicity,
which is tangential to our present analysis".  This bench enumerates the
classic litmus tests under **SC ordering with non-atomic stores** and
shows the two axes are genuinely orthogonal:

* non-atomicity alone re-opens SB and IRIW (no reordering involved),
* per-writer FIFO propagation keeps MP/LB/CoRR closed,
* composing the axes (WO ordering + non-atomic stores) reaches a strict
  superset of either alone.
"""

from __future__ import annotations

from conftest import show

from repro.core import SC, WO
from repro.litmus import enumerate_outcomes, enumerate_outcomes_non_atomic, get_test
from repro.reporting import render_table

TESTS = ("SB", "MP", "LB", "CoRR", "IRIW", "WRC")


def _project(outcomes, reference):
    keys = {key for key, _ in reference}
    return {
        tuple(sorted((key, value) for key, value in outcome if key in keys))
        for outcome in outcomes
    }


def _reachable(test, model, non_atomic: bool) -> bool:
    enumerate_fn = enumerate_outcomes_non_atomic if non_atomic else enumerate_outcomes
    outcomes = enumerate_fn(list(test.programs), model)
    return test.relaxed_outcome in _project(outcomes, test.relaxed_outcome)


def test_atomicity_axis_matrix(run_once):
    def compute():
        rows = []
        for name in TESTS:
            test = get_test(name)
            rows.append(
                {
                    "test": name,
                    "SC + atomic": _reachable(test, SC, non_atomic=False),
                    "SC + non-atomic": _reachable(test, SC, non_atomic=True),
                    "WO + atomic": _reachable(test, WO, non_atomic=False),
                    "WO + non-atomic": _reachable(test, WO, non_atomic=True),
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, title="E15: relaxed outcome reachable? (ordering x atomicity)"))
    by_test = {str(row["test"]): row for row in rows}

    # SC + atomic memory forbids everything (the baseline).
    assert not any(
        row["SC + atomic"] for row in rows
    )
    # Non-atomicity alone re-opens exactly the multi-copy tests.
    assert by_test["SB"]["SC + non-atomic"]
    assert by_test["IRIW"]["SC + non-atomic"]
    assert by_test["WRC"]["SC + non-atomic"]
    assert not by_test["MP"]["SC + non-atomic"]
    assert not by_test["LB"]["SC + non-atomic"]
    assert not by_test["CoRR"]["SC + non-atomic"]
    # Composition dominates each axis alone.
    for row in rows:
        assert row["WO + non-atomic"] >= row["WO + atomic"]
        assert row["WO + non-atomic"] >= row["SC + non-atomic"]


def test_non_atomic_outcome_counts_monotone(run_once):
    """Outcome sets grow from (SC, atomic) to (WO, non-atomic)."""

    def compute():
        rows = []
        for name in ("SB", "MP", "LB"):
            test = get_test(name)
            rows.append(
                {
                    "test": name,
                    "SC atomic": len(enumerate_outcomes(list(test.programs), SC)),
                    "SC non-atomic": len(
                        enumerate_outcomes_non_atomic(list(test.programs), SC)
                    ),
                    "WO non-atomic": len(
                        enumerate_outcomes_non_atomic(list(test.programs), WO)
                    ),
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, title="E15: reachable-outcome counts"))
    for row in rows:
        assert row["SC atomic"] <= row["SC non-atomic"] <= row["WO non-atomic"]
