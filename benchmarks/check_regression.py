#!/usr/bin/env python3
"""CI benchmark-regression gate: fresh tracked metrics vs committed baselines.

Every bench that writes a ``BENCH_*.json`` may declare *tracked* metrics
in its metadata::

    "tracked": {
        "settling_speedup": {"value": 38.1, "higher_is_better": true},
        ...
    }

Tracked metrics are dimensionless **ratios** (speedups, overhead factors)
by convention, so a smoke run on a different host is still comparable to
the committed full-budget baseline.  This script pairs each committed
baseline (repo root by default) with the same-named results file from a
fresh run (``--results-dir``, where CI's bench-smoke job pointed
``REPRO_BENCH_DIR``) and **fails** — exit status 1 — if any tracked
metric moved more than ``--threshold`` (default 25%) in the bad
direction.

Skips are loud, never silent: a baseline without tracked metrics, a
bench that produced no fresh results, and a host with fewer CPUs than
the baseline's declared ``required_cpu_count`` are each logged and
ignored (parallel speedups are not a software property of a host that
lacks the cores).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Regressions beyond this fraction of the baseline value fail the gate.
DEFAULT_THRESHOLD = 0.25


def load_document(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def regression_fraction(baseline: float, fresh: float,
                        higher_is_better: bool) -> float:
    """Fractional move in the *bad* direction (negative = improvement)."""
    scale = max(abs(baseline), 1e-12)
    if higher_is_better:
        return (baseline - fresh) / scale
    return (fresh - baseline) / scale


def check_baseline(baseline_path: Path, results_dir: Path,
                   threshold: float) -> list[str]:
    """Compare one committed baseline; returns failure messages."""
    name = baseline_path.name
    baseline = load_document(baseline_path)
    metadata = baseline.get("metadata", {})
    tracked = metadata.get("tracked")
    if not tracked:
        print(f"[check-regression] SKIP {name}: no tracked metrics in baseline")
        return []

    required_cpus = int(metadata.get("required_cpu_count", 1))
    host_cpus = os.cpu_count() or 1
    if host_cpus < required_cpus:
        print(f"[check-regression] SKIP {name}: host has {host_cpus} CPU(s), "
              f"baseline requires >= {required_cpus}")
        return []

    fresh_path = results_dir / name
    if not fresh_path.is_file():
        print(f"[check-regression] SKIP {name}: no fresh results at {fresh_path}")
        return []
    fresh_tracked = load_document(fresh_path).get("metadata", {}).get("tracked", {})

    failures: list[str] = []
    for metric, spec in tracked.items():
        base_value = float(spec["value"])
        higher_is_better = bool(spec.get("higher_is_better", True))
        fresh_spec = fresh_tracked.get(metric)
        if fresh_spec is None:
            print(f"[check-regression] SKIP {name}:{metric}: "
                  f"metric missing from fresh results")
            continue
        fresh_value = float(fresh_spec["value"])
        moved = regression_fraction(base_value, fresh_value, higher_is_better)
        direction = "higher" if higher_is_better else "lower"
        verdict = "OK"
        if moved > threshold:
            verdict = "FAIL"
            failures.append(
                f"{name}:{metric} regressed {moved:+.1%} "
                f"(baseline {base_value:g}, fresh {fresh_value:g}, "
                f"{direction} is better, threshold {threshold:.0%})"
            )
        print(f"[check-regression] {verdict} {name}:{metric} "
              f"baseline={base_value:g} fresh={fresh_value:g} "
              f"moved={moved:+.1%} ({direction} is better)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", type=Path, required=True,
                        help="directory holding the fresh BENCH_*.json files "
                             "(the bench run's REPRO_BENCH_DIR)")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory of committed baselines (repo root)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fractional regression that fails the gate "
                             "(default 0.25 = 25%%)")
    options = parser.parse_args(argv)

    baselines = sorted(options.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"[check-regression] no BENCH_*.json baselines under "
              f"{options.baseline_dir}", file=sys.stderr)
        return 2

    failures: list[str] = []
    for baseline_path in baselines:
        failures += check_baseline(baseline_path, options.results_dir,
                                   options.threshold)

    if failures:
        print(f"\n[check-regression] {len(failures)} tracked metric(s) "
              f"regressed beyond {options.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("[check-regression] gate passed: no tracked metric regressed "
          f"beyond {options.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
