#!/usr/bin/env python3
"""Nightly deep cross-check: 10^6-trial vectorized Thm 6.2/6.3 validation.

CI's per-commit suites keep trial budgets small; statistical bugs that
hide inside wide confidence intervals only surface at depth.  This
script — run by the scheduled nightly workflow — drives the **vectorized
backend** of :func:`repro.core.estimate_non_manifestation` at a deep
trial budget (default 10^6) and asserts the paper's closed-form
Theorem 6.2 values at every memory model:

* **SC** — the 0.999 CI must contain ``1/6``;
* **WO** — the CI must contain ``7/54``;
* **TSO** — the CI must intersect the paper's bracket
  ``(58/441, 58/441 + 1/189)``;
* **PSO** — the CI must contain the library's exact n = 2 derivation
  (:func:`repro.core.non_manifestation_probability`, the Footnote 4
  extension).

It then checks the Theorem 6.3 regime: a deep n = 3 TSO run whose
manifestation CI must intersect the rigorous Bonferroni brackets of
:func:`repro.core.manifestation_bounds` (exact even for the dependent
TSO fleet).  Exit status is non-zero on any violation, so the nightly
job fails loudly.

The full bracket set runs once per RNG plan (``spawn``, then
``philox``): the counter-based Philox plan draws different streams from
the same seed, so the closed forms are the only cross-plan referee — a
plan whose deep CIs drift off the paper's brackets is a sampling bug no
fixed-seed regression test can see.  ``--rng-plans`` restricts the list.

It finishes with the litmus convergence sweep: the pseudorandom
exploration engine (:mod:`repro.litmus.explore`) samples each classic
test (SB/MP/LB/IRIW) under all four models at depth
(``--litmus-trials``, default 10^5) per RNG plan, and every frequency
table must be **contained** in the exhaustively enumerated outcome set
with **full support** (every allowed outcome observed).  When both
plans run, each (test, model) pair's spawn and philox tables are also
z-tested for equivalence outcome by outcome — the two plans sample the
same law from different streams, so a divergence is a sampler bug.

Last, the generated-family sweep (``--family-trials``): a pinned-seed
family (:mod:`repro.litmus.generate`) is sampled at depth under the
**full model zoo** — algebraic, write-buffered, and non-multicopy-atomic
models alike — and every table must be contained in its model's
enumerated set, with the same cross-plan z-equivalence referee.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core import (
    PSO,
    SC,
    TSO,
    WO,
    estimate_non_manifestation,
    manifestation_bounds,
    non_manifestation_probability,
    tso_two_thread_bounds,
)
from repro.stats.intervals import wilson_interval

#: Nightly runs are one-sided gates, so use a conservative coverage:
#: a false alarm every ~1000 nights per check is acceptable noise.
CONFIDENCE = 0.999

#: The litmus sweep's cross-plan z-tests run per outcome (~100 z-tests
#: a night), so their per-test confidence is tighter to keep the whole
#: sweep's false-alarm rate around one per thousand nights.
LITMUS_CONFIDENCE = 0.99999

#: The litmus convergence sweep's program battery: the four classics.
LITMUS_CLASSICS = ("SB", "MP", "LB", "IRIW")


def check(name: str, ok: bool, detail: str, failures: list[str]) -> None:
    verdict = "OK  " if ok else "FAIL"
    print(f"[nightly] {verdict} {name}: {detail}")
    if not ok:
        failures.append(f"{name}: {detail}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1_000_000,
                        help="Monte-Carlo trials per check (default 10^6)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--rng-plans", nargs="+", default=["spawn", "philox"],
                        choices=["spawn", "philox"],
                        help="RNG plans to run the full bracket set under "
                             "(default: both)")
    parser.add_argument("--litmus-trials", type=int, default=100_000,
                        help="samples per (test, model, plan) in the litmus "
                             "convergence sweep (default 10^5; 0 skips it)")
    parser.add_argument("--family-trials", type=int, default=50_000,
                        help="samples per (member, model, plan) in the "
                             "generated-family convergence sweep across the "
                             "zoo (default 5*10^4; 0 skips it)")
    parser.add_argument("--family-seed", type=int, default=20_240,
                        help="pinned generator seed of the nightly family")
    options = parser.parse_args(argv)

    failures: list[str] = []
    start = time.perf_counter()

    def run_brackets(rng_plan: str) -> None:
        tag = "" if rng_plan == "spawn" else f"-{rng_plan}"

        def estimate(model, n: int):
            return estimate_non_manifestation(
                model, n, options.trials, seed=options.seed,
                confidence=CONFIDENCE, workers=options.workers,
                backend="vectorized", rng_plan=rng_plan,
            )

        # --- Theorem 6.2: n = 2, all four models ---------------------
        sc = estimate(SC, 2).proportion
        check(f"thm62{tag}/SC", sc.contains(1.0 / 6.0),
              f"CI [{sc.low:.5f}, {sc.high:.5f}] vs exact 1/6 = {1 / 6:.5f}",
              failures)

        wo = estimate(WO, 2).proportion
        check(f"thm62{tag}/WO", wo.contains(7.0 / 54.0),
              f"CI [{wo.low:.5f}, {wo.high:.5f}] vs exact 7/54 = {7 / 54:.5f}",
              failures)

        tso = estimate(TSO, 2).proportion
        tso_low, tso_high = tso_two_thread_bounds()
        check(f"thm62{tag}/TSO",
              tso.low <= tso_high and tso.high >= tso_low,
              f"CI [{tso.low:.5f}, {tso.high:.5f}] vs paper bracket "
              f"({tso_low:.5f}, {tso_high:.5f})",
              failures)

        pso = estimate(PSO, 2).proportion
        pso_exact = non_manifestation_probability(PSO, 2).value
        check(f"thm62{tag}/PSO", pso.contains(pso_exact),
              f"CI [{pso.low:.5f}, {pso.high:.5f}] vs derived {pso_exact:.5f}",
              failures)

        # --- Theorem 6.3 regime: n = 3 TSO vs Bonferroni brackets ----
        deep = estimate(TSO, 3)
        manifested = wilson_interval(deep.trials - deep.successes,
                                     deep.trials, CONFIDENCE)
        bound_low, bound_high = manifestation_bounds(TSO, 3)
        check(f"thm63{tag}/TSO-n3",
              manifested.low <= bound_high and manifested.high >= bound_low,
              f"manifestation CI [{manifested.low:.5f}, "
              f"{manifested.high:.5f}] "
              f"vs Bonferroni [{bound_low:.5f}, {bound_high:.5f}]",
              failures)

    def run_litmus_sweep() -> None:
        from repro.core.memory_models import PAPER_MODELS
        from repro.litmus import (
            assert_frequencies_equivalent,
            check_convergence,
            explore_random,
        )
        from repro.runconfig import RunConfig

        for test in LITMUS_CLASSICS:
            for model in PAPER_MODELS:
                tables = {}
                for rng_plan in options.rng_plans:
                    config = RunConfig(workers=options.workers,
                                       rng_plan=rng_plan)
                    table = explore_random(test, model, options.litmus_trials,
                                           seed=options.seed, config=config)
                    report = check_convergence(table)
                    check(f"litmus-{rng_plan}/{test}-{model.name}",
                          report.converged,
                          f"{len(report.sampled)}/{len(report.enumerated)} "
                          f"enumerated outcomes sampled, "
                          f"{len(report.escaped)} escaped, "
                          f"coverage {report.coverage:.3f}",
                          failures)
                    tables[rng_plan] = table
                if len(tables) == 2:
                    try:
                        assert_frequencies_equivalent(
                            tables["spawn"], tables["philox"],
                            confidence=LITMUS_CONFIDENCE)
                    except AssertionError as error:
                        detail = str(error).splitlines()[0]
                        check(f"litmus-xplan/{test}-{model.name}", False,
                              detail, failures)
                    else:
                        check(f"litmus-xplan/{test}-{model.name}", True,
                              "spawn and philox tables z-equivalent "
                              f"@ {LITMUS_CONFIDENCE}", failures)

    def run_family_sweep() -> None:
        from repro.litmus import (
            FamilySpec,
            ZOO_MODELS,
            assert_convergence,
            assert_frequencies_equivalent,
            explore_random,
            generate_family,
        )
        from repro.runconfig import RunConfig

        # A pinned-seed family: generation is a pure function of
        # (spec, seed, index), so tonight's programs are last night's —
        # drift in the sweep is sampler or semantics drift, not input
        # noise.  Spacing and fences exercise the generator knobs; the
        # zoo covers algebraic, operational-buffer, and non-atomic
        # models in one pass.
        spec = FamilySpec(threads=2, ops_per_thread=5, addresses=2,
                          spacing=1, fence_density=0.25)
        members = generate_family(spec, 2, seed=options.family_seed)
        for index, member in enumerate(members):
            for model in ZOO_MODELS:
                tables = {}
                for rng_plan in options.rng_plans:
                    config = RunConfig(workers=options.workers,
                                       rng_plan=rng_plan)
                    table = explore_random(member, model,
                                           options.family_trials,
                                           seed=options.family_seed,
                                           config=config)
                    name = f"family-{rng_plan}/m{index}-{model.name}"
                    try:
                        report = assert_convergence(table, test=member,
                                                    model=model)
                    except Exception as error:  # escaped outcome = bug
                        check(name, False, str(error).splitlines()[0],
                              failures)
                        continue
                    check(name, report.contained,
                          f"{len(report.sampled)}/{len(report.enumerated)} "
                          f"enumerated outcomes sampled, coverage "
                          f"{report.coverage:.3f}",
                          failures)
                    tables[rng_plan] = table
                if len(tables) == 2:
                    try:
                        assert_frequencies_equivalent(
                            tables["spawn"], tables["philox"],
                            confidence=LITMUS_CONFIDENCE)
                    except AssertionError as error:
                        detail = str(error).splitlines()[0]
                        check(f"family-xplan/m{index}-{model.name}", False,
                              detail, failures)
                    else:
                        check(f"family-xplan/m{index}-{model.name}", True,
                              "spawn and philox tables z-equivalent "
                              f"@ {LITMUS_CONFIDENCE}", failures)

    for rng_plan in options.rng_plans:
        run_brackets(rng_plan)
    if options.litmus_trials > 0:
        run_litmus_sweep()
    if options.family_trials > 0:
        run_family_sweep()

    elapsed = time.perf_counter() - start
    print(f"[nightly] {options.trials} trials/check, seed {options.seed}, "
          f"{options.workers} worker(s), "
          f"plans {'+'.join(options.rng_plans)}, "
          f"litmus depth {options.litmus_trials}, "
          f"family depth {options.family_trials}, {elapsed:.1f}s total")
    if failures:
        print(f"[nightly] {len(failures)} deep check(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("[nightly] all deep closed-form checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
