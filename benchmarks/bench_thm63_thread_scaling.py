"""E9 — Theorem 6.3: Pr[A] = e^{-n²(1+o(1))} and the vanishing model gap.

Regenerates the theorem's content as two series over thread count:

1. the normalised exponent −ln Pr[A]/n² per model, converging to the
   common constant (3/2)·ln 2;
2. the log-ratio ln Pr[A_SC] / ln Pr[A_WO] climbing to 1 — the paper's
   "the importance of a strict memory model diminishes".

Also quantifies DESIGN.md ablation 4 (the shared-program dependence of
TSO windows) by comparing the independent-window approximation with the
Rao–Blackwellised and end-to-end Monte-Carlo estimates at small n.
"""

from __future__ import annotations

import math

from conftest import show

from repro.analysis import exponent_curve, exponent_gap_curve, limiting_exponent
from repro.core import (
    TSO,
    WO,
    estimate_non_manifestation,
    estimate_non_manifestation_rao_blackwell,
    non_manifestation_probability,
)
from repro.reporting import ascii_plot, render_table

THREAD_COUNTS = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)


def test_theorem63_exponent_convergence(benchmark):
    rows = benchmark(exponent_curve, THREAD_COUNTS)
    show(render_table(rows, precision=5, title="Theorem 6.3: -ln Pr[A] / n^2"))
    series = {
        name: [float(row[f"exponent {name}"]) for row in rows]
        for name in ("SC", "TSO", "PSO", "WO")
    }
    show(
        ascii_plot(
            [float(row["n"]) for row in rows],
            series,
            title="normalised exponents vs n (limit = 1.0397)",
        )
    )
    limit = limiting_exponent()
    final = rows[-1]
    for name in ("SC", "TSO", "PSO", "WO"):
        assert abs(float(final[f"exponent {name}"]) - limit) < 0.12 * limit, name


def test_theorem63_gap_vanishes(benchmark):
    rows = benchmark(exponent_gap_curve, THREAD_COUNTS, WO)
    show(render_table(rows, precision=5, title="ln Pr[A_SC] / ln Pr[A_WO] -> 1"))
    ratios = [float(row["log-ratio"]) for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[0] < 0.9  # n = 2: models clearly distinguished
    assert ratios[-1] > 0.99  # n = 128: relative gap gone
    # ...while the absolute survival ratio keeps growing (the subtlety the
    # paper stresses: the gap vanishes only *in proportion* to the risk).
    survival_ratios = [float(row["survival ratio"]) for row in rows]
    assert survival_ratios == sorted(survival_ratios)


def test_theorem63_dependence_ablation(run_once):
    """Ablation 4: independent-window approximation vs dependence-honouring
    estimators for TSO at small thread counts."""

    def compute():
        rows = []
        for n in (2, 3, 4):
            independent = non_manifestation_probability(
                TSO, n, allow_independent_approximation=True
            ).value
            rao = estimate_non_manifestation_rao_blackwell(
                TSO, n, programs=600, seed=1010 + n
            )
            end_to_end = estimate_non_manifestation(
                TSO, n, trials=150_000, seed=1111 + n
            )
            rows.append(
                {
                    "n": n,
                    "independent approx": independent,
                    "rao-blackwell": rao.estimate,
                    "rb stderr": rao.standard_error,
                    "end-to-end MC": end_to_end.estimate,
                    "relative approx error": abs(rao.estimate - independent)
                    / rao.estimate,
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=6, title="Ablation: shared-program dependence (TSO)"))
    for row in rows:
        n = int(row["n"])
        # RB and end-to-end agree; at n = 2 the approximation is exact.
        assert abs(float(row["rao-blackwell"]) - float(row["end-to-end MC"])) < 0.01
        if n == 2:
            assert float(row["relative approx error"]) < 0.02
        else:
            # Positive correlation raises Pr[A] above the approximation.
            assert float(row["rao-blackwell"]) >= float(row["independent approx"])
