"""E17 — throughput scaling of the sharded parallel Monte-Carlo engine.

Two workloads, spanning the library's cost spectrum:

* **analytic kernel** — the vectorised §6 disjointness estimator
  (``estimate_non_manifestation``), numpy-bound batches;
* **machine simulation** — the §2.2 canonical bug on the simulated
  multiprocessor (``run_canonical_bug``), pure-Python cycle stepping and
  the workload the trial-budget wall actually bites.

Each workload runs with a pinned ``(seed, shards)`` at 1/2/4/8 workers;
the bench asserts the sharding discipline (identical numbers at every
worker count) and — on hosts with enough cores — the speedup floor
(≥ 2× at 4 workers for the machine workload).  A third scan drives the
payload-heaviest workload (window measurement, whose per-shard result
carries a duration array) through both result transports, asserting
bit-identity and recording what each channel actually ships per shard:
the tracked ``shard_payload_bytes`` metric is the shared-memory
channel's per-shard pipe traffic (the :class:`~repro.stats.transport.Packed`
marker — constant by construction, so any marker bloat trips the CI
gate), with the pickle channel's payload alongside in the rows for the
shrink-factor story.  All timings land in
``BENCH_parallel_scaling.json`` at the repo root via
:mod:`repro.reporting.io`, so later PRs can diff the perf trajectory.

On hosts below ``required_cpu_count`` the speedup floor is recorded but
not asserted, and the metadata carries an explicit ``skipped_assertions``
entry naming the assertion and the reason — downstream tooling never has
to infer the skip from ``floor_asserted`` alone.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import results_path, scaled, show, smoke_mode

from repro.core import TSO, estimate_non_manifestation
from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.sim import run_canonical_bug
from repro.sim.measurement import _WindowShard, measure_critical_windows
from repro.stats.transport import Packed, pickled_payload_bytes

WORKER_COUNTS = (1, 2, 4, 8)
SHARDS = 8
SEED = 4242

ANALYTIC_TRIALS = scaled(400_000, 50_000)
MACHINE_TRIALS = scaled(2_000, 500)
WINDOW_TRIALS = scaled(20_000, 2_000)
WINDOW_THREADS = 2
TRANSPORT_WORKERS = 2

#: Speedup floor asserted at 4 workers on the machine workload — only on
#: hosts that physically have ≥ 4 cores (parallel speedup on fewer cores
#: is not a software property).
SPEEDUP_FLOOR = 2.0


def _analytic(workers: int):
    return estimate_non_manifestation(
        TSO, 2, ANALYTIC_TRIALS, seed=SEED, shards=SHARDS, workers=workers
    )


def _machine(workers: int):
    return run_canonical_bug(
        "TSO", threads=2, trials=MACHINE_TRIALS, seed=SEED,
        body_length=8, shards=SHARDS, workers=workers,
    )


def _transport_scan() -> tuple[list[dict[str, object]], dict[str, int]]:
    """Time the window workload under both transports; measure payloads.

    The merged measurement must be bit-identical across transports (the
    channel only changes the bytes' route home).  Payload bytes are what
    the pool pipe actually carries per shard: a representative
    ``_WindowShard`` pickle for the pickle channel, the constant
    ``Packed`` marker for the shared-memory channel.
    """
    rows: list[dict[str, object]] = []
    results = {}
    for transport in ("pickle", "shm"):
        start = time.perf_counter()
        results[transport] = measure_critical_windows(
            "TSO", WINDOW_THREADS, WINDOW_TRIALS, seed=SEED, shards=SHARDS,
            workers=TRANSPORT_WORKERS, transport=transport,
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "workload": f"window-transport/{transport}",
                "workers": TRANSPORT_WORKERS,
                "trials": WINDOW_TRIALS,
                "seconds": round(elapsed, 4),
                "trials_per_sec": round(WINDOW_TRIALS / elapsed, 1),
            }
        )
    assert np.array_equal(results["pickle"].durations,
                          results["shm"].durations), (
        "transport changed the merged window durations")

    merged = results["pickle"]
    per_shard = merged.durations[: (WINDOW_TRIALS // SHARDS) * WINDOW_THREADS]
    payloads = {
        "pickle": pickled_payload_bytes(
            _WindowShard(per_shard, 0, 0, 0)),
        "shm": pickled_payload_bytes(Packed(0)),
    }
    for row in rows:
        transport = str(row["workload"]).rsplit("/", 1)[1]
        row["shard_payload_bytes"] = payloads[transport]
    return rows, payloads


def _scan(workload, name: str, trials: int) -> list[dict[str, object]]:
    """Time one workload across worker counts; verify bit-reproducibility."""
    rows: list[dict[str, object]] = []
    signatures = set()
    serial_rate = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = workload(workers)
        elapsed = time.perf_counter() - start
        if hasattr(result, "final_values"):
            signatures.add(tuple(sorted(result.final_values.items())))
        else:
            signatures.add(result.successes)
        rate = trials / elapsed
        if workers == 1:
            serial_rate = rate
        rows.append(
            {
                "workload": name,
                "workers": workers,
                "trials": trials,
                "seconds": round(elapsed, 4),
                "trials_per_sec": round(rate, 1),
                "speedup_vs_serial": round(rate / serial_rate, 3),
            }
        )
    # The sharding discipline: every worker count computed the same numbers.
    assert len(signatures) == 1, f"{name}: results varied across worker counts"
    return rows


def test_parallel_scaling(run_once):
    def compute():
        rows = _scan(_analytic, "analytic-kernel", ANALYTIC_TRIALS)
        rows += _scan(_machine, "machine-simulation", MACHINE_TRIALS)
        transport_rows, payloads = _transport_scan()
        return rows + transport_rows, payloads

    rows, payloads = run_once(compute)
    show(render_table(rows, precision=3,
                      title="E17: sharded engine throughput (fixed seed/shards)"))
    show(f"[parallel-scaling] per-shard pipe payload: "
         f"{payloads['pickle']} B pickled window shard vs "
         f"{payloads['shm']} B shm marker "
         f"({payloads['pickle'] / payloads['shm']:.0f}x shrink)")

    cpus = os.cpu_count() or 1
    by_key = {(row["workload"], row["workers"]): row for row in rows}
    machine_4 = by_key[("machine-simulation", 4)]["speedup_vs_serial"]
    # The skip is explicit metadata, not an inference from floor_asserted:
    # tooling that consumes the baseline sees exactly which assertion was
    # waived on this host and why.
    skipped_assertions = []
    if cpus < 4:
        skipped_assertions.append({
            "assertion": f"machine_speedup_at_4_workers >= {SPEEDUP_FLOOR}",
            "reason": f"host has {cpus} CPU(s), fewer than the "
                      f"required_cpu_count of 4",
        })
    write_rows(
        results_path("parallel_scaling"),
        rows,
        metadata={
            "experiment": "parallel_scaling",
            "seed": SEED,
            "shards": SHARDS,
            "worker_counts": list(WORKER_COUNTS),
            "cpu_count": cpus,
            "smoke": smoke_mode(),
            "speedup_floor_at_4_workers": SPEEDUP_FLOOR,
            "floor_asserted": cpus >= 4,
            "skipped_assertions": skipped_assertions,
            # Parallel speedup is only a software property on hosts that
            # physically have the cores, so the regression gate compares
            # this metric only when the host has >= required_cpu_count.
            "required_cpu_count": 4,
            "tracked": {
                "machine_speedup_at_4_workers": {
                    "value": machine_4, "higher_is_better": True,
                },
                # What the shm channel ships per shard (the Packed
                # marker) — constant across hosts and budgets, so any
                # transport-layer bloat shows up as a tracked regression.
                "shard_payload_bytes": {
                    "value": payloads["shm"], "higher_is_better": False,
                },
            },
        },
    )
    if cpus >= 4:
        assert machine_4 >= SPEEDUP_FLOOR, (
            f"machine workload reached only {machine_4:.2f}x at 4 workers"
        )
    else:
        show(f"[parallel-scaling] SKIP host has {cpus} CPU(s); speedup floor "
             f"({SPEEDUP_FLOOR}x at 4 workers) recorded but not asserted")
    assert payloads["shm"] < payloads["pickle"], (
        "the shm marker should be smaller than a pickled window shard"
    )
