"""E17 — throughput scaling of the sharded parallel Monte-Carlo engine.

Two workloads, spanning the library's cost spectrum:

* **analytic kernel** — the vectorised §6 disjointness estimator
  (``estimate_non_manifestation``), numpy-bound batches;
* **machine simulation** — the §2.2 canonical bug on the simulated
  multiprocessor (``run_canonical_bug``), pure-Python cycle stepping and
  the workload the trial-budget wall actually bites.

Each workload runs with a pinned ``(seed, shards)`` at 1/2/4/8 workers;
the bench asserts the sharding discipline (identical numbers at every
worker count) and — on hosts with enough cores — the speedup floor
(≥ 2× at 4 workers for the machine workload).  All timings land in
``BENCH_parallel_scaling.json`` at the repo root via
:mod:`repro.reporting.io`, so later PRs can diff the perf trajectory.
"""

from __future__ import annotations

import os
import time

from conftest import results_path, scaled, show, smoke_mode

from repro.core import TSO, estimate_non_manifestation
from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.sim import run_canonical_bug

WORKER_COUNTS = (1, 2, 4, 8)
SHARDS = 8
SEED = 4242

ANALYTIC_TRIALS = scaled(400_000, 50_000)
MACHINE_TRIALS = scaled(2_000, 500)

#: Speedup floor asserted at 4 workers on the machine workload — only on
#: hosts that physically have ≥ 4 cores (parallel speedup on fewer cores
#: is not a software property).
SPEEDUP_FLOOR = 2.0


def _analytic(workers: int):
    return estimate_non_manifestation(
        TSO, 2, ANALYTIC_TRIALS, seed=SEED, shards=SHARDS, workers=workers
    )


def _machine(workers: int):
    return run_canonical_bug(
        "TSO", threads=2, trials=MACHINE_TRIALS, seed=SEED,
        body_length=8, shards=SHARDS, workers=workers,
    )


def _scan(workload, name: str, trials: int) -> list[dict[str, object]]:
    """Time one workload across worker counts; verify bit-reproducibility."""
    rows: list[dict[str, object]] = []
    signatures = set()
    serial_rate = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = workload(workers)
        elapsed = time.perf_counter() - start
        if hasattr(result, "final_values"):
            signatures.add(tuple(sorted(result.final_values.items())))
        else:
            signatures.add(result.successes)
        rate = trials / elapsed
        if workers == 1:
            serial_rate = rate
        rows.append(
            {
                "workload": name,
                "workers": workers,
                "trials": trials,
                "seconds": round(elapsed, 4),
                "trials_per_sec": round(rate, 1),
                "speedup_vs_serial": round(rate / serial_rate, 3),
            }
        )
    # The sharding discipline: every worker count computed the same numbers.
    assert len(signatures) == 1, f"{name}: results varied across worker counts"
    return rows


def test_parallel_scaling(run_once):
    def compute():
        rows = _scan(_analytic, "analytic-kernel", ANALYTIC_TRIALS)
        rows += _scan(_machine, "machine-simulation", MACHINE_TRIALS)
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=3,
                      title="E17: sharded engine throughput (fixed seed/shards)"))

    cpus = os.cpu_count() or 1
    by_key = {(row["workload"], row["workers"]): row for row in rows}
    machine_4 = by_key[("machine-simulation", 4)]["speedup_vs_serial"]
    write_rows(
        results_path("parallel_scaling"),
        rows,
        metadata={
            "experiment": "parallel_scaling",
            "seed": SEED,
            "shards": SHARDS,
            "worker_counts": list(WORKER_COUNTS),
            "cpu_count": cpus,
            "smoke": smoke_mode(),
            "speedup_floor_at_4_workers": SPEEDUP_FLOOR,
            "floor_asserted": cpus >= 4,
            # Parallel speedup is only a software property on hosts that
            # physically have the cores, so the regression gate compares
            # this metric only when the host has >= required_cpu_count.
            "required_cpu_count": 4,
            "tracked": {
                "machine_speedup_at_4_workers": {
                    "value": machine_4, "higher_is_better": True,
                },
            },
        },
    )
    if cpus >= 4:
        assert machine_4 >= SPEEDUP_FLOOR, (
            f"machine workload reached only {machine_4:.2f}x at 4 workers"
        )
    else:
        show(f"[parallel-scaling] host has {cpus} CPU(s); speedup floor "
             f"({SPEEDUP_FLOOR}x at 4 workers) recorded but not asserted")
