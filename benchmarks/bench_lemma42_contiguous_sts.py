"""E6 — Lemma 4.2: Pr[L_µ], the contiguous stores above the critical load.

Regenerates the lemma's quantities four independent ways — the paper's
closed lower bound (4/7)·2^{-µ}, the paper's own Ψ/∆/F decomposition
evaluated with exact partition numbers, the trailing-run Markov-chain
solve, and Monte Carlo over the settling chain — and checks they cohere.
Also reproduces Claim B.1's slack value R = 2/21 (DESIGN.md ablation 1:
bound width vs exact numerics).
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    TSO,
    l_lower_bound_paper,
    l_probability_paper,
    paper_run_distribution,
    run_length_distribution,
)
from repro.core.settling import sample_trailing_run
from repro.reporting import render_table
from repro.stats import run_categorical_trials

MUS = range(0, 8)


def test_lemma42_four_way_agreement(run_once):
    def compute():
        chain = run_length_distribution()
        decomposition = paper_run_distribution()
        simulated = run_categorical_trials(
            lambda source: sample_trailing_run(TSO, source, body_length=96),
            trials=60_000,
            seed=707,
        )
        return chain, decomposition, simulated

    chain, decomposition, simulated = run_once(compute)
    rows = [
        {
            "mu": mu,
            "paper bound": l_lower_bound_paper(mu),
            "paper decomposition": decomposition.pmf(mu),
            "chain (exact)": chain.pmf(mu),
            "simulated": simulated.estimate(mu),
        }
        for mu in MUS
    ]
    show(render_table(rows, precision=6, title="Lemma 4.2: Pr[L_mu]"))

    assert chain.pmf(0) == pytest.approx(1 / 3, abs=1e-9)
    for mu in MUS:
        assert chain.pmf(mu) >= l_lower_bound_paper(mu) - 1e-12
        assert decomposition.pmf(mu) == pytest.approx(chain.pmf(mu), abs=1e-6)
        if mu < 6:
            assert simulated.probability(mu).contains(chain.pmf(mu)), mu
    # The bound is tight exactly at mu = 1 (Pr[L_1] = 2/7 = (4/7)/2).
    assert chain.pmf(1) == pytest.approx(l_lower_bound_paper(1), abs=1e-9)


def test_lemma42_claim_b1_slack(benchmark):
    """Claim B.1: the probability the bound leaves unattributed is 2/21."""

    def slack() -> float:
        chain = run_length_distribution()
        return sum(chain.pmf(mu) - l_lower_bound_paper(mu) for mu in range(1, 64))

    value = benchmark(slack)
    show(f"bound slack R = {value:.8f} vs paper 2/21 = {2 / 21:.8f}")
    assert value == pytest.approx(2 / 21, abs=1e-6)


def test_lemma42_decomposition_bound_mode(benchmark):
    """Ablation: substituting Claim 4.4's φ ≥ 1 recovers the closed bound."""

    def bound_mode():
        return [l_probability_paper(mu, exact_phi=False) for mu in range(1, 6)]

    values = benchmark(bound_mode)
    rows = [
        {"mu": mu, "decomposition w/ phi>=1": value, "closed bound": l_lower_bound_paper(mu)}
        for mu, value in enumerate(values, start=1)
    ]
    show(render_table(rows, precision=6, title="Ablation: exact phi vs phi >= 1"))
    assert values[0] == pytest.approx(l_lower_bound_paper(1), abs=1e-9)
    for mu, value in enumerate(values, start=1):
        assert value <= l_probability_paper(mu) + 1e-12
