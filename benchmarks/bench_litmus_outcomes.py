"""E11 — litmus semantics: Table 1's relaxations produce the literature's
allowed/forbidden outcomes.

Enumerates every classic litmus test (SB, MP, LB, CoRR, 2+2W, IRIW) under
every paper model via the exact reordering+interleaving semantics and
checks all 24 verdicts, plus monotonicity: weaker models reach supersets
of outcomes.
"""

from __future__ import annotations

from conftest import show

from repro.core import PAPER_MODELS
from repro.litmus import ALL_TESTS, check_all, enumerate_outcomes
from repro.reporting import render_table


def test_litmus_verdict_matrix(run_once):
    verdicts = run_once(check_all)
    rows = []
    for test in ALL_TESTS:
        row: dict[str, object] = {"test": test.name}
        for verdict in verdicts:
            if verdict.test.name == test.name:
                marker = "allowed" if verdict.relaxed_reachable else "forbidden"
                agreement = "" if verdict.matches_literature else " (MISMATCH)"
                row[verdict.model.name] = marker + agreement
        rows.append(row)
    show(render_table(rows, title="E11: relaxed-outcome verdicts per model"))
    assert len(verdicts) == len(ALL_TESTS) * len(PAPER_MODELS)
    assert all(verdict.matches_literature for verdict in verdicts)


def test_litmus_outcome_monotonicity(run_once):
    """Weaker model -> superset of reachable outcomes, for every test."""

    def compute():
        observed = {}
        for test in ALL_TESTS:
            observed[test.name] = [
                enumerate_outcomes(
                    list(test.programs),
                    model,
                    initial_memory=test.initial_memory,
                    observed_locations=test.observed_locations,
                )
                for model in PAPER_MODELS
            ]
        return observed

    observed = run_once(compute)
    rows = []
    for name, outcome_sets in observed.items():
        rows.append(
            {
                "test": name,
                **{
                    model.name: len(outcomes)
                    for model, outcomes in zip(PAPER_MODELS, outcome_sets)
                },
            }
        )
        for stronger, weaker in zip(outcome_sets, outcome_sets[1:]):
            assert stronger <= weaker, name
    show(render_table(rows, title="E11: reachable-outcome counts (monotone)"))
