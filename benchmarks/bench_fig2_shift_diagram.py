"""E3 — Figure 2: an instantiation of the shift process.

Regenerates the figure's exact instance — segments γ̄ = (3, 2, 5) shifted
by (8, 0, 2) — checks the caption's outcome probability 2^{-13}, reports
the disjointness verdict under both interval conventions (the caption uses
the half-open reading; the theorems use the closed one — see
EXPERIMENTS.md), and validates the exact disjointness probability of this
γ̄ against Monte Carlo.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import disjointness_probability, estimate_disjointness, segments_disjoint
from repro.viz import render_shift_diagram, shift_outcome_probability

FIGURE_SHIFTS = [8, 0, 2]
FIGURE_LENGTHS = [3, 2, 5]


def test_figure2_instance(benchmark):
    diagram = benchmark(render_shift_diagram, FIGURE_SHIFTS, FIGURE_LENGTHS)
    show(diagram)
    assert shift_outcome_probability(FIGURE_SHIFTS) == pytest.approx(2.0**-13)
    # The caption's "disjoint" verdict holds under the half-open reading;
    # the theorem convention counts the shared point 2 as overlap.
    assert segments_disjoint(FIGURE_SHIFTS, FIGURE_LENGTHS, closed=False)
    assert not segments_disjoint(FIGURE_SHIFTS, FIGURE_LENGTHS, closed=True)


def test_figure2_disjointness_probability(run_once):
    """Exact Theorem 5.1 value for γ̄ = (3, 2, 5) vs simulation."""
    exact = disjointness_probability(FIGURE_LENGTHS)
    empirical = run_once(
        estimate_disjointness, FIGURE_LENGTHS, trials=200_000, seed=303
    )
    show(
        f"Pr[A((3, 2, 5))] exact {exact:.6f} vs Monte Carlo {empirical} "
        f"-> agree: {empirical.agrees_with(exact)}"
    )
    assert empirical.agrees_with(exact)
