"""Shared helpers for the benchmark harness.

Every bench module regenerates one paper artifact (see
``repro.reporting.EXPERIMENTS``), prints the paper-vs-measured rows, and
asserts the *shape* of the result (who wins, by roughly what factor).
Timing is captured via pytest-benchmark; the heavy Monte-Carlo benches use
``benchmark.pedantic`` with a single round so the experiment itself is run
once and timed, not repeated dozens of times.

Because pytest captures stdout on passing tests, every ``show()`` call
also appends to ``benchmarks/latest_results.txt`` — after a bench run that
file holds all regenerated tables and figures (run with ``-s`` to watch
them live instead).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: All rendered tables/figures from the most recent bench run.
RESULTS_PATH = Path(__file__).resolve().parent / "latest_results.txt"

#: Where committed BENCH_*.json baselines live (the repo root).
BASELINE_DIR = Path(__file__).resolve().parent.parent


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE`` is set (CI's bench-smoke job).

    Smoke mode shrinks trial budgets so every bench exercises its full
    code path in seconds.  Result files are still written (normally to
    ``REPRO_BENCH_DIR``) so ``check_regression.py`` can compare the
    tracked ratio metrics against the committed baselines.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def scaled(full: int, smoke: int) -> int:
    """Pick the full-run or smoke-run budget for the current mode."""
    return smoke if smoke_mode() else full


def results_path(name: str) -> Path:
    """Resolve where ``BENCH_<name>.json`` should be written.

    ``REPRO_BENCH_DIR`` redirects output (CI smoke runs write to a
    scratch directory so the committed baselines are never clobbered);
    unset, results land next to the committed baselines in the repo root.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    base = Path(override) if override else BASELINE_DIR
    base.mkdir(parents=True, exist_ok=True)
    return base / f"BENCH_{name}.json"


def pytest_sessionstart(session):
    """Start each bench run with a fresh results artifact."""
    try:
        RESULTS_PATH.write_text("", encoding="utf-8")
    except OSError:  # pragma: no cover - read-only checkouts still bench fine
        pass


@pytest.fixture
def run_once(benchmark):
    """Benchmark a callable with exactly one timed execution."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


def show(text: str) -> None:
    """Print a rendered table/figure and persist it to the results file."""
    print()
    print(text)
    try:
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write("\n" + text + "\n")
    except OSError:  # pragma: no cover
        pass
