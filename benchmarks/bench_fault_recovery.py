"""E18 — fault-tolerant, resumable shard execution: overhead and identity.

The recovery machinery of :mod:`repro.stats.faults` and
:mod:`repro.stats.checkpoint` is only worth having if (a) every recovery
path merges **bit-identically** to an undisturbed run — the purity of
shards in ``(seed, shards, i)`` made mechanical — and (b) its cost on the
happy path is negligible.  This bench measures both on the §6 disjointness
estimator:

* **baseline** — a clean sharded run;
* **retry** — the same run with deterministically injected shard faults
  (:class:`~repro.stats.faults.ScriptedFaults`) healed by the retry layer;
* **checkpoint-write** — a clean run journaling every shard;
* **resume** — the same run restarted from a journal holding half the
  shards, executing only the remainder.

Every variant must reproduce the baseline's exact success count; timings
land in ``BENCH_fault_recovery.json`` at the repo root.
"""

from __future__ import annotations

import time

from conftest import results_path, scaled, show, smoke_mode

from repro.core import TSO, estimate_non_manifestation
from repro.parallel import ScriptedFaults, ShardPlan, run_sharded
from repro.reporting import render_table
from repro.reporting.io import write_rows

TRIALS = scaled(200_000, 40_000)
SHARDS = 8
SEED = 1887
WORKERS = 2

#: Happy-path overhead ceiling: journaling every shard of a realistic
#: budget must cost well under this factor over the clean run.
CHECKPOINT_OVERHEAD_CEILING = 1.5


def _estimate(**options):
    return estimate_non_manifestation(
        TSO, 2, TRIALS, seed=SEED, shards=SHARDS, workers=WORKERS, **options
    )


def test_fault_recovery(run_once, tmp_path):
    def compute():
        rows: list[dict[str, object]] = []

        def timed(name: str, runner) -> object:
            start = time.perf_counter()
            result = runner()
            elapsed = time.perf_counter() - start
            rows.append({"variant": name, "trials": TRIALS,
                         "seconds": round(elapsed, 4),
                         "successes": result.successes})
            return result

        baseline = timed("baseline", _estimate)

        faults = ScriptedFaults(failures={1: 1, 5: 2})
        retried = timed("retry-injected-faults", lambda: _retried(faults))
        assert retried.successes == baseline.successes

        journal = tmp_path / "full.jsonl"
        journaled = timed("checkpoint-write",
                          lambda: _estimate(checkpoint=journal))
        assert journaled.successes == baseline.successes

        # Interrupted run: keep only half the journal's shard records,
        # then resume — only the missing shards execute.
        partial_journal = tmp_path / "partial.jsonl"
        lines = journal.read_text().splitlines()
        partial_journal.write_text("\n".join(lines[: SHARDS // 2]) + "\n")
        resumed = timed("checkpoint-resume",
                        lambda: _estimate(checkpoint=partial_journal))
        assert resumed.successes == baseline.successes

        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=4,
                      title="E18: fault recovery — identical numbers, low overhead"))

    by_variant = {row["variant"]: row for row in rows}
    base = max(by_variant["baseline"]["seconds"], 1e-9)
    write_rows(
        results_path("fault_recovery"),
        rows,
        metadata={
            "experiment": "fault_recovery",
            "seed": SEED,
            "shards": SHARDS,
            "workers": WORKERS,
            "smoke": smoke_mode(),
            "checkpoint_overhead_ceiling": CHECKPOINT_OVERHEAD_CEILING,
            # Only the checkpoint ratio is tracked for the CI
            # regression gate: retry recovery pays a constant
            # (re-executed shards + backoff), so its ratio is not
            # scale-free across trial budgets.
            "tracked": {
                "checkpoint_overhead": {
                    "value": round(
                        by_variant["checkpoint-write"]["seconds"] / base, 4),
                    "higher_is_better": False,
                },
            },
        },
    )
    assert len({row["successes"] for row in rows}) == 1, (
        "recovery variants diverged from the baseline's numbers"
    )
    overhead = (by_variant["checkpoint-write"]["seconds"]
                / max(by_variant["baseline"]["seconds"], 1e-9))
    show(f"[fault-recovery] checkpoint-write overhead: {overhead:.3f}x "
         f"(ceiling {CHECKPOINT_OVERHEAD_CEILING}x)")
    assert overhead <= CHECKPOINT_OVERHEAD_CEILING, (
        f"checkpoint journaling cost {overhead:.2f}x over the clean run"
    )


def _retried(faults: ScriptedFaults):
    """The retry leg goes through the engine directly: the estimator's
    public surface exposes retries/timeout/checkpoint, while the injector
    (a test/bench-only hook) lives on ``run_sharded``."""
    from functools import partial

    from repro.core.manifestation import _disjointness_batch_trial
    from repro.core.shift import DEFAULT_SHIFT_RATIO
    from repro.core.settling import DEFAULT_BODY_LENGTH
    from repro.core.shift_analytic import WINDOW_LENGTH_OFFSET
    from repro.stats.montecarlo import (
        DEFAULT_BATCH_SIZE,
        _event_shard,
        merge_bernoulli,
    )

    batch_trial = partial(
        _disjointness_batch_trial, model=TSO, n=2, store_probability=0.5,
        beta=DEFAULT_SHIFT_RATIO, body_length=DEFAULT_BODY_LENGTH,
        critical_section_length=WINDOW_LENGTH_OFFSET,
    )
    kernel = partial(_event_shard, batch_trial=batch_trial,
                     batch_size=DEFAULT_BATCH_SIZE, confidence=0.99)
    plan = ShardPlan(TRIALS, SHARDS, SEED)
    return merge_bernoulli(run_sharded(
        kernel, plan, WORKERS, retries=3, fault_injector=faults,
    ))
