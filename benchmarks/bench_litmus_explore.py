"""E23 — the litmus exploration engine: cold vs warm cached exploration.

The exploration engine (:mod:`repro.litmus.explore`, docs/LITMUS.md)
content-addresses both of its modes in the shard result cache: the
exhaustive mode keys each enumerated outcome set by program digest,
model, and enumerator fingerprint; the pseudorandom mode rides
``run_sharded``'s v2 shard keys.  An identical re-exploration therefore
fetches everything — outcome sets and frequency shards alike — with
**bit-identical** results.

The bench runs the combined workload three ways into a scratch store:
the full exhaustive battery grid (12 tests x 4 models) plus a deep
pseudorandom sweep of the four classics under TSO, **uncached**
(reference), **cold** (empty store: compute + write-through), and
**warm** (identical re-run: every entry fetched).

Committed floor: the warm exploration is at least ``3x`` faster than
the cold one in full mode — and the three result sets must be *equal*,
not statistically close.  The tracked regression metric is the speedup
capped at ``8.0`` (the same host-independence argument as
``bench_cache_reuse``: raw warm speedups are huge and noisy, the gate
pins "still comfortably above the floor").  Smoke mode shrinks the
trial budget and skips the absolute floor but still requires the warm
leg to win and the results to be identical.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import results_path, scaled, show, smoke_mode

from repro.cache import ShardStore
from repro.litmus import explore_exhaustive, explore_random
from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.runconfig import RunConfig

SEED = 23_011
SHARDS = 16
WARM_REPEATS = 3

#: The deep pseudorandom sweep: the four classic tests under TSO.
CLASSICS = ("SB", "MP", "LB", "IRIW")

#: Full-mode floor: a warm exploration must beat the cold one by this.
SPEEDUP_FLOOR = 3.0

#: Tracked-metric cap — keeps the committed baseline host-independent.
SPEEDUP_CAP = 8.0


def _explore(trials: int, cache: ShardStore | None):
    config = RunConfig(shards=SHARDS, cache=cache)
    exhaustive = explore_exhaustive(config=config)
    tables = tuple(explore_random(name, "TSO", trials, seed=SEED,
                                  config=config)
                   for name in CLASSICS)
    return exhaustive.to_json_dict(), tables


def _timed(runner):
    start = time.perf_counter()
    result = runner()
    return result, time.perf_counter() - start


def test_litmus_explore_cache_speedup(run_once):
    trials = scaled(300_000, 15_000)
    scratch = tempfile.mkdtemp(prefix="repro-bench-litmus-")
    try:
        store = ShardStore(scratch)

        def compute():
            uncached, uncached_s = _timed(lambda: _explore(trials, None))
            cold, cold_s = _timed(lambda: _explore(trials, store))
            # Warm legs are pure fetches; best-of-N is the noise-robust
            # estimate (the cold leg cannot repeat without going warm).
            warm_legs = [_timed(lambda: _explore(trials, store))
                         for _ in range(WARM_REPEATS)]
            warm = warm_legs[0][0]
            warm_s = min(seconds for _, seconds in warm_legs)
            return uncached, uncached_s, cold, cold_s, warm, warm_s

        uncached, uncached_s, cold, cold_s, warm, warm_s = run_once(compute)
        stats = store.stats()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    grid_points = len(uncached[0]["tests"]) * 4
    speedup = cold_s / max(warm_s, 1e-9)
    rows = [
        {"leg": "uncached", "trials": trials * len(CLASSICS),
         "seconds": round(uncached_s, 4)},
        {"leg": "cold (compute + store)", "trials": trials * len(CLASSICS),
         "seconds": round(cold_s, 4)},
        {"leg": "warm (everything fetched)", "trials": 0,
         "seconds": round(warm_s, 4)},
    ]
    show(render_table(rows, precision=4,
                      title="E23: litmus exploration, cold vs warm cache"))
    show(f"[litmus-explore] warm speedup {speedup:.1f}x "
         f"(floor {SPEEDUP_FLOOR}x full mode, tracked capped at "
         f"{SPEEDUP_CAP}x) · grid {grid_points} points + "
         f"{len(CLASSICS)} random sweeps · store: {stats.entries} entries, "
         f"{stats.hits} hits, {stats.stored} stored")

    write_rows(
        results_path("litmus_explore"),
        rows,
        metadata={
            "experiment": "litmus_explore",
            "seed": SEED,
            "shards": SHARDS,
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "speedup_floor": SPEEDUP_FLOOR,
            "warm_speedup_raw": round(speedup, 2),
            "tracked": {
                "warm_speedup_capped": {
                    "value": round(min(speedup, SPEEDUP_CAP), 2),
                    "higher_is_better": True,
                },
            },
        },
    )

    # The engine's whole claim: fetches are the exploration, bit for bit.
    assert cold == uncached, "cold cached exploration diverged from uncached"
    assert warm == uncached, "warm cached exploration diverged from uncached"
    # Cold writes one entry per grid point + one per random-sweep shard;
    # every warm repeat fetches each of them back.
    expected = grid_points + len(CLASSICS) * SHARDS
    assert stats.stored == expected, (expected, stats)
    assert stats.hits >= expected * WARM_REPEATS, (expected, stats)

    assert speedup > 1.0, (
        f"warm exploration is slower than cold ({speedup:.2f}x)"
    )
    if not smoke_mode():
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm speedup {speedup:.1f}x below the committed "
            f"{SPEEDUP_FLOOR}x floor"
        )
