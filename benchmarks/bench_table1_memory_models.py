"""E1 — Table 1: the memory-model relaxation matrix.

Regenerates the paper's Table 1 from the model definitions and checks it
cell-for-cell, plus the strictness chain SC ≥ TSO ≥ PSO ≥ WO the table
implies.
"""

from __future__ import annotations

from conftest import show

from repro.core import PAPER_MODELS, table1_rows
from repro.reporting import render_table

PAPER_TABLE = {
    "SC": {"ST/ST": False, "ST/LD": False, "LD/ST": False, "LD/LD": False},
    "TSO": {"ST/ST": False, "ST/LD": True, "LD/ST": False, "LD/LD": False},
    "PSO": {"ST/ST": True, "ST/LD": True, "LD/ST": False, "LD/LD": False},
    "WO": {"ST/ST": True, "ST/LD": True, "LD/ST": True, "LD/LD": True},
}


def test_table1_relaxation_matrix(benchmark):
    rows = benchmark(table1_rows)
    show(render_table(rows, title="Table 1: which ordered pairs may reorder"))
    for row in rows:
        expected = PAPER_TABLE[str(row["Name"])]
        for column, value in expected.items():
            assert row[column] == value, (row["Name"], column)


def test_table1_strictness_chain(benchmark):
    def chain_holds() -> bool:
        return all(
            stronger.is_at_least_as_strong_as(weaker)
            for stronger, weaker in zip(PAPER_MODELS, PAPER_MODELS[1:])
        )

    assert benchmark(chain_holds)
