"""E21 — the shard result cache: warm re-runs fetch instead of recompute.

The content-addressed cache (:mod:`repro.cache`, docs/CACHING.md) keys
every completed shard by the run's full v2 identity — trials, shards,
seed, label, and the kernel fingerprint — so an identical re-run, or a
sweep revisiting the same grid point, can fetch its finished shards
with **bit-identical** results (equal key ⇒ equal computation).  This
bench quantifies the payoff on the paper's headline estimator: the
Theorem 6.2 sweep (Pr[A] at ``n = 2`` for all four memory models) is
run **cold** (empty store: compute + write-through), **warm**
(identical re-run: every shard fetched), and **uncached** (reference),
into a scratch store torn down afterwards.

Committed floor: the warm sweep is at least ``5x`` faster than the cold
one in full mode — and the three result sets must be *equal*, not
statistically close.  The tracked regression metric is the speedup
capped at ``8.0``: raw warm speedups are huge (the warm leg does no
trial work at all) and noisy across hosts, so the gate pins "still
comfortably above the floor" rather than a meaningless 100x-vs-300x
comparison.  Smoke mode shrinks budgets and skips the absolute floor
(per-run engine overhead dominates tiny budgets) but still requires the
warm leg to win and the results to be identical.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import results_path, scaled, show, smoke_mode

from repro.cache import ShardStore
from repro.core import PAPER_MODELS, estimate_non_manifestation
from repro.reporting import render_table
from repro.reporting.io import write_rows

SEED = 21_011
SHARDS = 16
WARM_REPEATS = 3

#: Full-mode floor: a warm sweep must beat the cold one by this factor.
SPEEDUP_FLOOR = 5.0

#: Tracked-metric cap — keeps the committed baseline host-independent.
SPEEDUP_CAP = 8.0


def _sweep(trials: int, cache: ShardStore | None):
    return tuple(
        estimate_non_manifestation(model, 2, trials, seed=SEED,
                                   shards=SHARDS, cache=cache)
        for model in PAPER_MODELS
    )


def _timed(runner):
    start = time.perf_counter()
    result = runner()
    return result, time.perf_counter() - start


def test_cache_reuse_speedup(run_once):
    trials = scaled(1_000_000, 150_000)
    scratch = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        store = ShardStore(scratch)

        def compute():
            uncached, uncached_s = _timed(lambda: _sweep(trials, None))
            cold, cold_s = _timed(lambda: _sweep(trials, store))
            # Warm legs are pure fetches; best-of-N is the noise-robust
            # estimate (the cold leg cannot repeat without going warm).
            warm_legs = [_timed(lambda: _sweep(trials, store))
                         for _ in range(WARM_REPEATS)]
            warm = warm_legs[0][0]
            warm_s = min(seconds for _, seconds in warm_legs)
            return uncached, uncached_s, cold, cold_s, warm, warm_s

        uncached, uncached_s, cold, cold_s, warm, warm_s = run_once(compute)
        stats = store.stats()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    speedup = cold_s / max(warm_s, 1e-9)
    rows = [
        {"leg": "uncached", "trials": trials * len(PAPER_MODELS),
         "seconds": round(uncached_s, 4)},
        {"leg": "cold (compute + store)", "trials": trials * len(PAPER_MODELS),
         "seconds": round(cold_s, 4)},
        {"leg": "warm (all shards fetched)", "trials": 0,
         "seconds": round(warm_s, 4)},
    ]
    show(render_table(rows, precision=4,
                      title="E21: Theorem 6.2 sweep, cold vs warm cache"))
    show(f"[cache] warm speedup {speedup:.1f}x "
         f"(floor {SPEEDUP_FLOOR}x full mode, tracked capped at "
         f"{SPEEDUP_CAP}x) · store: {stats.entries} entries, "
         f"{stats.hits} hits, {stats.stored} stored")

    write_rows(
        results_path("cache_reuse"),
        rows,
        metadata={
            "experiment": "cache_reuse",
            "seed": SEED,
            "shards": SHARDS,
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "speedup_floor": SPEEDUP_FLOOR,
            "warm_speedup_raw": round(speedup, 2),
            "tracked": {
                "warm_speedup_capped": {
                    "value": round(min(speedup, SPEEDUP_CAP), 2),
                    "higher_is_better": True,
                },
            },
        },
    )

    # The cache's whole claim: fetches are the computation, bit for bit.
    assert cold == uncached, "cold cached sweep diverged from uncached"
    assert warm == uncached, "warm cached sweep diverged from uncached"
    expected = len(PAPER_MODELS) * SHARDS
    assert stats.stored == expected, (cold, stats)
    assert stats.hits >= expected * WARM_REPEATS

    assert speedup > 1.0, (
        f"warm cache run is slower than cold ({speedup:.2f}x)"
    )
    if not smoke_mode():
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm speedup {speedup:.1f}x below the committed "
            f"{SPEEDUP_FLOOR}x floor"
        )
