"""E16 — the dual axis: scaling the number of bugs instead of threads.

Theorem 6.3 scales the thread count for one bug and finds the memory-model
gap vanishes.  This bench scales the *bug count* for two threads (many
well-separated racy sections sharing one interleaving offset) and finds
the mirror image, exactly:

* SC's survival is **constant in K** (its windows are deterministic, so
  only the offset matters: Pr[|d| ≥ 3] = 1/6);
* models with geometric window tails decay as ``K^{-log_{1/λ} 2}``:
  WO (λ = 1/2) like 1/K, TSO/PSO (λ = 1/4) like 1/√K;
* hence the SC/weak ratio **diverges** along this axis.

Strictness pays off when systems grow by accumulating unsynchronised code,
not by adding cores — the practical complement to the paper's headline.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    PAPER_MODELS,
    SC,
    TSO,
    WO,
    estimate_multi_bug_survival,
    multi_bug_gap_curve,
    multi_bug_survival,
)
from repro.reporting import ascii_plot, render_table

BUG_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def test_multi_bug_gap_curve(benchmark):
    rows = benchmark(multi_bug_gap_curve, list(BUG_COUNTS))
    show(render_table(rows, precision=6, title="E16: Pr[A] vs bug count K (n = 2)"))
    import math

    show(
        ascii_plot(
            [math.log2(float(row["bugs"])) for row in rows],
            {
                model.name: [
                    math.log2(float(row[f"Pr[A] {model.name}"])) for row in rows
                ]
                for model in PAPER_MODELS
            },
            title="log2 Pr[A] vs log2 K (slopes: SC 0, TSO/PSO -1/2, WO -1)",
        )
    )

    # SC constant; weak models monotone decreasing; ordering preserved.
    sc_values = [float(row["Pr[A] SC"]) for row in rows]
    assert all(value == pytest.approx(1 / 6) for value in sc_values)
    for name in ("TSO", "PSO", "WO"):
        series = [float(row[f"Pr[A] {name}"]) for row in rows]
        assert series == sorted(series, reverse=True), name
    ratios = [float(row["SC/WO ratio"]) for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 100  # the diverging gap

    # Power-law slopes over the last octave.
    wo_slope = rows[-2]["Pr[A] WO"] / rows[-1]["Pr[A] WO"]
    tso_slope = rows[-2]["Pr[A] TSO"] / rows[-1]["Pr[A] TSO"]
    assert float(wo_slope) == pytest.approx(2.0, rel=0.15)  # ~1/K
    assert float(tso_slope) == pytest.approx(2.0**0.5, rel=0.1)  # ~1/sqrt(K)


def test_multi_bug_monte_carlo(run_once):
    def compute():
        rows = []
        for model in (SC, TSO, WO):
            for bug_count in (4, 16):
                exact = multi_bug_survival(model, bug_count).value
                empirical = estimate_multi_bug_survival(
                    model, bug_count, trials=200_000, seed=2020 + bug_count
                )
                rows.append(
                    {
                        "model": model.name,
                        "bugs": bug_count,
                        "exact": exact,
                        "monte carlo": empirical.estimate,
                        "agrees": empirical.agrees_with(exact),
                    }
                )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=6, title="E16: exact vs Monte Carlo"))
    assert all(row["agrees"] for row in rows)
