"""E4 — Theorem 4.1: the critical-window growth distribution Pr[B_γ].

Regenerates the theorem's three laws (SC point mass; WO's 2/3 and 2^{-γ}/3;
TSO inside its published bounds), the exact-numeric TSO values this library
adds, and a Monte-Carlo column from the settling simulator.  Also runs the
finite-m ablation: the PMF is m-invariant beyond small m.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    SC,
    TSO,
    WO,
    sample_window_growth,
    tso_window_lower_bound,
    tso_window_upper_bound,
    window_distribution,
)
from repro.reporting import render_table
from repro.stats import run_categorical_trials

GAMMAS = range(0, 7)
TRIALS = 60_000


def _empirical(model, body_length=96, seed=404):
    return run_categorical_trials(
        lambda source: sample_window_growth(model, source, body_length=body_length),
        trials=TRIALS,
        seed=seed,
    )


def test_theorem41_window_pmfs(run_once):
    empirical = {
        model.name: run_once(lambda: {m.name: _empirical(m) for m in (SC, TSO, WO)})
        for model in (SC,)
    }["SC"]
    analytic = {model.name: window_distribution(model) for model in (SC, TSO, WO)}

    rows = []
    for gamma in GAMMAS:
        row: dict[str, object] = {"gamma": gamma}
        for name in ("SC", "TSO", "WO"):
            row[f"{name} analytic"] = analytic[name].pmf(gamma)
            row[f"{name} simulated"] = empirical[name].estimate(gamma)
        row["TSO paper lo"] = tso_window_lower_bound(gamma)
        row["TSO paper hi"] = tso_window_upper_bound(gamma)
        rows.append(row)
    show(render_table(rows, precision=5, title="Theorem 4.1: Pr[B_gamma]"))

    # Paper closed forms.
    assert analytic["SC"].pmf(0) == 1.0
    assert analytic["WO"].pmf(0) == pytest.approx(2 / 3)
    for gamma in range(1, 7):
        assert analytic["WO"].pmf(gamma) == pytest.approx(2.0**-gamma / 3)
        assert (
            tso_window_lower_bound(gamma) - 1e-12
            <= analytic["TSO"].pmf(gamma)
            <= tso_window_upper_bound(gamma) + 1e-12
        )
    # Simulation agrees with the analytics at 99% confidence per cell.
    for name in ("SC", "TSO", "WO"):
        for gamma in range(5):
            assert empirical[name].probability(gamma).contains(
                analytic[name].pmf(gamma)
            ), (name, gamma)


def test_theorem41_finite_m_ablation(run_once):
    """DESIGN.md ablation 2: the window PMF is m-invariant beyond small m."""

    def sweep():
        return {
            body_length: _empirical(TSO, body_length=body_length, seed=505)
            for body_length in (16, 48, 96)
        }

    results = run_once(sweep)
    rows = [
        {
            "m": body_length,
            **{f"gamma={g}": result.estimate(g) for g in range(4)},
        }
        for body_length, result in results.items()
    ]
    show(render_table(rows, precision=5, title="Finite-m ablation (TSO)"))
    reference = window_distribution(TSO)
    for body_length, result in results.items():
        for gamma in range(4):
            assert result.probability(gamma).contains(reference.pmf(gamma)), (
                body_length,
                gamma,
            )
