"""E12 — footnote 4: the PSO analysis the paper omits.

Derives PSO's window law (the critical store *chases* the critical load
through the stores separating them) and its two-thread Pr[A], validates
both against the settling simulator and the end-to-end pipeline, and
reports the headline finding: within this model PSO's extra ST/ST
relaxation makes it *safer* than TSO — "a similar result" to TSO, as the
footnote says, but on the SC side of it.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    PSO,
    SC,
    TSO,
    estimate_non_manifestation,
    non_manifestation_probability,
    pso_window_distribution,
    sample_window_growth,
    tso_window_distribution,
    window_distribution,
)
from repro.reporting import render_table
from repro.stats import run_categorical_trials


def test_pso_window_law(run_once):
    def compute():
        analytic = pso_window_distribution()
        simulated = run_categorical_trials(
            lambda source: sample_window_growth(PSO, source), trials=80_000, seed=1616
        )
        return analytic, simulated

    analytic, simulated = run_once(compute)
    tso = tso_window_distribution()
    rows = [
        {
            "gamma": gamma,
            "PSO analytic": analytic.pmf(gamma),
            "PSO simulated": simulated.estimate(gamma),
            "TSO analytic": tso.pmf(gamma),
        }
        for gamma in range(6)
    ]
    show(render_table(rows, precision=5, title="E12: PSO window law vs TSO"))
    for gamma in range(5):
        assert simulated.probability(gamma).contains(analytic.pmf(gamma)), gamma
    # The chase shrinks windows relative to TSO.
    assert analytic.pmf(0) > tso.pmf(0)
    for gamma in range(1, 6):
        assert analytic.pmf(gamma) < tso.pmf(gamma)


def test_pso_two_thread_value(run_once):
    def compute():
        exact = non_manifestation_probability(PSO).value
        empirical = estimate_non_manifestation(PSO, n=2, trials=250_000, seed=1717)
        return exact, empirical

    exact, empirical = run_once(compute)
    tso = non_manifestation_probability(TSO).value
    sc = non_manifestation_probability(SC).value
    show(
        render_table(
            [
                {"model": "TSO", "Pr[A]": tso},
                {"model": "PSO", "Pr[A]": exact},
                {"model": "SC", "Pr[A]": sc},
                {"model": "PSO monte carlo", "Pr[A]": empirical.estimate},
            ],
            precision=6,
            title="E12: PSO two-thread Pr[A] (the footnote-4 number)",
        )
    )
    assert empirical.agrees_with(exact)
    assert tso < exact < sc
    # "A similar result": PSO sits within ~12% of TSO's value.
    assert exact == pytest.approx(tso, rel=0.12)


def test_pso_store_probability_sensitivity(benchmark):
    """PSO's chase advantage grows with the store fraction p: more stores
    below the critical load give the critical store more room to catch up."""

    def compute():
        rows = []
        for p in (0.2, 0.5, 0.8):
            tso = window_distribution(TSO, store_probability=p)
            pso = window_distribution(PSO, store_probability=p)
            rows.append(
                {
                    "p": p,
                    "TSO Pr[B_0]": tso.pmf(0),
                    "PSO Pr[B_0]": pso.pmf(0),
                    "chase gain": pso.pmf(0) - tso.pmf(0),
                }
            )
        return rows

    rows = benchmark(compute)
    show(render_table(rows, precision=5, title="E12: chase gain vs store fraction"))
    gains = [float(row["chase gain"]) for row in rows]
    assert gains == sorted(gains)
