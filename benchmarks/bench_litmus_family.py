"""E24 — generated program families swept across the model zoo.

The family sweep (:mod:`repro.litmus.generate`, docs/LITMUS.md) is the
scenario-diversity workload: seed-disciplined constrained random litmus
programs, each member's manifestation bracket re-estimated against every
zoo model's sampled outcome distribution.  Generation is
counter-addressed (a member is a pure function of ``(spec, seed,
index)``) and sampling rides ``run_sharded``, so the whole sweep is a
deterministic, cacheable plan: the same sweep re-run against a warm
store fetches every sampled shard and re-enumerates nothing it can
fetch.

The bench runs one sweep — a 4-member family against a 4-model zoo
cross-section (TSO, PSO, PSO-WB, WO-NMCA) — **uncached** (reference),
**cold** (empty store: compute + write-through), and **warm** (identical
re-run).  Floors mirror ``bench_litmus_explore``: warm must beat cold by
the committed floor in full mode, and all three reports must be *equal*,
not statistically close.  The tracked regression metric is the warm
speedup capped at ``8.0`` (host-independence, as in
``bench_cache_reuse``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import results_path, scaled, show, smoke_mode

from repro.cache import ShardStore
from repro.litmus import FamilySpec, sweep_family
from repro.reporting import render_table
from repro.reporting.io import write_rows
from repro.runconfig import RunConfig

SEED = 24_011
SHARDS = 16
WARM_REPEATS = 3
MEMBERS = 4

#: A zoo cross-section: algebraic, operational, and non-atomic models.
MODELS = ("TSO", "PSO", "PSO-WB", "WO-NMCA")

SPEC = FamilySpec(threads=2, ops_per_thread=5, addresses=2, spacing=1,
                  fence_density=0.25)

#: Full-mode floor: a warm sweep must beat the cold one by this.
SPEEDUP_FLOOR = 3.0

#: Tracked-metric cap — keeps the committed baseline host-independent.
SPEEDUP_CAP = 8.0


def _sweep(trials: int, cache: ShardStore | None):
    config = RunConfig(shards=SHARDS, cache=cache)
    report = sweep_family(SPEC, MODELS, count=MEMBERS, trials=trials,
                          seed=SEED, config=config)
    return report.to_json_dict()


def _timed(runner):
    start = time.perf_counter()
    result = runner()
    return result, time.perf_counter() - start


def test_litmus_family_sweep_speedup(run_once):
    trials = scaled(120_000, 6_000)
    scratch = tempfile.mkdtemp(prefix="repro-bench-family-")
    try:
        store = ShardStore(scratch)

        def compute():
            uncached, uncached_s = _timed(lambda: _sweep(trials, None))
            cold, cold_s = _timed(lambda: _sweep(trials, store))
            warm_legs = [_timed(lambda: _sweep(trials, store))
                         for _ in range(WARM_REPEATS)]
            warm = warm_legs[0][0]
            warm_s = min(seconds for _, seconds in warm_legs)
            return uncached, uncached_s, cold, cold_s, warm, warm_s

        uncached, uncached_s, cold, cold_s, warm, warm_s = run_once(compute)
        stats = store.stats()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    points = MEMBERS * len(MODELS)
    speedup = cold_s / max(warm_s, 1e-9)
    rows = [
        {"leg": "uncached", "trials": trials * points,
         "seconds": round(uncached_s, 4)},
        {"leg": "cold (compute + store)", "trials": trials * points,
         "seconds": round(cold_s, 4)},
        {"leg": "warm (shards fetched)", "trials": 0,
         "seconds": round(warm_s, 4)},
    ]
    show(render_table(rows, precision=4,
                      title="E24: family sweep, cold vs warm cache"))
    show(f"[litmus-family] warm speedup {speedup:.1f}x "
         f"(floor {SPEEDUP_FLOOR}x full mode, tracked capped at "
         f"{SPEEDUP_CAP}x) · {MEMBERS} members x {len(MODELS)} models · "
         f"store: {stats.entries} entries, {stats.hits} hits, "
         f"{stats.stored} stored")

    write_rows(
        results_path("litmus_family"),
        rows,
        metadata={
            "experiment": "litmus_family",
            "seed": SEED,
            "shards": SHARDS,
            "members": MEMBERS,
            "models": list(MODELS),
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "speedup_floor": SPEEDUP_FLOOR,
            "warm_speedup_raw": round(speedup, 2),
            "tracked": {
                "warm_speedup_capped": {
                    "value": round(min(speedup, SPEEDUP_CAP), 2),
                    "higher_is_better": True,
                },
            },
        },
    )

    # Determinism is the whole claim: all three sweeps agree bit for bit.
    assert cold == uncached, "cold cached sweep diverged from uncached"
    assert warm == uncached, "warm cached sweep diverged from uncached"
    # Cold writes one entry per sampled shard; warm repeats fetch them all.
    expected = points * SHARDS
    assert stats.stored == expected, (expected, stats)
    assert stats.hits >= expected * WARM_REPEATS, (expected, stats)

    assert speedup > 1.0, (
        f"warm sweep is slower than cold ({speedup:.2f}x)"
    )
    if not smoke_mode():
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm speedup {speedup:.1f}x below the committed "
            f"{SPEEDUP_FLOOR}x floor"
        )
