"""E8 — Theorem 6.2: the two-thread non-manifestation probabilities.

Regenerates the paper's headline table —

    SC  ≈ 0.1666,   TSO ∈ (0.1315, 0.1369),   WO ≈ 0.1296

— via the exact/numeric route, validates every value end-to-end with the
full Monte-Carlo pipeline (shared program, settling, shifts, overlap), and
adds the PSO column the paper's footnote 4 omits.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    estimate_non_manifestation,
    non_manifestation_probability,
    theorem_62_reference,
    tso_two_thread_bounds,
)
from repro.reporting import ascii_bars, render_table

TRIALS = 250_000


def test_theorem62_table(run_once):
    def compute():
        rows = []
        for model in PAPER_MODELS:
            exact = non_manifestation_probability(model).value
            empirical = estimate_non_manifestation(model, n=2, trials=TRIALS,
                                                   seed=909 + ord(model.name[0]))
            rows.append(
                {
                    "model": model.name,
                    "Pr[A] exact/numeric": exact,
                    "Pr[A] monte carlo": empirical.estimate,
                    "CI low": empirical.proportion.low,
                    "CI high": empirical.proportion.high,
                    "agrees": empirical.agrees_with(exact),
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=6, title="Theorem 6.2: Pr[A] at n = 2"))
    values = {row["model"]: row["Pr[A] exact/numeric"] for row in rows}
    show(
        ascii_bars(
            [model.name for model in PAPER_MODELS],
            [1.0 - values[model.name] for model in PAPER_MODELS],
            title="Pr[bug manifests] at n = 2",
        )
    )

    # Published values.
    reference = theorem_62_reference()
    assert values["SC"] == pytest.approx(reference["SC"])
    assert values["WO"] == pytest.approx(reference["WO"])
    lower, upper = tso_two_thread_bounds()
    assert lower < values["TSO"] < upper
    # Ordering, including the library's PSO extension.
    assert values["WO"] < values["TSO"] < values["PSO"] < values["SC"]
    # The paper's remark: TSO lands substantially closer to WO than to SC.
    assert abs(values["TSO"] - values["WO"]) < abs(values["TSO"] - values["SC"])
    # Monte Carlo agrees everywhere.
    assert all(row["agrees"] for row in rows)


def test_theorem62_sc_wo_ratio(benchmark):
    """The 9/7 ratio the paper computes for SC vs WO."""

    def ratio() -> float:
        return (
            non_manifestation_probability(SC).value
            / non_manifestation_probability(WO).value
        )

    value = benchmark(ratio)
    show(f"Pr[A_SC] / Pr[A_WO] = {value:.6f} vs paper 9/7 = {9 / 7:.6f}")
    assert value == pytest.approx(9 / 7)
