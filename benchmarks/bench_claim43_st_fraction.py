"""E5 — Claim 4.3: the steady-state bottom-of-program store fraction.

Regenerates the recurrence sequence Pr[S_ST,i(i)], its 2/3 fixed point,
and a simulated column measuring the actual bottom-instruction type after
settling random prefixes under TSO.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    TSO,
    SettlingProcess,
    generate_program,
    steady_state_store_fraction,
    store_fraction_sequence,
)
from repro.reporting import render_table
from repro.stats import RandomSource, run_bernoulli_trials


def test_claim43_recurrence(benchmark):
    values = benchmark(store_fraction_sequence, 16)
    rows = [
        {"i": i, "Pr[ST at bottom]": value, "closed form": 2 / 3 - (1 / 6) * 0.25 ** (i - 1)}
        for i, value in enumerate(values, start=1)
    ]
    show(render_table(rows, precision=8, title="Claim 4.3 recurrence"))
    assert values[-1] == pytest.approx(2 / 3, abs=1e-8)
    assert steady_state_store_fraction() == pytest.approx(2 / 3)


def test_claim43_simulated_bottom_type(run_once):
    """Settle random bodies and observe the type of the bottom instruction."""

    def bottom_is_store(source: RandomSource) -> bool:
        program = generate_program(48, source)
        result = SettlingProcess(TSO).settle(program, source, record_trace=True)
        prefix_order = result.trace[program.body_length - 1].order
        bottom_index = prefix_order[-1]
        return program.type_of(bottom_index).mnemonic == "ST"

    result = run_once(run_bernoulli_trials, bottom_is_store, 20_000, 606)
    show(f"simulated Pr[ST at bottom] = {result} vs analytic 2/3 = {2 / 3:.6f}")
    assert result.agrees_with(2 / 3)
