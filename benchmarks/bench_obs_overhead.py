"""E19 — observability overhead: watching a run must cost (almost) nothing.

The observability layer (:mod:`repro.obs`) claims to be inert twice
over: with every knob off the engine takes the exact pre-observability
code path (``RunObserver.from_options`` returns ``None``), and with
manifest + trace + progress all enabled the per-shard telemetry rides
the existing result channel, so the hot path pays only one in-worker
``perf_counter`` pair per shard.  This bench quantifies both on the §6
disjointness estimator and asserts the documented budgets:

* **knobs-off** — explicit ``manifest=None, trace=None, progress=False``
  must be indistinguishable from the baseline (same code path);
* **fully-observed** — manifest + trace + progress together must stay
  within ``OBSERVED_OVERHEAD_CEILING`` (5%) of the baseline.

Every leg must reproduce the baseline's exact success count.  Timings
(best of ``REPEATS`` runs per leg) land in ``BENCH_obs_overhead.json``
at the repo root.
"""

from __future__ import annotations

import time

from conftest import results_path, scaled, show, smoke_mode

from repro.core import TSO, estimate_non_manifestation
from repro.reporting import render_table
from repro.reporting.io import write_rows

TRIALS = scaled(200_000, 40_000)
SHARDS = 8
SEED = 1887
WORKERS = 2
REPEATS = 3

#: Enabled-path budget: manifest + trace + progress together must cost at
#: most this factor over the unobserved run (the documented "≤5%").
OBSERVED_OVERHEAD_CEILING = 1.05
#: Off-path budget: explicit disabled knobs take the identical code path,
#: so any measured difference is timing noise.
DISABLED_OVERHEAD_CEILING = 1.05


def _estimate(**options):
    return estimate_non_manifestation(
        TSO, 2, TRIALS, seed=SEED, shards=SHARDS, workers=WORKERS, **options
    )


def _best_leg(name: str, runner, rows: list[dict[str, object]]):
    """Best-of-``REPEATS`` timing: the minimum is the standard noise-robust
    estimator for overhead *ratios* (scheduling hiccups only ever add)."""
    seconds = []
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = runner()
        seconds.append(time.perf_counter() - start)
    rows.append({"variant": name, "trials": TRIALS,
                 "seconds": round(min(seconds), 4),
                 "successes": result.successes})
    return result


def test_obs_overhead(run_once, tmp_path):
    def compute():
        rows: list[dict[str, object]] = []
        baseline = _best_leg("baseline", _estimate, rows)

        disabled = _best_leg(
            "knobs-off",
            lambda: _estimate(manifest=None, trace=None, progress=False),
            rows,
        )
        assert disabled.successes == baseline.successes

        sink = tmp_path / "obs"
        observed = _best_leg(
            "fully-observed",
            lambda: _estimate(manifest=sink / "m.json",
                              trace=sink / "spans.jsonl", progress=True),
            rows,
        )
        assert observed.successes == baseline.successes
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=4,
                      title="E19: observability overhead — inert on and off"))

    by_variant = {row["variant"]: row for row in rows}
    base = max(by_variant["baseline"]["seconds"], 1e-9)
    disabled_ratio = by_variant["knobs-off"]["seconds"] / base
    observed_ratio = by_variant["fully-observed"]["seconds"] / base
    show(f"[obs-overhead] knobs-off {disabled_ratio:.3f}x, "
         f"fully-observed {observed_ratio:.3f}x "
         f"(ceiling {OBSERVED_OVERHEAD_CEILING}x)")

    write_rows(
        results_path("obs_overhead"),
        rows,
        metadata={
            "experiment": "obs_overhead",
            "seed": SEED,
            "shards": SHARDS,
            "workers": WORKERS,
            "repeats": REPEATS,
            "smoke": smoke_mode(),
            "disabled_ratio": round(disabled_ratio, 4),
            "observed_ratio": round(observed_ratio, 4),
            "observed_overhead_ceiling": OBSERVED_OVERHEAD_CEILING,
            "disabled_overhead_ceiling": DISABLED_OVERHEAD_CEILING,
            # Overhead ratios are scale-free, so the CI regression gate
            # can compare a smoke run against this committed baseline.
            "tracked": {
                "disabled_ratio": {"value": round(disabled_ratio, 4),
                                   "higher_is_better": False},
                "observed_ratio": {"value": round(observed_ratio, 4),
                                   "higher_is_better": False},
            },
        },
    )

    assert len({row["successes"] for row in rows}) == 1, (
        "observability changed the merged numbers"
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_CEILING, (
        f"disabled observability cost {disabled_ratio:.3f}x — the off path "
        f"must be the pre-observability code path"
    )
    assert observed_ratio <= OBSERVED_OVERHEAD_CEILING, (
        f"full observability cost {observed_ratio:.3f}x over baseline "
        f"(budget {OBSERVED_OVERHEAD_CEILING}x)"
    )
