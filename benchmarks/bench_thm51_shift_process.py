"""E7 — Theorem 5.1 / Corollary 5.2: the shift-process disjointness law.

Regenerates exact Pr[A(γ̄)] for a spread of segment vectors, validates each
against Monte Carlo, reproduces c(2) = 8/3 and c(n) ∈ [2, 4], and runs
DESIGN.md ablation 3: the n!-term enumeration vs Theorem 6.1's collapsed
identical-marginal form.
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.core import (
    c_constant,
    disjointness_iid,
    disjointness_probability,
    estimate_disjointness,
    point_mass,
)
from repro.reporting import render_table

CASES = [
    [2, 2],
    [0, 0],
    [3, 2, 5],
    [1, 1, 1, 1],
    [4, 0, 2, 1],
]


def test_theorem51_exact_vs_monte_carlo(run_once):
    def compute():
        rows = []
        for index, lengths in enumerate(CASES):
            exact = disjointness_probability(lengths)
            empirical = estimate_disjointness(lengths, trials=120_000, seed=808 + index)
            rows.append(
                {
                    "segments": str(lengths),
                    "exact": exact,
                    "monte carlo": empirical.estimate,
                    "CI low": empirical.proportion.low,
                    "CI high": empirical.proportion.high,
                    "agrees": empirical.agrees_with(exact),
                }
            )
        return rows

    rows = run_once(compute)
    show(render_table(rows, precision=6, title="Theorem 5.1: Pr[A(segments)]"))
    assert all(row["agrees"] for row in rows)


def test_corollary52_constants(benchmark):
    values = benchmark(lambda: [c_constant(n) for n in range(1, 30)])
    rows = [{"n": n, "c(n)": value} for n, value in enumerate(values, start=1)]
    show(render_table(rows[:8], precision=6, title="Corollary 5.2: c(n)"))
    assert values[1] == pytest.approx(8 / 3)
    assert all(2.0 <= value <= 4.0 for value in values)


def test_theorem61_collapse_ablation(benchmark):
    """Ablation 3: n! enumeration vs the collapsed identical-marginal form."""

    def both_routes():
        rows = []
        for n in (2, 3, 4, 5, 6):
            enumerated = disjointness_probability([3] * n)
            collapsed = disjointness_iid(point_mass(1), n).value
            rows.append({"n": n, "n! enumeration": enumerated, "Theorem 6.1": collapsed})
        return rows

    rows = benchmark(both_routes)
    show(render_table(rows, precision=10, title="Ablation: enumeration vs Theorem 6.1"))
    for row in rows:
        assert row["Theorem 6.1"] == pytest.approx(row["n! enumeration"], rel=1e-9)
