"""Tests for repro.core.tso_analysis: Claim 4.3, Lemma 4.2, Claim 4.4."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    conditional_run_distribution,
    f_probability_exact,
    f_probability_lower_bound,
    l_lower_bound_paper,
    l_probability_paper,
    paper_run_distribution,
    psi_pmf,
    run_length_distribution,
    steady_state_store_fraction,
    store_fraction_sequence,
)
from repro.core.tso_analysis import run_transition_matrix
from repro.errors import TruncationError


class TestClaim43:
    """The steady-state store fraction (experiment E5)."""

    def test_paper_value(self):
        assert steady_state_store_fraction() == pytest.approx(2 / 3)

    def test_general_fixed_point(self):
        for p in (0.1, 0.3, 0.7):
            for s in (0.2, 0.5, 0.9):
                x = steady_state_store_fraction(p, s)
                assert x == pytest.approx(p + (1 - p) * s * x)

    def test_sequence_starts_at_p_and_converges(self):
        values = store_fraction_sequence(40)
        assert values[0] == 0.5
        assert values[-1] == pytest.approx(2 / 3, abs=1e-10)

    def test_sequence_matches_paper_recurrence(self):
        values = store_fraction_sequence(10)
        for previous, current in zip(values, values[1:]):
            assert current == pytest.approx(0.5 + 0.25 * previous)

    def test_sequence_matches_closed_form(self):
        """Pr[S_ST,i(i)] = 2/3 - (1/6)(1/4)^{i-1} per Claim 4.3's solve."""
        for i, value in enumerate(store_fraction_sequence(12), start=1):
            assert value == pytest.approx(2 / 3 - (1 / 6) * 0.25 ** (i - 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            store_fraction_sequence(0)
        with pytest.raises(ValueError):
            steady_state_store_fraction(store_probability=1.5)


class TestRunChain:
    """The trailing-run Markov chain — exact-numeric Pr[L_µ]."""

    def test_rows_are_stochastic(self):
        matrix = run_transition_matrix(max_run=32)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_known_transitions(self):
        matrix = run_transition_matrix(max_run=8)
        # From run 0: ST extends (p = 1/2), LD leaves it at 0.
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 0] == pytest.approx(0.5)
        # From run 2: split to 0 w.p. (1-p)(1-s) = 1/4, to 1 w.p. 1/8,
        # stay w.p. (1-p) s^2 = 1/8, grow w.p. 1/2.
        assert matrix[2, 0] == pytest.approx(0.25)
        assert matrix[2, 1] == pytest.approx(0.125)
        assert matrix[2, 2] == pytest.approx(0.125)
        assert matrix[2, 3] == pytest.approx(0.5)

    def test_l0_is_one_third(self):
        assert run_length_distribution().pmf(0) == pytest.approx(1 / 3, abs=1e-9)

    def test_l1_attains_paper_bound(self):
        """Lemma 4.2's bound is tight at µ = 1: Pr[L_1] = 2/7."""
        assert run_length_distribution().pmf(1) == pytest.approx(2 / 7, abs=1e-9)

    def test_lemma_42_lower_bound_holds_everywhere(self):
        runs = run_length_distribution()
        for mu in range(20):
            assert runs.pmf(mu) >= l_lower_bound_paper(mu) - 1e-12, f"mu={mu}"

    def test_mass_sums_to_one(self):
        runs = run_length_distribution()
        assert float(runs.prefix.sum()) == pytest.approx(1.0, abs=1e-9)

    def test_small_max_run_grows_automatically(self):
        """An undersized state space is grown until the tail bound is met."""
        dist = run_length_distribution(max_run=2)
        assert dist.pmf(0) == pytest.approx(1 / 3, abs=1e-6)
        assert dist.tail_bound <= 1e-7

    def test_store_rich_programs_converge(self):
        """p = 0.9 has a heavy run tail; auto-growth still converges."""
        dist = run_length_distribution(store_probability=0.9)
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-6)

    def test_complement_of_l0_matches_claim_43(self):
        """Pr[run ≥ 1] = Pr[bottom instruction is ST] = 2/3."""
        runs = run_length_distribution()
        assert 1 - runs.pmf(0) == pytest.approx(steady_state_store_fraction(), abs=1e-9)

    def test_general_parameters_l0(self):
        """Stationary π_0 solves π_0 = (1-p)(π_0 + (1-π_0)(1-s))."""
        for p in (0.3, 0.6):
            for s in (0.3, 0.7):
                pi0 = run_length_distribution(p, s).pmf(0)
                expected = (1 - p) * (pi0 + (1 - pi0) * (1 - s))
                assert pi0 == pytest.approx(expected, abs=1e-9)


class TestPaperDecomposition:
    """The paper's Ψ/∆/F route with exact φ agrees with the chain."""

    def test_psi_pmf_normalises(self):
        for mu in range(1, 5):
            total = sum(psi_pmf(mu, q) for q in range(200))
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_psi_pmf_paper_form(self):
        assert psi_pmf(2, 3) == pytest.approx(2**-2 * 2**-3 * math.comb(4, 3))

    def test_psi_requires_positive_mu(self):
        with pytest.raises(ValueError):
            psi_pmf(0, 1)

    def test_f_exact_at_least_lower_bound(self):
        for mu in range(1, 6):
            for q in range(0, 8):
                assert (
                    f_probability_exact(mu, q) >= f_probability_lower_bound(mu, q) - 1e-12
                )

    def test_f_with_no_loads_is_certain(self):
        assert f_probability_exact(3, 0) == 1.0
        assert f_probability_lower_bound(3, 0) == 1.0

    def test_f_single_load_exact(self):
        """One LD among µ stores: Pr[F] = Σ_δ 2^-δ / µ (uniform depth)."""
        for mu in range(1, 6):
            expected = sum(2.0**-delta for delta in range(1, mu + 1)) / mu
            assert f_probability_exact(mu, 1) == pytest.approx(expected)

    def test_decomposition_matches_chain(self):
        """The strongest §4 cross-check: two independent derivations agree."""
        chain = run_length_distribution()
        paper = paper_run_distribution()
        for mu in range(12):
            assert paper.pmf(mu) == pytest.approx(chain.pmf(mu), abs=1e-7), f"mu={mu}"

    def test_l_paper_exceeds_published_bound(self):
        for mu in range(1, 10):
            assert l_probability_paper(mu) >= l_lower_bound_paper(mu) - 1e-9

    def test_l_paper_with_bound_phi_matches_published_bound(self):
        """Substituting Claim 4.4's φ ≥ 1 reproduces (4/7)·2^{-µ} at µ = 1."""
        value = l_probability_paper(1, exact_phi=False)
        assert value == pytest.approx(l_lower_bound_paper(1), abs=1e-9)

    def test_l_paper_mu_zero(self):
        assert l_probability_paper(0) == pytest.approx(1 / 3)


class TestConditionalRunDistribution:
    def test_empty_prefix_is_point_mass_zero(self):
        dist = conditional_run_distribution(np.array([], dtype=bool))
        assert dist.pmf(0) == pytest.approx(1.0)

    def test_all_stores_prefix(self):
        """m stores and no loads: the run is deterministically m."""
        dist = conditional_run_distribution(np.array([True] * 5))
        assert dist.pmf(5) == pytest.approx(1.0)

    def test_store_then_load(self):
        """[ST, LD]: the load passes the store w.p. 1/2 -> run 1 or 0...

        If it passes, order is LD ST -> trailing run 1; if not, run 0.
        """
        dist = conditional_run_distribution(np.array([True, False]))
        assert dist.pmf(0) == pytest.approx(0.5)
        assert dist.pmf(1) == pytest.approx(0.5)

    def test_mass_conserved(self, source):
        mask = source.type_array(0.5, 64)
        dist = conditional_run_distribution(mask)
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-9)

    def test_averaging_over_programs_recovers_unconditional(self):
        """E_prog[conditional] = the chain's law (law of total probability)."""
        from repro.stats import RandomSource

        root = RandomSource(99)
        accumulated = np.zeros(64)
        programs = 3000
        for _ in range(programs):
            mask = root.type_array(0.5, 96)
            dist = conditional_run_distribution(mask, max_run=64)
            accumulated += dist.prefix
        averaged = accumulated / programs
        exact = run_length_distribution()
        for mu in range(5):
            # MC over programs only: generous 4-sigma-ish tolerance.
            assert averaged[mu] == pytest.approx(exact.pmf(mu), abs=0.025), f"mu={mu}"

    def test_matches_simulation_for_fixed_program(self):
        """Direct settling of one fixed prefix matches the DP."""
        from repro.core import TSO, SettlingProcess, program_from_types
        from repro.stats import RandomSource, run_categorical_trials

        body = "SLSSLS"
        mask = np.array([ch == "S" for ch in body])
        dist = conditional_run_distribution(mask)

        def trailing_run(src):
            program = program_from_types(body)
            result = SettlingProcess(TSO).settle(program, src, record_trace=True)
            # The L_µ events live on S_m: the order after the body settled,
            # before the critical pair's rounds.  Count its trailing stores.
            prefix_order = result.trace[len(body) - 1].order
            run = 0
            for index in reversed(prefix_order):
                if program.type_of(index).mnemonic == "ST":
                    run += 1
                else:
                    break
            return run

        result = run_categorical_trials(trailing_run, trials=20_000, seed=31)
        for mu in range(4):
            assert result.probability(mu).contains(dist.pmf(mu)), f"mu={mu}"
