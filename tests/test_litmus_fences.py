"""Tests for fence support in the litmus substrate."""

from __future__ import annotations

import pytest

from repro.core import PAPER_MODELS, SC, TSO, WO
from repro.litmus import (
    MESSAGE_PASSING_FENCED,
    STORE_BUFFERING_FENCED,
    STORE_BUFFERING_HALF_FENCED,
    check_all,
    check_test,
    legal_reorderings,
)
from repro.sim import Fence, Load, Store, ThreadProgram


class TestFenceReordering:
    def test_fence_pins_everything(self, paper_model):
        program = ThreadProgram(
            "T0", (Store("x", value=1), Fence(), Load("r1", "y"))
        )
        orders = legal_reorderings(program, paper_model)
        assert len(orders) == 1

    def test_fence_only_blocks_crossing(self):
        """Operations on the same side of a fence still reorder."""
        program = ThreadProgram(
            "T0",
            (Store("x", value=1), Load("r1", "y"), Fence(), Store("z", value=1)),
        )
        orders = legal_reorderings(program, TSO)
        assert len(orders) == 2  # the (ST x, LD y) swap before the fence

    def test_fence_never_moves(self):
        program = ThreadProgram("T0", (Fence(), Load("r1", "x"), Load("r2", "y")))
        for order in legal_reorderings(program, WO):
            assert order[0].is_fence


class TestFencedLitmusVerdicts:
    def test_fully_fenced_sb_forbidden_everywhere(self):
        for model in PAPER_MODELS:
            verdict = check_test(STORE_BUFFERING_FENCED, model)
            assert not verdict.relaxed_reachable, model.name
            assert verdict.matches_literature

    def test_half_fenced_sb_still_relaxed(self):
        """Fencing one thread is not enough — the classic pitfall."""
        verdict = check_test(STORE_BUFFERING_HALF_FENCED, TSO)
        assert verdict.relaxed_reachable
        assert verdict.matches_literature
        assert not check_test(STORE_BUFFERING_HALF_FENCED, SC).relaxed_reachable

    def test_fenced_mp_restored_under_wo(self):
        verdict = check_test(MESSAGE_PASSING_FENCED, WO)
        assert not verdict.relaxed_reachable
        assert verdict.matches_literature

    def test_all_fenced_verdicts_match(self):
        fenced_tests = [
            STORE_BUFFERING_FENCED,
            STORE_BUFFERING_HALF_FENCED,
            MESSAGE_PASSING_FENCED,
        ]
        for verdict in check_all(tests=fenced_tests):
            assert verdict.matches_literature, str(verdict)

    def test_fence_reduces_outcome_count(self):
        unfenced = check_test(STORE_BUFFERING_HALF_FENCED, WO)
        fenced = check_test(STORE_BUFFERING_FENCED, WO)
        assert len(fenced.outcomes) <= len(unfenced.outcomes)
