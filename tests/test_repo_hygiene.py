"""Repo hygiene: generated artifacts must never be tracked.

Committed bytecode (``benchmarks/__pycache__/*.pyc``) once rode along
with a PR and silently went stale — the interpreter version in its name
outlived the source it was compiled from.  This suite pins the cleanup:
``git ls-files`` may not contain bytecode, tool caches, or benchmark
scratch output (the committed ``BENCH_*.json`` baselines are data, not
scratch, and stay tracked).
"""

from __future__ import annotations

import fnmatch
import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Glob patterns (matched against repo-relative POSIX paths) that must
#: never appear in the git index.  Kept in sync with ``.gitignore``.
FORBIDDEN_PATTERNS = (
    "*__pycache__/*",
    "*.pyc",
    "*.pyo",
    ".pytest_cache/*",
    ".hypothesis/*",
    "benchmarks/latest_results.txt",
    "bench-smoke-out/*",
)


def _tracked_files() -> list[str]:
    if shutil.which("git") is None:
        pytest.skip("git executable not available")
    try:
        proc = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
            text=True, check=True, timeout=30,
        )
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired):
        pytest.skip("not a git checkout")
    return proc.stdout.splitlines()


def test_no_generated_artifacts_are_tracked():
    offenders = [
        path
        for path in _tracked_files()
        for pattern in FORBIDDEN_PATTERNS
        if fnmatch.fnmatch(path, pattern)
    ]
    assert not offenders, (
        "generated artifacts are tracked by git (remove with "
        f"`git rm --cached` and see .gitignore): {sorted(set(offenders))}"
    )


def test_gitignore_covers_the_forbidden_classes():
    gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
    for needle in ("__pycache__/", "*.py[cod]",
                   "benchmarks/latest_results.txt", "bench-smoke-out/"):
        assert needle in gitignore, f".gitignore lost the {needle!r} rule"
