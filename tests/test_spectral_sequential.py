"""Tests for the run-chain spectral analysis and sequential estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    finite_run_distribution,
    mixing_rounds,
    run_chain_spectral_gap,
    run_length_distribution,
)
from repro.stats import RandomSource, estimate_to_precision


class TestSpectralGap:
    def test_gap_positive_at_paper_parameters(self):
        gap = run_chain_spectral_gap()
        assert 0.5 < gap < 1.0

    def test_gap_shrinks_with_store_probability(self):
        """Store-rich programs mix slower (runs grow almost deterministically)."""
        assert run_chain_spectral_gap(0.9) < run_chain_spectral_gap(0.5)

    def test_convergence_is_geometric(self):
        """Finite-horizon law vs stationary law decays geometrically.

        The effective rate is max(|λ₂|, p) — the stationary tail beyond the
        reachable run lengths (ratio → p) dominates the spectral term at
        the paper's parameters.
        """
        stationary = run_length_distribution()
        rate = max(1.0 - run_chain_spectral_gap(), 0.5)
        previous_distance = None
        for rounds in (8, 16, 24):
            finite = finite_run_distribution(rounds)
            size = min(finite.truncation_point, stationary.truncation_point)
            distance = 0.5 * float(
                np.abs(finite.prefix[:size] - stationary.prefix[:size]).sum()
            )
            assert distance < 10 * rate**rounds, rounds
            if previous_distance is not None and previous_distance > 1e-14:
                assert distance < previous_distance
            previous_distance = distance

    def test_mixing_rounds_monotone_in_tolerance(self):
        assert mixing_rounds(1e-12) > mixing_rounds(1e-3)

    def test_mixing_rounds_practical(self):
        """The default body lengths comfortably exceed the mixing bound."""
        assert mixing_rounds(1e-12) < 96  # DEFAULT_BODY_LENGTH

    def test_mixing_rounds_validation(self):
        with pytest.raises(ValueError):
            mixing_rounds(0.0)
        with pytest.raises(ValueError):
            mixing_rounds(1.0)


class TestSequentialEstimation:
    @staticmethod
    def _coin(probability):
        def batch_trial(source: RandomSource, size: int) -> int:
            return int(source.bernoulli_array(probability, size).sum())

        return batch_trial

    def test_reaches_target_half_width(self):
        result = estimate_to_precision(self._coin(0.3), half_width=0.01, seed=1)
        assert result.proportion.half_width <= 0.01
        assert result.agrees_with(0.3)

    def test_tighter_target_needs_more_trials(self):
        loose = estimate_to_precision(self._coin(0.5), half_width=0.05, seed=2)
        tight = estimate_to_precision(self._coin(0.5), half_width=0.005, seed=2)
        assert tight.trials > loose.trials

    def test_rare_events_need_fewer_trials_than_worst_case(self):
        """Wilson width shrinks fast near 0: rare events finish early."""
        rare = estimate_to_precision(self._coin(0.01), half_width=0.01, seed=3)
        balanced = estimate_to_precision(self._coin(0.5), half_width=0.01, seed=3)
        assert rare.trials < balanced.trials

    def test_trial_cap_respected(self):
        result = estimate_to_precision(
            self._coin(0.5), half_width=1e-6, seed=4, max_trials=10_000
        )
        assert result.trials == 10_000
        assert result.proportion.half_width > 1e-6  # cap hit, target not met

    def test_reproducible(self):
        a = estimate_to_precision(self._coin(0.4), half_width=0.02, seed=5)
        b = estimate_to_precision(self._coin(0.4), half_width=0.02, seed=5)
        assert (a.successes, a.trials) == (b.successes, b.trials)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_to_precision(self._coin(0.5), half_width=0.0)
        with pytest.raises(ValueError):
            estimate_to_precision(self._coin(0.5), half_width=0.1, initial_batch=0)
        with pytest.raises(ValueError):
            estimate_to_precision(self._coin(0.5), half_width=0.1, growth=0.5)

    def test_end_to_end_with_manifestation(self):
        """Drive the real pipeline to a fixed precision."""
        from repro.core import SC, batch_disjoint, sample_growth_matrix

        def batch_trial(source: RandomSource, size: int) -> int:
            growths = sample_growth_matrix(SC, source, size, 2)
            shifts = source.geometric_array(0.5, (size, 2))
            return int(batch_disjoint(shifts, growths + 2).sum())

        result = estimate_to_precision(batch_trial, half_width=0.01, seed=6)
        assert result.agrees_with(1 / 6)
