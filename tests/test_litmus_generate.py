"""Tests for repro.litmus.generate and repro.litmus.zoo.

The generator's contracts: a family member is a *pure function* of
``(spec, seed, index)`` whose program satisfies every declarative
constraint of its :class:`FamilySpec`; enumerated outcome sets grow
monotonically with the relaxation set (SC at the bottom); sweeps are
bit-identical for fixed ``(spec, seed, trials, shards, rng_plan)`` at
any worker count; and the zoo's operational write-buffer executor is an
independent second opinion that agrees with algebraic PSO everywhere.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL_PAIRS, MemoryModel, model_digest
from repro.core.instructions import LD, ST
from repro.errors import LitmusError, ModelDefinitionError
from repro.litmus import (
    ALL_TESTS,
    FamilySpec,
    PSO_WB,
    SC_NMCA,
    WO_NMCA,
    ZOO_MODELS,
    enumerate_outcomes,
    enumerate_outcomes_buffered,
    enumerate_outcomes_non_atomic,
    family_digests,
    family_member,
    generate_family,
    get_zoo_model,
    program_digest,
    sweep_family,
)
from repro.runconfig import RunConfig
from repro.sim import Fence, Load, Store

seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def family_specs(draw):
    spacing = draw(st.integers(min_value=0, max_value=2))
    return FamilySpec(
        threads=draw(st.integers(min_value=2, max_value=3)),
        ops_per_thread=draw(st.integers(min_value=spacing + 2,
                                        max_value=spacing + 5)),
        addresses=draw(st.integers(min_value=1, max_value=3)),
        spacing=spacing,
        fence_density=draw(st.sampled_from([0.0, 0.25, 1.0])),
        store_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
    )


def memory_ops(program):
    return [op for op in program.operations if not isinstance(op, Fence)]


class TestFamilySpec:
    @pytest.mark.parametrize("kwargs", [
        {"threads": 1},
        {"spacing": -1},
        {"ops_per_thread": 3, "spacing": 2},
        {"addresses": 0},
        {"fence_density": 1.5},
        {"store_fraction": -0.1},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(LitmusError):
            FamilySpec(**kwargs)

    def test_label_and_json_round_trip(self):
        spec = FamilySpec(threads=3, ops_per_thread=5, addresses=2,
                          spacing=1, fence_density=0.25)
        assert spec.label() == "t3o5a2s1f25w50"
        assert FamilySpec(**spec.to_json_dict()) == spec


class TestGeneratorProperties:
    @settings(max_examples=50, deadline=None)
    @given(spec=family_specs(), seed=seeds, index=st.integers(0, 7))
    def test_members_satisfy_spec_constraints(self, spec, seed, index):
        test = family_member(spec, seed, index)
        assert len(test.programs) == spec.threads
        for thread, program in enumerate(test.programs):
            ops = memory_ops(program)
            assert len(ops) == spec.ops_per_thread
            # The critical pair: a store to the thread's own flag,
            # exactly `spacing` fillers later a load of the successor's.
            store_at = next(
                position for position, op in enumerate(ops)
                if isinstance(op, Store) and op.location.startswith("flag"))
            assert ops[store_at].location == f"flag{thread}"
            load_at = store_at + spec.spacing + 1
            critical_load = ops[load_at]
            assert isinstance(critical_load, Load)
            assert critical_load.dst == "rc"
            successor = (thread + 1) % spec.threads
            assert critical_load.location == f"flag{successor}"
            # Fillers draw from the disjoint f* pool.
            pool = {f"f{i}" for i in range(spec.addresses)}
            for position, op in enumerate(ops):
                if position in (store_at, load_at):
                    continue
                assert op.location in pool
            # Fences ride between memory operations, never first.
            if spec.fence_density == 0.0:
                assert ops == list(program.operations)
            assert not isinstance(program.operations[0], Fence)

    @settings(max_examples=50, deadline=None)
    @given(spec=family_specs(), seed=seeds, index=st.integers(0, 7))
    def test_member_is_pure_function_of_arguments(self, spec, seed, index):
        first = family_member(spec, seed, index)
        second = family_member(spec, seed, index)
        assert first.programs == second.programs
        assert program_digest(first) == program_digest(second)

    @settings(max_examples=25, deadline=None)
    @given(spec=family_specs(), seed=seeds)
    def test_relaxed_outcome_is_the_all_zero_critical_read(self, spec, seed):
        test = family_member(spec, seed, 0)
        assert test.relaxed_outcome == tuple(sorted(
            (f"T{k}:rc", 0) for k in range(spec.threads)))
        assert not test.observed_locations

    def test_generate_family_indexes_members(self):
        spec = FamilySpec()
        family = generate_family(spec, 3, seed=9)
        assert [t.name for t in family] \
            == [family_member(spec, 9, i).name for i in range(3)]
        assert family_digests(family) \
            == family_digests(generate_family(spec, 3, seed=9))

    def test_seed_enters_generation(self):
        spec = FamilySpec(ops_per_thread=6, addresses=3, store_fraction=0.5)
        assert family_digests(generate_family(spec, 4, seed=1)) \
            != family_digests(generate_family(spec, 4, seed=2))

    def test_empty_family_rejected(self):
        with pytest.raises(LitmusError):
            generate_family(FamilySpec(), 0)


class TestOutcomeMonotonicity:
    """SC sits at the bottom: enumerated outcome sets only grow as the
    relaxation set grows (for generated programs, which observe no
    memory locations)."""

    relaxation_sets = st.lists(st.sampled_from(ALL_PAIRS), unique=True,
                               max_size=4).map(frozenset)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, relaxed=relaxation_sets)
    def test_sc_subset_of_any_relaxation(self, seed, relaxed):
        test = family_member(FamilySpec(ops_per_thread=3), seed, 0)
        programs = list(test.programs)
        sc = enumerate_outcomes(programs, MemoryModel("SC-base", ()))
        model = enumerate_outcomes(programs, MemoryModel("any", relaxed))
        assert sc <= model

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, smaller=relaxation_sets, extra=relaxation_sets)
    def test_monotone_under_relaxation_inclusion(self, seed, smaller, extra):
        test = family_member(FamilySpec(ops_per_thread=3), seed, 0)
        programs = list(test.programs)
        weaker = smaller | extra
        assert enumerate_outcomes(programs, MemoryModel("a", smaller)) \
            <= enumerate_outcomes(programs, MemoryModel("b", weaker))


class TestSweepDeterminism:
    @pytest.mark.parametrize("rng_plan", ["spawn", "philox"])
    def test_bit_identical_across_worker_counts(self, rng_plan):
        # Shards are the statistical identity and must be pinned; the
        # claim is worker- and transport-independence at fixed shards.
        spec = FamilySpec(ops_per_thread=4, spacing=1, fence_density=0.25)
        reports = [
            sweep_family(spec, ["TSO"], count=2, trials=600, seed=13,
                         config=RunConfig(workers=workers, shards=16,
                                          rng_plan=rng_plan)).to_json_dict()
            for workers in (1, 2, 4)
        ]
        assert reports[0] == reports[1] == reports[2]

    def test_sweep_point_and_rows(self):
        report = sweep_family(FamilySpec(), ["SC", "WO"], count=2,
                              trials=500, seed=3,
                              config=RunConfig(shards=4))
        assert len(report.points) == 4
        point = report.point(1, "WO")
        assert point.model_digest == model_digest(get_zoo_model("WO"))
        assert 0.0 <= point.low <= point.manifestation <= point.high <= 1.0
        assert point.weak_outcomes == round(point.manifestation * 500)
        with pytest.raises(KeyError):
            report.point(0, "PSO")
        assert [row["model"] for row in report.rows()] \
            == ["SC", "WO", "SC", "WO"]
        json.dumps(report.to_json_dict())  # wire-ready

    def test_sc_manifestation_is_zero(self):
        report = sweep_family(FamilySpec(), ["SC"], count=2, trials=500,
                              seed=3, config=RunConfig(shards=4))
        assert all(point.weak_outcomes == 0 for point in report.points)

    def test_zoo_default_and_empty_models_rejected(self):
        report = sweep_family(FamilySpec(), count=1, trials=200, seed=1,
                              config=RunConfig(shards=2))
        assert [p.model for p in report.points] \
            == [m.name for m in ZOO_MODELS]
        with pytest.raises(LitmusError):
            sweep_family(FamilySpec(), [], count=1, trials=200)


class TestZoo:
    def test_lookup_is_superset_of_registry(self):
        assert get_zoo_model("pso-wb") is PSO_WB
        assert get_zoo_model("SC-NMCA") is SC_NMCA
        assert get_zoo_model("wo-nmca") is WO_NMCA
        assert get_zoo_model("total store order").name == "TSO"

    def test_unknown_name_lists_zoo(self):
        with pytest.raises(ModelDefinitionError, match="PSO-WB"):
            get_zoo_model("RC11")

    def test_pso_wb_shares_pso_digest(self):
        """The operational statement is semantically PSO: same digest,
        hence shared exhaustive cache entries — by design."""
        assert model_digest(PSO_WB) == model_digest(get_zoo_model("PSO"))
        assert PSO_WB.atomicity == "atomic"

    def test_nmca_models_are_non_atomic(self):
        assert SC_NMCA.atomicity == "non_atomic"
        assert WO_NMCA.atomicity == "non_atomic"
        assert model_digest(SC_NMCA) != model_digest(get_zoo_model("SC"))


class TestBufferedExecutor:
    def test_agrees_with_algebraic_pso_on_the_full_battery(self):
        """The dejafu-style per-location write-buffer machine reaches
        exactly the algebraic PSO outcome sets on every registered test
        — two independent statements of one model."""
        pso = get_zoo_model("PSO")
        for test in ALL_TESTS:
            programs = list(test.programs)
            buffered = enumerate_outcomes_buffered(
                programs, dict(test.initial_memory), test.observed_locations)
            algebraic = enumerate_outcomes(
                programs, pso, dict(test.initial_memory),
                test.observed_locations)
            assert buffered == algebraic, test.name

    def test_empty_program_list_rejected(self):
        with pytest.raises(LitmusError):
            enumerate_outcomes_buffered([])

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_agrees_with_algebraic_pso_on_generated_members(self, seed):
        test = family_member(FamilySpec(ops_per_thread=3, spacing=1), seed, 0)
        programs = list(test.programs)
        assert enumerate_outcomes_buffered(programs) \
            == enumerate_outcomes(programs, get_zoo_model("PSO"))


class TestNonAtomicFamilies:
    def test_nmca_members_enumerable_and_ordered(self):
        """Non-atomic SC reaches at least SC's outcomes; non-atomic WO
        at least WO's (propagate-immediately embeds the atomic run)."""
        test = family_member(FamilySpec(ops_per_thread=3), 7, 0)
        programs = list(test.programs)
        sc = enumerate_outcomes(programs, get_zoo_model("SC"))
        wo = enumerate_outcomes(programs, get_zoo_model("WO"))
        assert sc <= enumerate_outcomes_non_atomic(programs, SC_NMCA)
        assert wo <= enumerate_outcomes_non_atomic(programs, WO_NMCA)


class TestServiceEstimator:
    def test_params_default_and_run(self):
        from repro.service.estimators import run_estimator, validate_params

        params = validate_params("litmus_family", {"model": "PSO-WB",
                                                   "count": 2,
                                                   "trials": 400})
        assert params["threads"] == 2 and params["seed"] == 0
        result = run_estimator("litmus_family", params, RunConfig(shards=4))
        assert len(result["points"]) == 2
        assert result["points"][0]["model"] == "PSO-WB"

    def test_invalid_spec_maps_to_service_error(self):
        from repro.service.estimators import run_estimator, validate_params
        from repro.service.schemas import ServiceError

        params = validate_params(
            "litmus_family",
            {"model": "TSO", "spacing": 9, "ops_per_thread": 3})
        with pytest.raises(ServiceError) as excinfo:
            run_estimator("litmus_family", params, RunConfig())
        assert excinfo.value.status == 400


class TestCli:
    def test_generate_table_and_programs(self, capsys):
        from repro.cli import main

        assert main(["--shards", "4", "litmus", "generate",
                     "--count", "2", "--models", "TSO",
                     "--trials", "400", "--seed", "5", "--programs"]) == 0
        out = capsys.readouterr().out
        assert "fam-" in out
        assert "TSO" in out

    def test_generate_json_deterministic(self, capsys, tmp_path):
        from repro.cli import main

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["--shards", "4", "litmus", "generate",
                         "--count", "2", "--models", "SC", "WO-NMCA",
                         "--trials", "400", "--seed", "5",
                         "--json", str(path)]) == 0
        first, second = (p.read_text(encoding="utf-8") for p in paths)
        assert first == second
        payload = json.loads(first)
        assert payload["seed"] == 5
        assert {p["model"] for p in payload["points"]} == {"SC", "WO-NMCA"}

    def test_generate_rejects_bad_spec(self):
        from repro.cli import main

        with pytest.raises(LitmusError):
            main(["litmus", "generate", "--spacing", "5",
                  "--ops-per-thread", "3"])
