"""Tests for repro.core.shift: the Definition 1 shift process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShiftProcess, batch_disjoint, estimate_disjointness, segments_disjoint
from repro.core import disjointness_probability


class TestSegmentsDisjoint:
    def test_clearly_separate(self):
        assert segments_disjoint([0, 10], [2, 2])

    def test_nested_overlap(self):
        assert not segments_disjoint([0, 1], [5, 1])

    def test_shared_endpoint_closed_convention(self):
        assert not segments_disjoint([0, 2], [2, 1])

    def test_shared_endpoint_half_open_convention(self):
        assert segments_disjoint([0, 2], [2, 1], closed=False)

    def test_adjacent_with_gap_of_one(self):
        assert segments_disjoint([0, 3], [2, 1])

    def test_equal_shifts_always_overlap(self):
        assert not segments_disjoint([4, 4], [0, 0])

    def test_zero_length_segments(self):
        assert segments_disjoint([0, 1], [0, 0])
        assert not segments_disjoint([2, 2], [0, 0])

    def test_unsorted_input_handled(self):
        assert segments_disjoint([10, 0], [2, 2])

    def test_three_segments_with_middle_collision(self):
        # Segments [3, 8] and [8, 9] share the point 8.
        assert not segments_disjoint([0, 3, 8], [2, 5, 1])
        assert segments_disjoint([0, 3, 9], [2, 5, 1])

    def test_figure_2_instance(self):
        """The paper's Figure 2: shifts (8,0,2), lengths (3,2,5).

        Touching at point 2 -> overlap under the theorem convention,
        disjoint under the figure caption's half-open reading.
        """
        assert not segments_disjoint([8, 0, 2], [3, 2, 5])
        assert segments_disjoint([8, 0, 2], [3, 2, 5], closed=False)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            segments_disjoint([0, 1], [1])


class TestBatchDisjoint:
    def test_matches_scalar(self, source):
        lengths = np.array([2, 3, 1])
        shifts = source.geometric_array(0.5, (200, 3))
        batched = batch_disjoint(shifts, lengths)
        for row in range(200):
            assert batched[row] == segments_disjoint(shifts[row], lengths)

    def test_per_row_lengths(self):
        shifts = np.array([[0, 10], [0, 1]])
        lengths = np.array([[2, 2], [5, 5]])
        result = batch_disjoint(shifts, lengths)
        assert list(result) == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_disjoint(np.zeros(3, dtype=int), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            batch_disjoint(np.zeros((2, 3), dtype=int), np.zeros((2, 4), dtype=int))


class TestShiftProcess:
    def test_beta_validation(self):
        with pytest.raises(ValueError):
            ShiftProcess(1.0)
        with pytest.raises(ValueError):
            ShiftProcess(-0.1)

    def test_sample_shifts_shape(self, source):
        process = ShiftProcess(0.5)
        assert process.sample_shifts(source, 5).shape == (5,)

    def test_zero_beta_never_shifts(self, source):
        process = ShiftProcess(0.0)
        assert not process.sample_shifts(source, 10).any()

    def test_sample_event_returns_bool(self, source):
        process = ShiftProcess()
        assert isinstance(process.sample_event(source, [1, 2]), bool)

    def test_count_disjoint_bounded(self, source):
        process = ShiftProcess()
        count = process.count_disjoint(source, [2, 2], batch=500)
        assert 0 <= count <= 500


class TestEstimateDisjointness:
    def test_matches_theorem_51(self):
        """MC disjointness agrees with the exact Theorem 5.1 value."""
        for lengths in ([2, 2], [3, 2, 5], [0, 0]):
            empirical = estimate_disjointness(lengths, trials=60_000, seed=13)
            exact = disjointness_probability(lengths)
            assert empirical.agrees_with(exact), f"lengths={lengths}"

    def test_reproducible(self):
        a = estimate_disjointness([2, 2], trials=5000, seed=7)
        b = estimate_disjointness([2, 2], trials=5000, seed=7)
        assert a.successes == b.successes
