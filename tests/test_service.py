"""The estimation service (``repro.service``): queue, dedup, HTTP, resume.

The acceptance property of the whole subsystem is exercised end to end:
two *concurrent identical* submissions produce exactly one shard
computation (asserted through ``service.jobs_deduped`` and the
``run.cache_*`` metrics in the manifest) and hand both clients the same
job — hence byte-identical manifests.  Around that sit unit tests for
the strict wire schemas, the estimator catalogue, the dedup identity
(scheduling knobs must never split it; statistical knobs must), the
priority queue with its rate control, registry persistence, and the
graceful-shutdown → restart → resume contract.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import RunConfig
from repro.service import (
    ESTIMATORS,
    EstimationService,
    Job,
    JobQueue,
    JobRegistry,
    QueueFull,
    ServiceClient,
    ServiceError,
    job_key,
    parse_submit,
    serve,
    validate_params,
)
from repro.service.server import ROUTES

SMALL = {"estimator": "non_manifestation",
         "params": {"model": "TSO", "trials": 800},
         "config": {"shards": 2}}


# ----------------------------------------------------------------------
# Wire schemas
# ----------------------------------------------------------------------

class TestParseSubmit:
    def test_minimal_submission(self):
        request = parse_submit({"estimator": "non_manifestation"})
        assert request.estimator == "non_manifestation"
        assert request.params == {}
        assert request.priority == 0
        assert request.dedup is True

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_submit({"estimator": "x", "paramz": {}})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-field"

    @pytest.mark.parametrize("knob", ["checkpoint", "cache", "manifest",
                                      "trace", "progress"])
    def test_managed_knobs_rejected(self, knob):
        value = True if knob == "progress" else "/tmp/evil"
        with pytest.raises(ServiceError) as excinfo:
            parse_submit({"estimator": "x", "config": {knob: value}})
        assert excinfo.value.code == "managed-knob"

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_submit({"estimator": "x", "config": {"workerz": 2}})
        assert excinfo.value.code == "bad-config"

    def test_priority_must_be_bounded_int(self):
        with pytest.raises(ServiceError):
            parse_submit({"estimator": "x", "priority": "high"})
        with pytest.raises(ServiceError):
            parse_submit({"estimator": "x", "priority": True})
        with pytest.raises(ServiceError):
            parse_submit({"estimator": "x", "priority": 1000})

    def test_dedup_must_be_bool(self):
        with pytest.raises(ServiceError):
            parse_submit({"estimator": "x", "dedup": 1})

    def test_non_object_body_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_submit(["not", "an", "object"])
        assert excinfo.value.code == "bad-body"


# ----------------------------------------------------------------------
# Estimator catalogue + dedup identity
# ----------------------------------------------------------------------

class TestEstimatorCatalogue:
    def test_params_fully_defaulted(self):
        params = validate_params("non_manifestation",
                                 {"model": "TSO", "trials": 100})
        assert params["n"] == 2
        assert params["seed"] == 0
        assert params["confidence"] == 0.99

    def test_unknown_estimator_is_404(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_params("frobnicate", {})
        assert excinfo.value.status == 404

    def test_unknown_param_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_params("non_manifestation",
                            {"model": "TSO", "trials": 1, "sharts": 2})
        assert excinfo.value.code == "unknown-param"

    def test_missing_required_param_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_params("non_manifestation", {"model": "TSO"})
        assert excinfo.value.code == "missing-param"

    def test_bool_is_not_an_int_param(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_params("non_manifestation",
                            {"model": "TSO", "trials": True})
        assert excinfo.value.code == "bad-param"

    def test_every_estimator_describes_itself(self):
        for spec in ESTIMATORS.values():
            description = spec.describe()
            assert description["name"] == spec.name
            json.dumps(description)


class TestJobKey:
    PARAMS = {"model": "TSO", "trials": 1000}

    def key(self, config=RunConfig(), params=None):
        full = validate_params("non_manifestation", params or self.PARAMS)
        return job_key("non_manifestation", full, config)

    def test_scheduling_knobs_never_split_the_key(self):
        base = self.key(RunConfig(shards=4))
        same = self.key(RunConfig(shards=4, workers=2, retries=3,
                                  timeout=60.0, transport="pickle"))
        assert base == same

    def test_statistical_knobs_split_the_key(self):
        base = self.key(RunConfig(shards=4))
        assert base != self.key(RunConfig(shards=8))
        assert base != self.key(RunConfig(shards=4, rng_plan="philox"))
        assert base != self.key(RunConfig(shards=4, fingerprint="aa"))
        assert base != self.key(RunConfig(shards=4, backend="scalar"))

    def test_omitted_default_equals_explicit_default(self):
        sparse = self.key(params={"model": "TSO", "trials": 1000})
        explicit = self.key(params={"model": "TSO", "trials": 1000,
                                    "n": 2, "seed": 0})
        assert sparse == explicit

    def test_params_split_the_key(self):
        assert (self.key(params={"model": "TSO", "trials": 1000})
                != self.key(params={"model": "WO", "trials": 1000}))


# ----------------------------------------------------------------------
# Queue + registry
# ----------------------------------------------------------------------

class TestJobQueue:
    def test_priority_order_fifo_within_priority(self):
        executed: list[str] = []
        done = threading.Event()

        def execute(job_id: str) -> None:
            executed.append(job_id)
            if len(executed) == 4:
                done.set()

        queue = JobQueue(execute, workers=1, max_queued=16)
        queue.submit("low-1", priority=-1)
        queue.submit("high", priority=5)
        queue.submit("mid-a", priority=0)
        queue.submit("mid-b", priority=0)
        queue.start()
        assert done.wait(timeout=10)
        assert executed == ["high", "mid-a", "mid-b", "low-1"]

    def test_queue_full(self):
        queue = JobQueue(lambda job_id: None, workers=1, max_queued=2)
        queue.submit("a")
        queue.submit("b")
        with pytest.raises(QueueFull):
            queue.submit("c")
        queue.submit("forced", force=True)  # resume path bypasses the cap
        assert queue.depth() == 3

    def test_shutdown_returns_leftovers(self):
        queue = JobQueue(lambda job_id: None, workers=1, max_queued=8)
        queue.submit("a", priority=1)
        queue.submit("b", priority=0)
        leftovers = queue.shutdown(drain_seconds=0.1)
        assert leftovers == ["a", "b"]
        with pytest.raises(RuntimeError):
            queue.submit("c")


class TestJobRegistry:
    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "jobs.json"
        registry = JobRegistry(path)
        job = registry.create(key="k1", estimator="non_manifestation",
                              params={"model": "TSO"}, config_wire={},
                              priority=2)
        job.mark_running()
        job.mark_done({"estimate": 0.5})
        registry.save()
        reloaded = JobRegistry.load(path)
        twin = reloaded.get(job.id)
        assert twin.to_wire() == job.to_wire()
        assert reloaded.unfinished() == []

    def test_failed_jobs_do_not_absorb_dedup(self, tmp_path):
        registry = JobRegistry()
        job = registry.create(key="k1", estimator="e", params={},
                              config_wire={})
        assert registry.find_dedup_target("k1") is job
        job.mark_failed("boom")
        assert registry.find_dedup_target("k1") is None

    def test_malformed_snapshot_raises(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="snapshot"):
            JobRegistry.load(path)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="state"):
            Job.from_wire({"id": "j", "key": "k", "estimator": "e",
                           "params": {}, "config_wire": {},
                           "state": "paused"})


# ----------------------------------------------------------------------
# The service core (in-process, no HTTP)
# ----------------------------------------------------------------------

def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition not reached")
        time.sleep(0.01)


class TestEstimationService:
    def test_concurrent_identical_submissions_one_computation(self, tmp_path):
        service = EstimationService(tmp_path, job_workers=2)
        responses: list[tuple[dict, int]] = [None, None]

        def submit(index: int) -> None:
            responses[index] = service.submit(dict(SMALL))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        ids = {response[0]["job"]["id"] for response in responses}
        assert len(ids) == 1, "identical submissions must collapse"
        assert sorted(r[0]["deduped"] for r in responses) == [False, True]
        assert sorted(r[1] for r in responses) == [200, 201]
        job_id = ids.pop()
        wait_for(lambda: service.registry.get(job_id).finished)
        result = service.result(job_id)

        metrics = service.metrics.snapshot()
        assert metrics["service.jobs_submitted"]["value"] == 1
        assert metrics["service.jobs_deduped"]["value"] == 1
        assert metrics["service.jobs_completed"]["value"] == 1
        run = result["manifest"]["runs"][0]
        # One computation: every shard executed exactly once, none cached.
        assert run["metrics"]["run.cache_hits"]["value"] == 0
        assert run["execution"]["executed_shards"] == 2
        service.shutdown(drain_seconds=1.0)

    def test_warm_resubmission_hits_the_shard_cache(self, tmp_path):
        service = EstimationService(tmp_path, job_workers=1)
        cold, _ = service.submit(dict(SMALL))
        cold_id = cold["job"]["id"]
        wait_for(lambda: service.registry.get(cold_id).finished)

        warm_payload = dict(SMALL, dedup=False)
        warm, status = service.submit(warm_payload)
        assert status == 201 and warm["deduped"] is False
        warm_id = warm["job"]["id"]
        assert warm_id != cold_id
        wait_for(lambda: service.registry.get(warm_id).finished)

        cold_result = service.result(cold_id)
        warm_result = service.result(warm_id)
        warm_run = warm_result["manifest"]["runs"][0]
        assert warm_run["metrics"]["run.cache_hits"]["value"] == 2
        assert warm_run["execution"]["executed_shards"] == 0
        assert warm_result["result"] == cold_result["result"]
        service.shutdown(drain_seconds=1.0)

    def test_failed_job_reports_and_counts(self, tmp_path):
        service = EstimationService(tmp_path, job_workers=1)
        response, _ = service.submit({
            "estimator": "non_manifestation",
            "params": {"model": "NOSUCH", "trials": 10},
        })
        job_id = response["job"]["id"]
        wait_for(lambda: service.registry.get(job_id).finished)
        assert service.registry.get(job_id).state == "failed"
        assert service.metrics.snapshot()["service.jobs_failed"]["value"] == 1
        with pytest.raises(ServiceError) as excinfo:
            service.result(job_id)
        assert excinfo.value.code == "job-failed"
        service.shutdown(drain_seconds=1.0)

    def test_result_before_finish_is_conflict(self, tmp_path):
        service = EstimationService(tmp_path, start=False)
        response, _ = service.submit(dict(SMALL))
        with pytest.raises(ServiceError) as excinfo:
            service.result(response["job"]["id"])
        assert excinfo.value.code == "not-finished"
        service.shutdown(drain_seconds=0.1)

    def test_rate_control_rejects_with_429(self, tmp_path):
        service = EstimationService(tmp_path, start=False, max_queued=1)
        service.submit(dict(SMALL))
        overflow = {"estimator": "non_manifestation",
                    "params": {"model": "WO", "trials": 50}}
        with pytest.raises(ServiceError) as excinfo:
            service.submit(overflow)
        assert excinfo.value.status == 429
        metrics = service.metrics.snapshot()
        assert metrics["service.jobs_rejected"]["value"] == 1
        service.shutdown(drain_seconds=0.1)

    def test_server_default_config_must_not_carry_managed_knobs(self, tmp_path):
        with pytest.raises(ValueError, match="must not set"):
            EstimationService(tmp_path, start=False,
                              default_config=RunConfig(cache="auto"))

    def test_shutdown_then_restart_resumes_and_completes(self, tmp_path):
        # Accept a job but never start the worker pool: the shutdown
        # must persist it as queued, and a fresh service on the same
        # state directory must re-enqueue and finish it.
        first = EstimationService(tmp_path, start=False)
        response, _ = first.submit(dict(SMALL))
        job_id = response["job"]["id"]
        first.shutdown(drain_seconds=0.1)
        snapshot = json.loads((tmp_path / "jobs.json").read_text())
        assert [(j["id"], j["state"]) for j in snapshot["jobs"]] == [
            (job_id, "queued")]

        second = EstimationService(tmp_path, job_workers=1)
        metrics = second.metrics.snapshot()
        assert metrics["service.jobs_resumed"]["value"] == 1
        wait_for(lambda: second.registry.get(job_id).finished)
        assert second.registry.get(job_id).state == "done"
        result = second.result(job_id)
        assert result["result"]["trials"] == SMALL["params"]["trials"]
        second.shutdown(drain_seconds=1.0)

    def test_submissions_refused_while_shutting_down(self, tmp_path):
        service = EstimationService(tmp_path, start=False)
        service.shutdown(drain_seconds=0.1)
        with pytest.raises(ServiceError) as excinfo:
            service.submit(dict(SMALL))
        assert excinfo.value.status == 503


# ----------------------------------------------------------------------
# The HTTP front end
# ----------------------------------------------------------------------

@pytest.fixture
def http_service(tmp_path):
    server = serve("127.0.0.1", 0, tmp_path, job_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(drain_seconds=1.0)


class TestHTTP:
    def test_health_and_estimators(self, http_service):
        health = http_service.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == 1
        names = [spec["name"] for spec in http_service.estimators()]
        assert names == sorted(ESTIMATORS)

    def test_submit_poll_result_lifecycle(self, http_service):
        submitted = http_service.submit(
            "non_manifestation", {"model": "TSO", "trials": 800},
            config={"shards": 2})
        job_id = submitted["job"]["id"]
        final = http_service.wait(job_id)
        assert final["state"] == "done"
        result = http_service.result(job_id)
        assert result["result"]["type"] == "BernoulliResult"
        assert result["manifest"]["kind"] == "repro/run-manifest"
        jobs = http_service.jobs()
        assert [job["id"] for job in jobs] == [job_id]

    def test_error_statuses(self, http_service):
        with pytest.raises(ServiceError) as excinfo:
            http_service.job("job-99999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            http_service._request("GET", "/v1/nope")
        assert excinfo.value.code == "unknown-route"
        with pytest.raises(ServiceError) as excinfo:
            http_service._request("POST", "/v1/health", {})
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError) as excinfo:
            http_service.submit("nope", {})
        assert excinfo.value.status == 404

    def test_metrics_route_exposes_catalogue_names(self, http_service):
        http_service.submit("non_manifestation",
                            {"model": "TSO", "trials": 800},
                            config={"shards": 2})
        metrics = http_service.metrics()
        assert metrics["service.jobs_submitted"]["value"] == 1
        assert "service.queue_depth" in metrics


def test_route_table_shape():
    assert len(ROUTES) == len({(m, p) for m, p, _ in ROUTES})
    for method, path, summary in ROUTES:
        assert method in ("GET", "POST")
        assert path.startswith("/v1/")
        assert summary
