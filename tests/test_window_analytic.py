"""Tests for repro.core.window_analytic: Theorem 4.1 (and the PSO extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    PSO,
    SC,
    TSO,
    WO,
    pso_window_distribution,
    sc_window_distribution,
    tso_window_distribution,
    tso_window_lower_bound,
    tso_window_upper_bound,
    window_distribution,
    wo_window_distribution,
)
from repro.core import run_length_distribution, window_from_run_distribution
from repro.errors import ModelDefinitionError


class TestSequentialConsistency:
    def test_point_mass_at_zero(self):
        dist = sc_window_distribution()
        assert dist.pmf(0) == 1.0
        assert dist.pmf(1) == 0.0
        assert dist.pmf(5) == 0.0


class TestWeakOrdering:
    def test_paper_values(self):
        """Theorem 4.1 WO: Pr[B_0] = 2/3, Pr[B_γ] = 2^{-γ}/3."""
        dist = wo_window_distribution()
        assert dist.pmf(0) == pytest.approx(2 / 3)
        for gamma in range(1, 10):
            assert dist.pmf(gamma) == pytest.approx(2.0**-gamma / 3), f"gamma={gamma}"

    def test_normalised(self):
        dist = wo_window_distribution()
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-10)

    def test_general_settle_probability(self):
        """Pr[B_0] = 1/(1+s), Pr[B_γ] = (1-s) s^γ / (1+s)."""
        for s in (0.2, 0.5, 0.8):
            dist = wo_window_distribution(s)
            assert dist.pmf(0) == pytest.approx(1 / (1 + s))
            assert dist.pmf(2) == pytest.approx((1 - s) * s**2 / (1 + s))

    def test_zero_settle_degenerates_to_sc(self):
        dist = wo_window_distribution(0.0)
        assert dist.pmf(0) == 1.0

    def test_invalid_settle_rejected(self):
        with pytest.raises(ValueError):
            wo_window_distribution(1.0)


class TestTotalStoreOrder:
    def test_gamma_zero_paper_value(self):
        assert tso_window_distribution().pmf(0) == pytest.approx(2 / 3, abs=1e-9)

    def test_within_published_bounds(self):
        """Theorem 4.1 TSO: (6/7)4^{-γ} ≤ Pr[B_γ] ≤ (6/7)4^{-γ} + (2/21)2^{-γ}."""
        dist = tso_window_distribution()
        for gamma in range(1, 16):
            value = dist.pmf(gamma)
            assert tso_window_lower_bound(gamma) - 1e-12 <= value, f"gamma={gamma}"
            assert value <= tso_window_upper_bound(gamma) + 1e-12, f"gamma={gamma}"

    def test_bounds_shape(self):
        assert tso_window_lower_bound(0) == pytest.approx(2 / 3)
        assert tso_window_upper_bound(0) == pytest.approx(2 / 3)
        assert tso_window_lower_bound(1) == pytest.approx(6 / 28)
        assert tso_window_upper_bound(1) == pytest.approx(6 / 28 + 1 / 21)

    def test_bounds_validate_input(self):
        with pytest.raises(ValueError):
            tso_window_lower_bound(-1)
        with pytest.raises(ValueError):
            tso_window_upper_bound(-1)

    def test_normalised(self):
        dist = tso_window_distribution()
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-7)

    def test_gamma_one_exact_value(self):
        """From the run law: Pr[B_1] = Σ_{µ≥1} fold = 5/21... computed
        directly: (1/2)(2/7) + (1/4)(1 - 1/3 - 2/7) = 1/7 + 2/21 = 5/21."""
        assert tso_window_distribution().pmf(1) == pytest.approx(5 / 21, abs=1e-9)

    def test_window_from_run_distribution_consistency(self):
        runs = run_length_distribution()
        folded = window_from_run_distribution(runs)
        direct = tso_window_distribution()
        for gamma in range(8):
            assert folded.pmf(gamma) == pytest.approx(direct.pmf(gamma))


class TestPartialStoreOrder:
    """The footnote-4 extension (experiment E12)."""

    def test_normalised(self):
        dist = pso_window_distribution()
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-7)

    def test_gamma_zero_larger_than_tso(self):
        """The store chases the load, so PSO windows shrink vs TSO."""
        assert pso_window_distribution().pmf(0) > tso_window_distribution().pmf(0)

    def test_tail_thinner_than_tso(self):
        pso = pso_window_distribution()
        tso = tso_window_distribution()
        for gamma in range(1, 10):
            assert pso.pmf(gamma) < tso.pmf(gamma)

    def test_chase_fold_identity(self):
        """Σ_γ Pr_PSO[B_γ] reproduces total mass: the fold is stochastic."""
        from repro.core import pso_window_from_load_gap

        gap = tso_window_distribution()
        folded = pso_window_from_load_gap(gap)
        assert float(folded.prefix.sum()) == pytest.approx(1.0, abs=1e-7)

    def test_matches_simulation(self):
        from repro.core import sample_window_growth
        from repro.stats import run_categorical_trials

        result = run_categorical_trials(
            lambda src: sample_window_growth(PSO, src), trials=30_000, seed=41
        )
        dist = pso_window_distribution()
        for gamma in range(5):
            assert result.probability(gamma).contains(dist.pmf(gamma)), f"gamma={gamma}"


class TestDispatcher:
    def test_routes_each_paper_model(self, paper_model):
        dist = window_distribution(paper_model)
        assert dist.pmf(0) > 0.5  # Claim B.2: Pr[B_0] >= 1/2 in every model

    def test_claim_b2_all_models(self, paper_model):
        """Appendix Claim B.2: Pr[B_0] ≥ 1/2 in every memory model."""
        assert window_distribution(paper_model).pmf(0) >= 0.5

    def test_honours_model_settle_probability(self):
        relaxed_little = WO.with_settle_probability(0.1)
        dist = window_distribution(relaxed_little)
        assert dist.pmf(0) == pytest.approx(1 / 1.1)

    def test_rejects_non_uniform(self):
        from repro.core import LD, ST, MemoryModel

        lopsided = MemoryModel("lop", [(ST, LD), (LD, LD)], {(ST, LD): 0.2, (LD, LD): 0.8})
        with pytest.raises(ModelDefinitionError):
            window_distribution(lopsided)

    def test_rejects_unknown_relaxation_pattern(self):
        from repro.core import LD, ST, MemoryModel

        exotic = MemoryModel("exotic", [(LD, LD)])
        with pytest.raises(ModelDefinitionError):
            window_distribution(exotic)

    def test_store_probability_affects_tso_only(self):
        tso_rich = window_distribution(TSO, store_probability=0.8)
        tso_poor = window_distribution(TSO, store_probability=0.2)
        assert tso_rich.pmf(3) > tso_poor.pmf(3)
        wo_rich = window_distribution(WO, store_probability=0.8)
        wo_poor = window_distribution(WO, store_probability=0.2)
        assert wo_rich.pmf(3) == pytest.approx(wo_poor.pmf(3))


class TestStochasticOrdering:
    def test_tail_ordering_sc_pso_tso_wo(self):
        """Window-size tails order: SC ≤ PSO ≤ TSO ≤ WO (this model)."""
        sc = window_distribution(SC)
        pso = window_distribution(PSO)
        tso = window_distribution(TSO)
        wo = window_distribution(WO)
        for gamma in range(1, 8):
            sc_tail = 1 - sc.cdf(gamma - 1).value
            pso_tail = 1 - pso.cdf(gamma - 1).value
            tso_tail = 1 - tso.cdf(gamma - 1).value
            wo_tail = 1 - wo.cdf(gamma - 1).value
            assert sc_tail <= pso_tail <= tso_tail <= wo_tail + 1e-12
