"""Tests for the sharded parallel Monte-Carlo engine (repro.stats.parallel).

The load-bearing property throughout: for a fixed ``(seed, shards)`` a
sharded run is **bit-identical** at any worker count — workers decide
where shards execute, never what they compute.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import SC, WO, estimate_non_manifestation, non_manifestation_probability
from repro.parallel import (
    DEFAULT_SHARDS,
    ShardPlan,
    is_picklable,
    merge_bernoulli,
    merge_categorical,
    parallel_map,
    plan_shards,
    resolve_shards,
    resolve_workers,
    run_sharded,
)
from repro.sim import measure_critical_windows, run_canonical_bug
from repro.stats import (
    estimate_event,
    run_bernoulli_trials,
    run_categorical_trials,
)
from repro.analysis import beta_sweep, settle_sweep, thread_sweep

WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Module-level trial functions: picklable, so the pool path really runs.
# ----------------------------------------------------------------------


def _coin(source) -> bool:
    return source.bernoulli(0.5)


def _geom(source) -> int:
    return source.geometric(0.5)


def _batch_coin(source, batch) -> int:
    return int(source.bernoulli_array(0.5, batch).sum())


def _double(item: int) -> int:
    return 2 * item


class TestPlanShards:
    def test_balanced_and_exact(self):
        assert plan_shards(10, 4) == (3, 3, 2, 2)
        assert sum(plan_shards(1_000_003, 8)) == 1_000_003
        sizes = plan_shards(1_000_003, 8)
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_trials(self):
        assert plan_shards(2, 4) == (1, 1, 0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 4)
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_plan_validates_eagerly(self):
        with pytest.raises(ValueError):
            ShardPlan(trials=10, shards=0, seed=0)

    def test_shard_sources_deterministic(self):
        plan = ShardPlan(trials=100, shards=4, seed=9)
        first = [s.bernoulli(0.5) for s in plan.shard_sources()]
        second = [s.bernoulli(0.5) for s in plan.shard_sources()]
        assert first == second


class TestResolveWorkers:
    def test_default_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(8) == 8

    def test_none_means_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestResolveShards:
    """The shard count — the statistical identity — never derives from
    the machine: parallel runs with no explicit ``shards`` all use
    :data:`DEFAULT_SHARDS`, and only ``workers=1`` stays single-shard."""

    def test_single_worker_defaults_to_one_shard(self):
        assert resolve_shards(1, None) == 1

    def test_parallel_defaults_are_worker_independent(self):
        assert resolve_shards(2, None) == DEFAULT_SHARDS
        assert resolve_shards(4, None) == DEFAULT_SHARDS
        assert resolve_shards(None, None) == DEFAULT_SHARDS

    def test_explicit_shards_pass_through(self):
        assert resolve_shards(1, 6) == 6
        assert resolve_shards(None, 3) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            resolve_shards(1, 0)
        with pytest.raises(ValueError):
            resolve_shards(1, -2)


class TestDefaultShardsWorkerInvariance:
    """The headline regression: with ``shards`` unset, the worker count
    must NOT leak into the statistical plan.  On the pre-fix engine the
    default was ``shards=workers`` (and CPU count for ``workers=None``),
    so these runs drew different streams and disagreed."""

    def test_bernoulli_defaults_identical_across_workers(self):
        results = [
            run_bernoulli_trials(_coin, 5000, seed=3, workers=w)
            for w in (2, 4, None)
        ]
        # workers=1 keeps the legacy single-stream path unless shards is
        # given; pinning shards=DEFAULT_SHARDS joins it to the family.
        results.append(run_bernoulli_trials(_coin, 5000, seed=3, workers=1,
                                            shards=DEFAULT_SHARDS))
        assert len({r.successes for r in results}) == 1
        assert all(r.trials == 5000 and r.seed == 3 for r in results)

    def test_estimate_event_defaults_identical_across_workers(self):
        results = [
            estimate_event(_batch_coin, 20_000, seed=7, workers=w)
            for w in (2, 4, None)
        ]
        results.append(estimate_event(_batch_coin, 20_000, seed=7, workers=1,
                                      shards=DEFAULT_SHARDS))
        assert len({r.successes for r in results}) == 1

    def test_categorical_defaults_identical_across_workers(self):
        results = [
            run_categorical_trials(_geom, 5000, seed=5, workers=w)
            for w in (2, 4, None)
        ]
        results.append(run_categorical_trials(_geom, 5000, seed=5, workers=1,
                                              shards=DEFAULT_SHARDS))
        assert len({tuple(sorted(r.counts.items())) for r in results}) == 1

    def test_estimator_defaults_identical_across_workers(self):
        results = [
            estimate_non_manifestation(SC, 2, 10_000, seed=41, workers=w)
            for w in (2, 4, None)
        ]
        results.append(estimate_non_manifestation(SC, 2, 10_000, seed=41,
                                                  workers=1,
                                                  shards=DEFAULT_SHARDS))
        assert len({r.successes for r in results}) == 1


class TestRunSharded:
    def test_results_in_shard_order(self):
        plan = ShardPlan(trials=10, shards=4, seed=0)
        counts = run_sharded(lambda source, n: n, plan, workers=1)
        assert tuple(counts) == plan.shard_trials()

    def test_pool_matches_serial(self):
        plan = ShardPlan(trials=4096, shards=4, seed=21)
        serial = run_sharded(_sum_kernel, plan, workers=1)
        pooled = run_sharded(_sum_kernel, plan, workers=4)
        assert serial == pooled


def _sum_kernel(source, shard_trials) -> int:
    return int(source.bernoulli_array(0.5, shard_trials).sum()) if shard_trials else 0


def _positive_kernel(source, shard_trials) -> int:
    assert shard_trials > 0, "zero-trial shard must never reach the kernel"
    return int(source.bernoulli_array(0.5, shard_trials).sum())


class TestEmptyShards:
    """Zero-trial shards (more shards than trials) are skipped entirely:
    never submitted to a pool, never run through a kernel."""

    def test_zero_trial_shards_never_reach_the_kernel(self):
        plan = ShardPlan(trials=5, shards=16, seed=1)
        assert plan.shard_trials().count(0) == 11
        serial = run_sharded(_positive_kernel, plan, workers=1)
        pooled = run_sharded(_positive_kernel, plan, workers=2)
        assert serial == pooled
        assert sum(serial) <= 5

    def test_harness_tolerates_more_shards_than_trials(self):
        result = run_bernoulli_trials(_coin, 5, seed=1, shards=16)
        assert result.trials == 5


class TestShardedHarness:
    """The harness entry points reproduce bit-for-bit across worker counts."""

    def test_bernoulli_identical_across_workers(self):
        results = [
            run_bernoulli_trials(_coin, 5000, seed=3, shards=4, workers=w)
            for w in WORKER_COUNTS
        ]
        assert len({r.successes for r in results}) == 1
        assert all(r.trials == 5000 and r.seed == 3 for r in results)

    def test_categorical_identical_across_workers(self):
        results = [
            run_categorical_trials(_geom, 5000, seed=5, shards=4, workers=w)
            for w in WORKER_COUNTS
        ]
        assert len({tuple(sorted(r.counts.items())) for r in results}) == 1
        assert all(sum(r.counts.values()) == 5000 for r in results)

    def test_estimate_event_identical_across_workers(self):
        results = [
            estimate_event(_batch_coin, 20_000, seed=7, shards=8, workers=w)
            for w in WORKER_COUNTS
        ]
        assert len({r.successes for r in results}) == 1
        assert results[0].agrees_with(0.5)

    def test_result_depends_on_shard_count(self):
        # (seed, shards) is the statistical identity: changing shards
        # legitimately changes the drawn streams.
        two = run_bernoulli_trials(_coin, 5000, seed=3, shards=2)
        four = run_bernoulli_trials(_coin, 5000, seed=3, shards=4)
        assert two.successes != four.successes

    def test_non_picklable_trial_falls_back_to_serial(self):
        flip = lambda source: source.bernoulli(0.5)  # noqa: E731 — deliberately unpicklable
        assert not is_picklable(flip)
        parallel = run_bernoulli_trials(flip, 2000, seed=2, shards=3, workers=4)
        serial = run_bernoulli_trials(flip, 2000, seed=2, shards=3, workers=1)
        assert parallel.successes == serial.successes

    def test_legacy_serial_path_unchanged(self):
        # workers=1, shards=None must keep the historical derivation.
        legacy = run_bernoulli_trials(_coin, 3000, seed=11)
        again = run_bernoulli_trials(_coin, 3000, seed=11, workers=1, shards=None)
        assert legacy.successes == again.successes


class TestMergeCategorical:
    def test_pools_counts_and_trials(self):
        parts = [
            run_categorical_trials(_geom, 500, seed=s, confidence=0.95)
            for s in range(3)
        ]
        merged = merge_categorical(parts)
        assert merged.trials == 1500
        assert merged.confidence == 0.95
        assert merged.seed is None
        for category in merged.support:
            assert merged.counts[category] == sum(
                part.counts.get(category, 0) for part in parts
            )

    def test_merge_order_irrelevant(self):
        parts = [
            run_categorical_trials(_geom, 500, seed=s) for s in range(3)
        ]
        forward = merge_categorical(parts)
        backward = merge_categorical(reversed(parts))
        assert forward.counts == backward.counts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_categorical([])

    def test_mixed_confidence_rejected(self):
        a = run_categorical_trials(_geom, 100, seed=0, confidence=0.9)
        b = run_categorical_trials(_geom, 100, seed=0, confidence=0.99)
        with pytest.raises(ValueError):
            merge_categorical([a, b])


class TestMergeDegenerateInputs:
    """Zero-trial results (empty shards, older journals) are filtered out
    of merges instead of poisoning the pooled estimate."""

    def test_bernoulli_filters_zero_trial_inputs(self):
        from repro.stats import BernoulliResult

        real = run_bernoulli_trials(_coin, 1000, seed=2)
        empty = BernoulliResult(0, 0, real.confidence, None)
        merged = merge_bernoulli([empty, real, empty])
        assert (merged.successes, merged.trials) == (real.successes, 1000)

    def test_categorical_filters_zero_trial_inputs(self):
        from repro.stats import CategoricalResult

        real = run_categorical_trials(_geom, 1000, seed=2)
        empty = CategoricalResult({}, 0, real.confidence, None)
        merged = merge_categorical([empty, real])
        assert merged.counts == real.counts
        assert merged.trials == 1000

    def test_all_degenerate_rejected(self):
        from repro.stats import BernoulliResult, CategoricalResult

        with pytest.raises(ValueError):
            merge_bernoulli([BernoulliResult(0, 0, 0.99, None)])
        with pytest.raises(ValueError):
            merge_categorical([CategoricalResult({}, 0, 0.99, None)])


class TestCategoricalCacheIsolation:
    """Regression: ``_cache`` is ``init=False``, so ``dataclasses.replace``
    builds a fresh memo instead of aliasing the source's — a copy with a
    different confidence must not serve the original's intervals."""

    def test_replace_does_not_alias_the_interval_cache(self):
        original = run_categorical_trials(_geom, 2000, seed=2, confidence=0.99)
        warmed = original.probability(1)  # populate the original's cache
        copy = dataclasses.replace(original, confidence=0.5)
        assert copy._cache is not original._cache
        narrow = copy.probability(1)
        assert narrow.low > warmed.low and narrow.high < warmed.high

    def test_replace_preserves_counts_and_equality_semantics(self):
        original = run_categorical_trials(_geom, 500, seed=3)
        original.probability(1)
        copy = dataclasses.replace(original, seed=None)
        assert copy.counts == original.counts
        assert copy._cache == {}


class TestParallelAgreesWithClosedForms:
    """Theorem 4.1 window laws + Corollary 5.2 give Theorem 6.2's values;
    the sharded estimator must land inside its own interval around them."""

    def test_sc_one_sixth(self):
        result = estimate_non_manifestation(SC, 2, 40_000, seed=17, shards=4, workers=2)
        assert result.agrees_with(1.0 / 6.0)

    def test_wo_seven_fifty_fourths(self):
        result = estimate_non_manifestation(WO, 2, 40_000, seed=19, shards=4, workers=2)
        assert result.agrees_with(7.0 / 54.0)
        assert result.agrees_with(non_manifestation_probability(WO).value)

    def test_identical_across_workers(self):
        results = [
            estimate_non_manifestation(SC, 2, 20_000, seed=23, shards=4, workers=w)
            for w in WORKER_COUNTS
        ]
        assert len({r.successes for r in results}) == 1


class TestShardedMachineExperiments:
    def test_canonical_bug_identical_across_workers(self):
        results = [
            run_canonical_bug("TSO", 2, 300, seed=29, body_length=4,
                              shards=4, workers=w)
            for w in WORKER_COUNTS
        ]
        assert all(r.final_values == results[0].final_values for r in results)
        assert all(sum(r.final_values.values()) == 300 for r in results)

    def test_window_measurement_identical_across_workers(self):
        results = [
            measure_critical_windows("TSO", 2, 200, seed=31, body_length=4,
                                     shards=4, workers=w)
            for w in WORKER_COUNTS
        ]
        assert all(np.array_equal(r.durations, results[0].durations) for r in results)
        assert all(r.overlap_trials == results[0].overlap_trials for r in results)
        assert all(r.manifest_without_overlap == 0 for r in results)


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_double, range(10), workers=2) == [2 * i for i in range(10)]

    def test_unpicklable_function_falls_back(self):
        offset = 3
        assert parallel_map(lambda x: x + offset, [1, 2], workers=4) == [4, 5]

    def test_sweeps_identical_across_workers(self):
        assert thread_sweep([2, 4, 8], workers=2) == thread_sweep([2, 4, 8], workers=1)
        grid = [0.1, 0.5, 0.9]
        assert settle_sweep(grid, workers=2) == settle_sweep(grid, workers=1)
        assert beta_sweep(grid, workers=2) == beta_sweep(grid, workers=1)


class TestCliWorkers:
    def test_machine_with_workers(self, capsys):
        from repro.cli import main

        assert main(["--workers", "2", "--shards", "4", "machine",
                     "--model", "TSO", "--trials", "50"]) == 0
        assert "bug manifests" in capsys.readouterr().out

    def test_workers_do_not_change_pinned_numbers(self, capsys):
        from repro.cli import main

        outputs = []
        for w in ("1", "2"):
            main(["--workers", w, "--shards", "4", "machine",
                  "--model", "SC", "--trials", "80", "--seed", "37"])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
