"""Tests for repro.stats.intervals: quantiles and binomial intervals."""

from __future__ import annotations

import math

import pytest
from scipy import stats as scipy_stats

from repro.stats import (
    clopper_pearson_interval,
    normal_quantile,
    wilson_interval,
)


class TestNormalQuantile:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999])
    def test_matches_scipy(self, p):
        assert normal_quantile(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-9)

    def test_symmetry(self):
        assert normal_quantile(0.2) == pytest.approx(-normal_quantile(0.8), abs=1e-12)

    def test_median_is_zero(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        assert normal_quantile(0.975) == pytest.approx(1.959963985, abs=1e-8)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_domain(self, p):
        with pytest.raises(ValueError):
            normal_quantile(p)


class TestWilson:
    def test_contains_point_estimate(self):
        result = wilson_interval(30, 100)
        assert result.low < result.estimate < result.high

    def test_matches_closed_form(self):
        """Check against the textbook Wilson formula at z = 1.96-ish."""
        result = wilson_interval(40, 100, confidence=0.95)
        z = normal_quantile(0.975)
        p = 0.4
        centre = (p + z * z / 200) / (1 + z * z / 100)
        spread = z / (1 + z * z / 100) * math.sqrt(p * (1 - p) / 100 + z * z / 40000)
        assert result.low == pytest.approx(centre - spread, abs=1e-12)
        assert result.high == pytest.approx(centre + spread, abs=1e-12)

    def test_extreme_counts_stay_in_unit_interval(self):
        assert wilson_interval(0, 10).low == pytest.approx(0.0, abs=1e-12)
        assert wilson_interval(10, 10).high == pytest.approx(1.0, abs=1e-12)
        assert wilson_interval(0, 10).low >= 0.0
        assert wilson_interval(10, 10).high <= 1.0

    def test_shrinks_with_trials(self):
        small = wilson_interval(10, 20)
        large = wilson_interval(10_000, 20_000)
        assert large.half_width < small.half_width

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(50, 200, confidence=0.9)
        wide = wilson_interval(50, 200, confidence=0.999)
        assert wide.half_width > narrow.half_width

    def test_contains_method(self):
        result = wilson_interval(50, 100)
        assert result.contains(0.5)
        assert not result.contains(0.9)

    @pytest.mark.parametrize(
        "successes,trials,confidence",
        [(-1, 10, 0.9), (11, 10, 0.9), (5, 0, 0.9), (5, 10, 0.0), (5, 10, 1.0)],
    )
    def test_validation(self, successes, trials, confidence):
        with pytest.raises(ValueError):
            wilson_interval(successes, trials, confidence)

    def test_str_mentions_counts(self):
        text = str(wilson_interval(3, 7))
        assert "3/7" in text


class TestClopperPearson:
    @pytest.mark.parametrize("successes,trials", [(0, 10), (3, 10), (10, 10), (250, 1000)])
    def test_matches_scipy_beta_quantiles(self, successes, trials):
        result = clopper_pearson_interval(successes, trials, confidence=0.95)
        if successes > 0:
            expected_low = scipy_stats.beta.ppf(0.025, successes, trials - successes + 1)
            assert result.low == pytest.approx(expected_low, abs=1e-6)
        else:
            assert result.low == 0.0
        if successes < trials:
            expected_high = scipy_stats.beta.ppf(0.975, successes + 1, trials - successes)
            assert result.high == pytest.approx(expected_high, abs=1e-6)
        else:
            assert result.high == 1.0

    def test_conservative_versus_wilson(self):
        exact = clopper_pearson_interval(30, 100)
        wilson = wilson_interval(30, 100)
        assert exact.low <= wilson.low + 1e-9
        assert exact.high >= wilson.high - 1e-9

    def test_contains_truth_for_typical_case(self):
        result = clopper_pearson_interval(166, 1000, confidence=0.99)
        assert result.contains(1 / 6)
