"""Tests for the critical-section-length generalisation."""

from __future__ import annotations

import math

import pytest

from repro.analysis import critical_section_sweep
from repro.core import (
    PAPER_MODELS,
    SC,
    WO,
    disjointness_iid,
    disjointness_probability,
    estimate_non_manifestation,
    log_disjointness_iid,
    non_manifestation_probability,
    point_mass,
    wo_window_distribution,
)


class TestLengthOffset:
    def test_default_matches_paper(self):
        explicit = non_manifestation_probability(SC, critical_section_length=2).value
        default = non_manifestation_probability(SC).value
        assert explicit == default == pytest.approx(1 / 6)

    def test_sc_closed_form_any_length(self):
        """SC windows of length L: Pr[A] = Theorem 5.1 on [L, L]."""
        for length in (2, 3, 5, 9):
            via_iid = non_manifestation_probability(
                SC, critical_section_length=length
            ).value
            via_51 = disjointness_probability([length, length])
            assert via_iid == pytest.approx(via_51, rel=1e-9), length

    def test_longer_sections_are_riskier(self, paper_model):
        values = [
            non_manifestation_probability(
                paper_model, critical_section_length=length
            ).value
            for length in (2, 3, 4, 6)
        ]
        assert values == sorted(values, reverse=True)

    def test_model_ratios_invariant_in_length(self):
        """The clean null result: L scales every model identically."""
        for length in (3, 5, 8):
            ratio = (
                non_manifestation_probability(SC, critical_section_length=length).value
                / non_manifestation_probability(WO, critical_section_length=length).value
            )
            assert ratio == pytest.approx(9 / 7, rel=1e-9), length

    def test_exact_scaling_factor(self):
        """Pr[A](L) = Pr[A](2) · β^{(L-2)·binom(n,2)} at n = 2: halves per step."""
        base = non_manifestation_probability(WO).value
        for length in (3, 4, 5):
            value = non_manifestation_probability(
                WO, critical_section_length=length
            ).value
            assert value == pytest.approx(base * 0.5 ** (length - 2), rel=1e-9)

    def test_log_form_consistent(self):
        growth = wo_window_distribution()
        for n in (2, 4):
            for length in (2, 5):
                assert math.exp(log_disjointness_iid(growth, n, length_offset=length)) == (
                    pytest.approx(disjointness_iid(growth, n, length_offset=length).value,
                                  rel=1e-9)
                )

    def test_invalid_offset_rejected(self):
        with pytest.raises(ValueError):
            disjointness_iid(point_mass(0), 2, length_offset=0)

    def test_monte_carlo_agreement(self):
        exact = non_manifestation_probability(WO, critical_section_length=4).value
        empirical = estimate_non_manifestation(
            WO, 2, trials=150_000, seed=59, critical_section_length=4
        )
        assert empirical.agrees_with(exact)


class TestSweep:
    def test_rows_and_ratio_column(self):
        rows = critical_section_sweep([2, 4])
        assert [row["L"] for row in rows] == [2, 4]
        assert rows[0]["SC/WO ratio"] == pytest.approx(9 / 7)
        assert rows[1]["SC/WO ratio"] == pytest.approx(9 / 7)

    def test_absolute_risk_grows(self):
        rows = critical_section_sweep([2, 6])
        for model in PAPER_MODELS:
            assert rows[1][f"Pr[A] {model.name}"] < rows[0][f"Pr[A] {model.name}"]
