"""Tests for repro.reporting and repro.viz."""

from __future__ import annotations

import pytest

from repro.core import TSO, SettlingProcess, program_from_types
from repro.reporting import (
    EXPERIMENTS,
    ascii_bars,
    ascii_plot,
    format_cell,
    get_experiment,
    render_markdown_table,
    render_table,
)
from repro.stats import RandomSource
from repro.viz import (
    describe_settling,
    render_settling_trace,
    render_shift_diagram,
    shift_outcome_probability,
)


class TestTables:
    def test_render_basic(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_float_precision(self):
        text = render_table([{"v": 1 / 3}], precision=3)
        assert "0.333" in text

    def test_boolean_rendering(self):
        assert "yes" in render_table([{"ok": True}])
        assert "no" in render_table([{"ok": False}])

    def test_title(self):
        assert render_table([{"a": 1}], title="Table 1").startswith("Table 1")

    def test_column_selection_and_missing(self):
        text = render_table([{"a": 1}], columns=["a", "b"])
        assert "b" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table([])

    def test_markdown_shape(self):
        text = render_markdown_table([{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.5, precision=2) == "0.50"
        assert format_cell("text") == "text"


class TestFigures:
    def test_plot_contains_legend_and_axes(self):
        text = ascii_plot([1, 2, 3], {"series": [1.0, 2.0, 3.0]})
        assert "o=series" in text
        assert "x in [1, 3]" in text

    def test_plot_multiple_series_glyphs(self):
        text = ascii_plot([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "o=a" in text and "x=b" in text

    def test_plot_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"a": [1]})

    def test_plot_empty(self):
        with pytest.raises(ValueError):
            ascii_plot([], {})

    def test_plot_constant_series(self):
        text = ascii_plot([0, 1], {"flat": [2.0, 2.0]})
        assert "flat" in text

    def test_bars(self):
        text = ascii_bars(["SC", "WO"], [0.83, 0.87])
        assert "SC" in text and "#" in text

    def test_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars([], [])


class TestExperimentRegistry:
    def test_twenty_four_experiments(self):
        assert len(EXPERIMENTS) == 24

    def test_ids_sequential(self):
        assert [experiment.id for experiment in EXPERIMENTS] == [
            f"E{i}" for i in range(1, 25)
        ]

    def test_lookup(self):
        assert get_experiment("e8").paper_artifact == "Theorem 6.2"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_every_bench_path_exists(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for experiment in EXPERIMENTS:
            assert (root / experiment.bench).exists(), experiment.bench


class TestSettlingTrace:
    def _traced_result(self):
        program = program_from_types("SLSSS")
        return SettlingProcess(TSO).settle(program, RandomSource(11), record_trace=True)

    def test_requires_trace(self):
        program = program_from_types("SL")
        result = SettlingProcess(TSO).settle(program, RandomSource(0))
        with pytest.raises(ValueError):
            render_settling_trace(result)

    def test_one_column_per_round(self):
        result = self._traced_result()
        text = render_settling_trace(result)
        assert "r1" in text and "r7" in text
        assert "critical window" in text

    def test_max_rounds_keeps_tail(self):
        result = self._traced_result()
        text = render_settling_trace(result, max_rounds=2)
        assert "r1" not in text.splitlines()[0]
        assert "r7" in text.splitlines()[0]

    def test_describe_brackets_window(self):
        result = self._traced_result()
        text = describe_settling(result)
        assert "<LD*>" in text and "<ST*>" in text


class TestShiftDiagram:
    def test_figure_2_probability(self):
        """The caption's 2^{-13} for shifts (8, 0, 2)."""
        assert shift_outcome_probability([8, 0, 2]) == pytest.approx(2.0**-13)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            shift_outcome_probability([-1])
        with pytest.raises(ValueError):
            shift_outcome_probability([1], beta=1.0)

    def test_diagram_shape(self):
        text = render_shift_diagram([8, 0, 2], [3, 2, 5])
        assert "g1" in text and "g3" in text
        assert "beta^13" in text
        assert "half-open" in text

    def test_diagram_validation(self):
        with pytest.raises(ValueError):
            render_shift_diagram([1], [1, 2])
        with pytest.raises(ValueError):
            render_shift_diagram([], [])
        with pytest.raises(ValueError):
            render_shift_diagram([0], [-1])

    def test_disjoint_instance_reports_yes(self):
        text = render_shift_diagram([0, 5], [2, 1])
        assert "yes (closed/theorem" in text
