"""Tests for repro.core.heterogeneous: mixed-memory-model fleets."""

from __future__ import annotations

import pytest

from repro.core import (
    PSO,
    SC,
    TSO,
    WO,
    non_manifestation_probability,
    point_mass,
    window_distribution,
)
from repro.core.heterogeneous import (
    estimate_heterogeneous_non_manifestation,
    heterogeneous_disjointness,
    heterogeneous_non_manifestation,
    sample_heterogeneous_growths,
)
from repro.errors import ModelDefinitionError
from repro.stats import RandomSource, wilson_interval


class TestExactRoute:
    def test_homogeneous_fleet_matches_existing_route(self, paper_model):
        fleet = heterogeneous_non_manifestation([paper_model, paper_model])
        homogeneous = non_manifestation_probability(paper_model)
        assert fleet.value == pytest.approx(homogeneous.value, abs=1e-10)

    def test_homogeneous_three_threads(self):
        fleet = heterogeneous_non_manifestation([WO, WO, WO])
        homogeneous = non_manifestation_probability(WO, n=3)
        assert fleet.value == pytest.approx(homogeneous.value, rel=1e-9)

    def test_two_thread_mixing_is_arithmetic_averaging(self):
        """At n = 2 only marginal transforms enter: mixed = mean of pures."""
        mixed = heterogeneous_non_manifestation([SC, WO]).value
        sc = non_manifestation_probability(SC).value
        wo = non_manifestation_probability(WO).value
        assert mixed == pytest.approx((sc + wo) / 2, rel=1e-9)

    def test_fleet_value_between_extremes(self):
        strongest = heterogeneous_non_manifestation([SC, SC, SC]).value
        mixed = heterogeneous_non_manifestation([SC, SC, WO]).value
        weakest = heterogeneous_non_manifestation([WO, WO, WO]).value
        assert weakest < mixed < strongest

    def test_monotone_in_downgrades(self):
        fleets = [[SC, SC, SC], [SC, SC, WO], [SC, WO, WO], [WO, WO, WO]]
        values = [heterogeneous_non_manifestation(fleet).value for fleet in fleets]
        assert values == sorted(values, reverse=True)

    def test_order_of_fleet_irrelevant(self):
        assert heterogeneous_non_manifestation([SC, WO, TSO]).value == pytest.approx(
            heterogeneous_non_manifestation([TSO, SC, WO]).value, rel=1e-12
        )

    def test_single_thread_certain(self):
        assert heterogeneous_disjointness([point_mass(0)]).value == 1.0

    def test_disjointness_matches_theorem51_for_degenerate_laws(self):
        from repro.core import disjointness_probability

        laws = [point_mass(0), point_mass(1), point_mass(3)]
        value = heterogeneous_disjointness(laws).value
        assert value == pytest.approx(disjointness_probability([2, 3, 5]), rel=1e-9)

    def test_coupled_pair_exact_at_n2(self):
        # Two TSO threads at n = 2: marginals suffice, no flag needed.
        value = heterogeneous_non_manifestation([TSO, TSO]).value
        assert value == pytest.approx(
            non_manifestation_probability(TSO).value, abs=1e-10
        )

    def test_coupled_trio_requires_flag(self):
        with pytest.raises(ModelDefinitionError):
            heterogeneous_non_manifestation([TSO, TSO, SC])
        value = heterogeneous_non_manifestation(
            [TSO, TSO, SC], allow_independent_approximation=True
        )
        assert 0 < value.value < 1

    def test_single_coupled_thread_is_exact_at_any_n(self):
        value = heterogeneous_non_manifestation([TSO, SC, WO])
        assert 0 < value.value < 1

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_disjointness([point_mass(0)] * 11)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_non_manifestation([])


class TestSampling:
    def test_shape_and_sc_zeros(self, source):
        growths = sample_heterogeneous_growths([SC, WO, TSO], source, trials=50)
        assert growths.shape == (50, 3)
        assert not growths[:, 0].any()

    def test_marginals_match_window_laws(self, source):
        models = [TSO, PSO, WO]
        growths = sample_heterogeneous_growths(models, source, trials=30_000)
        for thread, model in enumerate(models):
            law = window_distribution(model)
            for gamma in range(3):
                count = int((growths[:, thread] == gamma).sum())
                interval = wilson_interval(count, growths.shape[0], 0.999)
                assert interval.contains(law.pmf(gamma)), (model.name, gamma)

    def test_coupled_threads_correlate(self, source):
        import numpy as np

        growths = sample_heterogeneous_growths([TSO, TSO], source, trials=60_000)
        assert np.corrcoef(growths[:, 0], growths[:, 1])[0, 1] > 0.02

    def test_validation(self, source):
        with pytest.raises(ValueError):
            sample_heterogeneous_growths([SC], source, trials=0)
        with pytest.raises(ValueError):
            sample_heterogeneous_growths([], source, trials=5)

    def test_non_uniform_model_rejected(self, source):
        from repro.core import LD, ST, MemoryModel

        lopsided = MemoryModel("lop", [(ST, LD), (ST, ST)], {(ST, LD): 0.1, (ST, ST): 0.9})
        with pytest.raises(ModelDefinitionError):
            sample_heterogeneous_growths([lopsided, SC], source, trials=5)


class TestMonteCarloRoute:
    @pytest.mark.parametrize("fleet", [
        [SC, WO], [SC, TSO], [WO, PSO], [SC, SC, WO],
    ], ids=lambda fleet: "+".join(model.name for model in fleet))
    def test_agrees_with_exact(self, fleet):
        exact = heterogeneous_non_manifestation(fleet).value
        empirical = estimate_heterogeneous_non_manifestation(fleet, trials=150_000, seed=53)
        assert empirical.agrees_with(exact), f"{exact} vs {empirical}"

    def test_needs_two_threads(self):
        with pytest.raises(ValueError):
            estimate_heterogeneous_non_manifestation([SC], trials=100)

    def test_reproducible(self):
        a = estimate_heterogeneous_non_manifestation([SC, WO], trials=5000, seed=9)
        b = estimate_heterogeneous_non_manifestation([SC, WO], trials=5000, seed=9)
        assert a.successes == b.successes
