"""Tests for repro.reporting.io: JSON serialisation of result rows."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ValueWithError
from repro.reporting import read_rows, rows_to_json, write_rows
from repro.stats import wilson_interval


class TestRowsToJson:
    def test_plain_rows(self):
        document = json.loads(rows_to_json([{"a": 1, "b": "x"}]))
        assert document["rows"] == [{"a": 1, "b": "x"}]

    def test_metadata_included(self):
        document = json.loads(rows_to_json([{"a": 1}], metadata={"experiment": "E8"}))
        assert document["metadata"] == {"experiment": "E8"}

    def test_metadata_omitted_when_absent(self):
        document = json.loads(rows_to_json([{"a": 1}]))
        assert "metadata" not in document

    def test_numpy_scalars_coerced(self):
        row = {"f": np.float64(0.5), "i": np.int64(3), "b": np.bool_(True)}
        document = json.loads(rows_to_json([row]))
        assert document["rows"][0] == {"f": 0.5, "i": 3, "b": True}

    def test_numpy_array_coerced(self):
        document = json.loads(rows_to_json([{"xs": np.arange(3)}]))
        assert document["rows"][0]["xs"] == [0, 1, 2]

    def test_value_with_error_coerced_to_value(self):
        document = json.loads(rows_to_json([{"v": ValueWithError(0.25, 0.01)}]))
        assert document["rows"][0]["v"] == 0.25

    def test_nested_structures(self):
        row = {"pair": (1, np.float64(2.0)), "map": {"inner": np.int32(7)}}
        document = json.loads(rows_to_json([row]))
        assert document["rows"][0] == {"pair": [1, 2.0], "map": {"inner": 7}}

    def test_unknown_objects_stringified(self):
        interval = wilson_interval(3, 10)
        document = json.loads(rows_to_json([{"ci": interval}]))
        assert isinstance(document["rows"][0]["ci"], (str, float))


class TestFileRoundTrip:
    def test_write_and_read(self, tmp_path):
        target = tmp_path / "nested" / "results.json"
        written = write_rows(target, [{"a": 1}], metadata={"seed": 7})
        assert written.exists()
        rows, metadata = read_rows(written)
        assert rows == [{"a": 1}]
        assert metadata == {"seed": 7}

    def test_read_missing_metadata(self, tmp_path):
        target = tmp_path / "results.json"
        target.write_text('{"rows": [{"a": 2}]}')
        rows, metadata = read_rows(target)
        assert rows == [{"a": 2}]
        assert metadata == {}

    def test_real_experiment_rows_serialise(self, tmp_path):
        from repro.analysis import window_pmf_table

        rows = window_pmf_table(range(3))
        target = write_rows(tmp_path / "window.json", rows, {"experiment": "E4"})
        recovered, metadata = read_rows(target)
        assert len(recovered) == 3
        assert metadata["experiment"] == "E4"
        assert recovered[0]["Pr[B] SC"] == 1.0
