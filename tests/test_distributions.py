"""Tests for repro.core.distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DiscreteDistribution, geometric_distribution, point_mass
from repro.core.distributions import ValueWithError
from repro.errors import DistributionError, TruncationError


class TestConstruction:
    def test_exact_from_mapping(self):
        dist = DiscreteDistribution.from_mapping({0: 0.25, 2: 0.75})
        assert dist.pmf(0) == 0.25
        assert dist.pmf(1) == 0.0
        assert dist.pmf(2) == 0.75
        assert dist.tail_bound == 0.0

    def test_from_counts(self):
        dist = DiscreteDistribution.from_counts({0: 3, 1: 1}, trials=4)
        assert dist.pmf(0) == 0.75
        assert dist.pmf(1) == 0.25

    def test_rejects_negative_mass(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([0.5, -0.1, 0.6])

    def test_rejects_excess_mass(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([0.9, 0.3])

    def test_rejects_understated_tail(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([0.5], tail_bound=0.1)

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([])

    def test_rejects_negative_support_in_mapping(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_mapping({-1: 1.0})

    def test_from_function_truncates_with_bound(self):
        dist = DiscreteDistribution.from_function(
            lambda k: 0.5**(k + 1), tail_ratio=0.5, tolerance=1e-10
        )
        assert dist.pmf(0) == 0.5
        assert dist.pmf(3) == 0.5**4
        assert 0 < dist.tail_bound <= 1e-10

    def test_from_function_truncation_failure(self):
        with pytest.raises(TruncationError):
            DiscreteDistribution.from_function(
                lambda k: 1e-9, tail_ratio=0.999999, tolerance=1e-30, max_terms=10
            )


class TestQueries:
    def test_pmf_outside_exact_support_is_zero(self):
        assert point_mass(2).pmf(10) == 0.0
        assert point_mass(2).pmf(-1) == 0.0

    def test_pmf_beyond_truncation_raises(self):
        dist = geometric_distribution(0.5)
        with pytest.raises(DistributionError):
            dist.pmf(dist.truncation_point + 5)

    def test_cdf_and_tail_are_complementary(self):
        dist = geometric_distribution(0.5)
        below = dist.cdf(3)
        above = dist.tail(4)
        assert below.value + above.value == pytest.approx(1.0)

    def test_cdf_exact_values(self):
        dist = DiscreteDistribution.from_mapping({0: 0.25, 1: 0.25, 2: 0.5})
        assert dist.cdf(1).value == pytest.approx(0.5)
        assert dist.cdf(1).error == 0.0
        assert dist.cdf(-1).value == 0.0

    def test_mean_of_point_mass(self):
        assert point_mass(7).mean() == 7.0

    def test_mean_of_geometric(self):
        # E = beta/(1-beta) = 1 for beta = 1/2.
        assert geometric_distribution(0.5).mean() == pytest.approx(1.0, abs=1e-9)

    def test_prefix_is_copy(self):
        dist = point_mass(1)
        prefix = dist.prefix
        prefix[0] = 0.7
        assert dist.pmf(0) == 0.0


class TestPowerTransform:
    def test_point_mass(self):
        assert point_mass(3).power_transform(0.5).value == pytest.approx(0.125)

    def test_geometric_closed_form(self):
        # E[a^X] = (1-b) / (1 - a b) for X ~ Geom(b).
        dist = geometric_distribution(0.5)
        result = dist.power_transform(0.5)
        assert result.value == pytest.approx(0.5 / 0.75, abs=1e-9)
        assert result.error <= 1e-9

    def test_base_one_gives_total_mass(self):
        assert geometric_distribution(0.5).power_transform(1.0).value == pytest.approx(
            1.0, abs=1e-9
        )

    def test_base_zero_gives_pmf_at_zero(self):
        assert geometric_distribution(0.5).power_transform(0.0).value == pytest.approx(0.5)

    def test_base_out_of_range(self):
        with pytest.raises(DistributionError):
            point_mass(0).power_transform(1.5)

    def test_shifted_transform(self):
        dist = point_mass(1)
        assert dist.shifted_power_transform(0.5, 2).value == pytest.approx(0.125)

    def test_shifted_transform_negative_offset(self):
        with pytest.raises(DistributionError):
            point_mass(0).shifted_power_transform(0.5, -1)


class TestComparison:
    def test_tvd_of_identical_is_zero(self):
        dist = geometric_distribution(0.5)
        assert dist.total_variation_distance(dist).value == 0.0

    def test_tvd_of_disjoint_point_masses_is_one(self):
        assert point_mass(0).total_variation_distance(point_mass(3)).value == 1.0

    def test_tvd_symmetric(self):
        a = geometric_distribution(0.5)
        b = point_mass(0)
        assert a.total_variation_distance(b).value == pytest.approx(
            b.total_variation_distance(a).value
        )


class TestValueWithError:
    def test_agrees_within_error(self):
        value = ValueWithError(1.0, 0.1)
        assert value.agrees_with(1.05)
        assert not value.agrees_with(1.2)

    def test_bounds(self):
        value = ValueWithError(2.0, 0.5)
        assert value.low == 1.5
        assert value.high == 2.5

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            ValueWithError(1.0, -0.1)


class TestFactories:
    def test_geometric_invalid_beta(self):
        with pytest.raises(DistributionError):
            geometric_distribution(1.0)

    def test_geometric_zero_beta_is_point_mass(self):
        dist = geometric_distribution(0.0)
        assert dist.pmf(0) == 1.0

    def test_point_mass_negative_rejected(self):
        with pytest.raises(DistributionError):
            point_mass(-1)
