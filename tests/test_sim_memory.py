"""Tests for repro.sim.memory and repro.sim.programs."""

from __future__ import annotations

from repro.sim import (
    AccessKind,
    SHARED_COUNTER,
    SharedMemory,
    canonical_increment,
    canonical_increment_fenced,
    padded_body,
    sample_body_types,
)
from repro.stats import RandomSource


class TestSharedMemory:
    def test_zero_initialised(self):
        memory = SharedMemory()
        assert memory.read("anything", cycle=0, core="T0") == 0

    def test_initial_values(self):
        memory = SharedMemory({"x": 4})
        assert memory.peek("x") == 4

    def test_commit_updates_value(self):
        memory = SharedMemory()
        memory.commit("x", 7, cycle=3, core="T0")
        assert memory.peek("x") == 7

    def test_log_disabled_by_default(self):
        memory = SharedMemory()
        memory.commit("x", 1, cycle=0, core="T0")
        memory.read("x", cycle=1, core="T0")
        assert memory.log == []

    def test_log_records_in_order(self):
        memory = SharedMemory(log_accesses=True)
        memory.commit("x", 1, cycle=0, core="T0")
        memory.read("x", cycle=1, core="T1")
        kinds = [record.kind for record in memory.log]
        assert kinds == [AccessKind.COMMIT, AccessKind.READ]
        assert memory.log[1].value == 1

    def test_peek_not_logged(self):
        memory = SharedMemory(log_accesses=True)
        memory.peek("x")
        assert memory.log == []

    def test_commits_to_filters(self):
        memory = SharedMemory(log_accesses=True)
        memory.commit("x", 1, 0, "T0")
        memory.commit("y", 2, 1, "T0")
        memory.commit("x", 3, 2, "T1")
        values = [record.value for record in memory.commits_to("x")]
        assert values == [1, 3]

    def test_snapshot_is_copy(self):
        memory = SharedMemory({"x": 1})
        snap = memory.snapshot()
        snap["x"] = 99
        assert memory.peek("x") == 1

    def test_record_str(self):
        memory = SharedMemory(log_accesses=True)
        memory.commit("x", 5, cycle=12, core="T3")
        assert "T3" in str(memory.log[0])
        assert "x = 5" in str(memory.log[0])


class TestPrograms:
    def test_sample_body_types_length_and_bias(self):
        types = sample_body_types(2000, RandomSource(1), store_probability=0.25)
        assert len(types) == 2000
        assert abs(sum(types) / 2000 - 0.25) < 0.05

    def test_padded_body_private_locations(self):
        body = padded_body(3, [True, False, True])
        addresses = [op.address for op in body]
        assert addresses == ["t3_a0", "t3_a1", "t3_a2"]
        assert body[0].is_store and body[1].is_load

    def test_canonical_increment_shape(self):
        program = canonical_increment(0)
        assert program.name == "T0"
        memory_ops = program.memory_operations()
        assert len(memory_ops) == 2
        assert memory_ops[0].is_load and memory_ops[0].address == SHARED_COUNTER
        assert memory_ops[1].is_store and memory_ops[1].address == SHARED_COUNTER

    def test_canonical_increment_with_body(self):
        program = canonical_increment(1, [True, True, False])
        assert len(program) == 6
        assert len(program.memory_operations()) == 5

    def test_fenced_variant_has_two_fences(self):
        program = canonical_increment_fenced(0, [True])
        fences = [op for op in program if op.is_fence]
        assert len(fences) == 2

    def test_threads_share_types_but_not_locations(self):
        types = [True, False]
        a = canonical_increment(0, types)
        b = canonical_increment(1, types)
        assert [op.is_store for op in a][:2] == [op.is_store for op in b][:2]
        assert a.operations[0].address != b.operations[0].address
