"""Tests for run manifests / checkpoint resume (repro.stats.checkpoint).

Acceptance property: a run interrupted after k of n shards and resumed
from its checkpoint merges to the **exact** result of an uninterrupted
run — at any worker count, through the high-level estimators as well as
the engine.
"""

from __future__ import annotations

import json

import pytest

from repro.core import SC, WO, estimate_non_manifestation
from repro.parallel import (
    ShardCheckpoint,
    ShardPlan,
    kernel_fingerprint,
    plan_key,
    run_sharded,
)
from repro.stats import run_bernoulli_trials, run_categorical_trials


def _sum_kernel(source, shard_trials) -> int:
    return int(source.bernoulli_array(0.5, shard_trials).sum()) if shard_trials else 0


def _coin(source) -> bool:
    return source.bernoulli(0.5)


def _geom(source) -> int:
    return source.geometric(0.5)


def _heads_kernel(source, shard_trials) -> int:
    """Counts a common event (p = 0.9) — deliberately distinct from
    :func:`_tails_kernel` in code, not just in name."""
    return int(source.bernoulli_array(0.9, shard_trials).sum())


def _tails_kernel(source, shard_trials) -> int:
    """Counts a rare event (p = 0.1): reusing heads' journal is blatant."""
    return int(source.bernoulli_array(0.1, shard_trials).sum())


class TestPlanKey:
    def test_deterministic(self):
        assert plan_key(1000, 8, 42) == plan_key(1000, 8, 42)

    def test_sensitive_to_every_component(self):
        base = plan_key(1000, 8, 42, label="x")
        assert plan_key(1001, 8, 42, label="x") != base
        assert plan_key(1000, 9, 42, label="x") != base
        assert plan_key(1000, 8, 43, label="x") != base
        assert plan_key(1000, 8, 42, label="y") != base
        assert plan_key(1000, 8, None, label="x") != base

    def test_sensitive_to_fingerprint(self):
        base = plan_key(1000, 8, 42, label="x", fingerprint="aaaa")
        assert plan_key(1000, 8, 42, label="x", fingerprint="bbbb") != base
        assert plan_key(1000, 8, 42, label="x") != base

    def test_label_fingerprint_boundary_is_unambiguous(self):
        # The label is length-prefixed in the key payload, so moving
        # characters across the label/fingerprint boundary changes the key.
        assert (plan_key(1000, 8, 42, label="ab", fingerprint="cd")
                != plan_key(1000, 8, 42, label="abc", fingerprint="d"))
        assert (plan_key(1000, 8, 42, label="a:b", fingerprint="c")
                != plan_key(1000, 8, 42, label="a", fingerprint="b:c"))

    def test_kernel_fingerprint_separates_kernels(self):
        assert kernel_fingerprint(_heads_kernel) != kernel_fingerprint(_tails_kernel)
        assert kernel_fingerprint(_sum_kernel) == kernel_fingerprint(_sum_kernel)

    def test_kernel_fingerprint_sees_partial_parameters(self):
        from functools import partial

        assert (kernel_fingerprint(partial(_sum_kernel, p=0.25))
                != kernel_fingerprint(partial(_sum_kernel, p=0.75)))


class TestCrossKernelRegression:
    """The v1 key omitted the kernel: two *different* trial functions with
    equal ``(trials, shards, seed)`` and an empty label silently shared one
    journal, so the second run merged the first run's shards.  The v2 key
    folds in the kernel fingerprint; this test fails on the old format."""

    def test_different_kernels_never_share_a_journal(self, tmp_path):
        plan = ShardPlan(trials=4000, shards=8, seed=77)
        path = tmp_path / "shared.jsonl"
        heads = run_sharded(_heads_kernel, plan, workers=1, checkpoint=path)
        tails = run_sharded(_tails_kernel, plan, workers=1, checkpoint=path)
        # Under key reuse, tails would *be* heads' journaled shards.
        assert tails != heads
        assert sum(tails) < plan.trials // 2 < sum(heads)
        # And each kernel's own resume is still exact.
        assert run_sharded(_heads_kernel, plan, workers=1, checkpoint=path) == heads
        assert run_sharded(_tails_kernel, plan, workers=1, checkpoint=path) == tails


class TestShardCheckpoint:
    def test_roundtrip(self, tmp_path):
        journal = ShardCheckpoint(tmp_path / "run.jsonl", key="abc")
        journal.record(0, {"successes": 3})
        journal.record(2, (1, 2, 3))
        loaded = journal.load()
        assert loaded == {0: {"successes": 3}, 2: (1, 2, 3)}

    def test_missing_file_loads_empty(self, tmp_path):
        journal = ShardCheckpoint(tmp_path / "absent.jsonl", key="abc")
        assert journal.load() == {}

    def test_mismatched_keys_are_invisible(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        ShardCheckpoint(path, key="run-a").record(0, "a0")
        ShardCheckpoint(path, key="run-b").record(0, "b0")
        assert ShardCheckpoint(path, key="run-a").load() == {0: "a0"}
        assert ShardCheckpoint(path, key="run-b").load() == {0: "b0"}

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "crashy.jsonl"
        journal = ShardCheckpoint(path, key="k")
        journal.record(0, 11)
        with path.open("a") as handle:
            handle.write('{"key": "k", "shard": 1, "da')  # crash mid-append
        assert journal.load() == {0: 11}

    def test_undecodable_payload_is_skipped(self, tmp_path):
        path = tmp_path / "garbled.jsonl"
        journal = ShardCheckpoint(path, key="k")
        with path.open("a") as handle:
            handle.write(json.dumps({"key": "k", "shard": 0,
                                     "data": "not-base64-pickle"}) + "\n")
        journal.record(1, 22)
        assert journal.load() == {1: 22}

    def test_duplicate_shard_latest_wins(self, tmp_path):
        journal = ShardCheckpoint(tmp_path / "dup.jsonl", key="k")
        journal.record(0, "first")
        journal.record(0, "second")
        assert journal.load() == {0: "second"}


class TestResumeEqualsUninterrupted:
    def test_engine_resume_after_k_of_n_shards(self, tmp_path):
        plan = ShardPlan(trials=2000, shards=8, seed=31)
        uninterrupted = run_sharded(_sum_kernel, plan, workers=1)
        # Simulate an interruption after 3 of 8 shards by journaling only
        # that prefix, then resume at a *different* worker count.
        journal = ShardCheckpoint.for_plan(
            tmp_path / "run.jsonl", plan,
            fingerprint=kernel_fingerprint(_sum_kernel))
        for shard in range(3):
            journal.record(shard, uninterrupted[shard])
        resumed = run_sharded(_sum_kernel, plan, workers=2, checkpoint=journal)
        assert resumed == uninterrupted

    def test_resume_with_complete_journal_executes_nothing(self, tmp_path):
        plan = ShardPlan(trials=1000, shards=4, seed=33)
        path = tmp_path / "run.jsonl"
        first = run_sharded(_sum_kernel, plan, workers=1, checkpoint=path)

        def exploding_kernel(source, shard_trials):
            raise AssertionError("a fully-journaled run must not re-execute")

        # The v2 key includes the kernel fingerprint, so resuming under a
        # *different* callable requires an explicit identity claim: a
        # pre-keyed journal opened with the original kernel's fingerprint.
        journal = ShardCheckpoint.for_plan(
            path, plan, fingerprint=kernel_fingerprint(_sum_kernel))
        resumed = run_sharded(exploding_kernel, plan, workers=1,
                              checkpoint=journal)
        assert resumed == first

    def test_checkpoint_run_journals_every_shard(self, tmp_path):
        plan = ShardPlan(trials=1000, shards=4, seed=35)
        path = tmp_path / "run.jsonl"
        results = run_sharded(_sum_kernel, plan, workers=1, checkpoint=path)
        journal = ShardCheckpoint.for_plan(
            path, plan, fingerprint=kernel_fingerprint(_sum_kernel))
        assert journal.load() == dict(enumerate(results))

    def test_bernoulli_interrupted_resume_bit_identical(self, tmp_path):
        path = tmp_path / "bernoulli.jsonl"
        full = run_bernoulli_trials(_coin, 4000, seed=41, shards=8, workers=1)
        # A journaling run writes all 8 shard records; keep the first 5 to
        # simulate an interruption, then resume at a different worker count.
        run_bernoulli_trials(_coin, 4000, seed=41, shards=8, workers=1,
                             checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 8
        path.write_text("\n".join(lines[:5]) + "\n")
        resumed = run_bernoulli_trials(_coin, 4000, seed=41, shards=8,
                                       workers=2, checkpoint=path)
        assert (resumed.successes, resumed.trials, resumed.seed) \
            == (full.successes, full.trials, full.seed)

    def test_categorical_resume_bit_identical(self, tmp_path):
        path = tmp_path / "categorical.jsonl"
        full = run_categorical_trials(_geom, 3000, seed=43, shards=8, workers=1)
        first = run_categorical_trials(_geom, 3000, seed=43, shards=8,
                                       workers=1, checkpoint=path)
        resumed = run_categorical_trials(_geom, 3000, seed=43, shards=8,
                                         workers=2, checkpoint=path)
        assert first.counts == full.counts
        assert resumed.counts == full.counts
        assert resumed.trials == 3000

    def test_models_do_not_cross_contaminate_one_journal(self, tmp_path):
        path = tmp_path / "models.jsonl"
        sc_clean = estimate_non_manifestation(SC, 2, 8000, seed=47, shards=4)
        wo_clean = estimate_non_manifestation(WO, 2, 8000, seed=47, shards=4)
        sc = estimate_non_manifestation(SC, 2, 8000, seed=47, shards=4,
                                        checkpoint=path)
        wo = estimate_non_manifestation(WO, 2, 8000, seed=47, shards=4,
                                        checkpoint=path)
        # Same (trials, shards, seed): only the label separates the runs.
        assert sc.successes == sc_clean.successes
        assert wo.successes == wo_clean.successes
        # Resuming each from the shared journal stays bit-identical.
        assert estimate_non_manifestation(
            SC, 2, 8000, seed=47, shards=4, checkpoint=path
        ).successes == sc_clean.successes
        assert estimate_non_manifestation(
            WO, 2, 8000, seed=47, shards=4, checkpoint=path
        ).successes == wo_clean.successes


class TestRetryWithCheckpoint:
    def test_injected_failure_then_resume_identical(self, tmp_path):
        from repro.parallel import ScriptedFaults, ShardExecutionError

        plan = ShardPlan(trials=2000, shards=6, seed=51)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        path = tmp_path / "run.jsonl"
        # First run dies on shard 4 (no retries): completed shards are
        # journaled, the failure propagates.
        with pytest.raises(ShardExecutionError):
            run_sharded(_sum_kernel, plan, workers=1, checkpoint=path,
                        fault_injector=ScriptedFaults(failures={4: 99}))
        journaled = ShardCheckpoint.for_plan(
            path, plan, fingerprint=kernel_fingerprint(_sum_kernel)).load()
        assert set(journaled) == {0, 1, 2, 3}  # serial order up to the crash
        # Second run (fault gone) resumes the remainder only.
        resumed = run_sharded(_sum_kernel, plan, workers=2, checkpoint=path)
        assert resumed == clean
