"""The engine's batch contract: ``run_event_trials`` and empty batches.

The batch kernels of :mod:`repro.kernels` reject ``size <= 0`` as a
programming error, so the engine must never emit an empty batch — even
for budgets that do not divide evenly across shards and batch sizes.
These tests pin that contract (the regression shape: ``trials=96,
shards=6, batch_size=16`` — every shard ends on an exact batch boundary,
historically a corner that produced zero-size leftovers) and the
``estimate_event`` → ``run_event_trials`` rename.
"""

from __future__ import annotations

import pytest

from repro.stats import RandomSource, run_event_trials
from repro.stats.montecarlo import estimate_event


def _counting_kernel(log: list[int]):
    def batch_trial(source: RandomSource, batch: int) -> int:
        log.append(batch)
        return int(source.bernoulli_array(0.5, batch).sum())

    return batch_trial


class TestBatchSizes:
    def test_no_empty_batches_on_exact_boundaries(self):
        """trials=96, shards=6, batch_size=16: each 16-trial shard is one
        exact batch; the kernel must see only positive sizes summing to 96."""
        sizes: list[int] = []
        result = run_event_trials(_counting_kernel(sizes), 96, seed=0,
                                  shards=6, batch_size=16)
        assert all(size >= 1 for size in sizes), sizes
        assert sum(sizes) == 96
        assert result.trials == 96

    @pytest.mark.parametrize("trials,shards,batch_size", [
        (96, 6, 16),
        (97, 6, 16),   # ragged: one shard gets a 1-trial leftover batch
        (5, 8, 4096),  # more shards than trials: trailing shards are empty
        (1, 1, 1),
    ])
    def test_kernel_only_sees_positive_sizes(self, trials, shards, batch_size):
        sizes: list[int] = []
        result = run_event_trials(_counting_kernel(sizes), trials, seed=3,
                                  shards=shards, batch_size=batch_size)
        assert all(size >= 1 for size in sizes), sizes
        assert sum(sizes) == trials
        assert result.trials == trials

    def test_strict_kernel_survives_ragged_plan(self):
        """A kernel that raises on empty batches (as the repro.kernels
        batch kernels do) must run clean under any plan."""

        def strict(source: RandomSource, batch: int) -> int:
            if batch <= 0:
                raise ValueError(f"empty batch {batch} reached the kernel")
            return int(source.bernoulli_array(0.25, batch).sum())

        result = run_event_trials(strict, 96, seed=7, shards=6, batch_size=16)
        assert result.trials == 96


class TestRename:
    def test_estimate_event_is_the_same_function(self):
        assert estimate_event is run_event_trials

    def test_alias_and_new_name_are_bit_identical(self):
        def kernel(source: RandomSource, batch: int) -> int:
            return int(source.bernoulli_array(0.5, batch).sum())

        new = run_event_trials(kernel, 2_000, seed=11, shards=4)
        old = estimate_event(kernel, 2_000, seed=11, shards=4)
        assert new.successes == old.successes
        assert new.trials == old.trials
