"""The vectorized kernel subsystem: equivalence, exact laws, golden pins.

Three complementary ways of pinning ``repro.kernels`` to the scalar
reference and to the paper:

* **closed form** — kernel estimates must land on the Theorem 4.1 /
  Theorem 5.1 / Theorem 6.2 values;
* **two-sample equivalence** — scalar and vectorized backends are
  different orderings of the same stream family, so their proportions
  must agree within the pooled z-tolerance of
  :mod:`repro.kernels.validation`;
* **golden values** — ``non_manifestation_batch`` is the historical
  engine kernel relocated verbatim, so the published Monte-Carlo numbers
  must stay **bit-identical** for a fixed ``(seed, shards)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SC,
    TSO,
    WO,
    estimate_non_manifestation,
    non_manifestation_probability,
)
from repro.core.memory_models import PSO
from repro.core.settling import DEFAULT_BODY_LENGTH, sample_window_growth
from repro.core.shift import DEFAULT_SHIFT_RATIO, ShiftProcess
from repro.core.shift_analytic import disjointness_probability
from repro.kernels import (
    BACKENDS,
    KERNEL_CATALOGUE,
    estimate_shift_disjointness,
    non_manifestation_batch,
    non_manifestation_fused_batch,
    non_manifestation_scalar_batch,
    resolve_backend,
    sample_shifts_batch,
    shift_disjoint_batch,
    window_growth_batch,
)
from repro.kernels.validation import (
    assert_contains_probability,
    assert_equivalent_proportions,
)
from repro.stats import RandomSource

MODELS = {"SC": SC, "TSO": TSO, "WO": WO, "PSO": PSO}


class TestBackendResolution:
    def test_known_backends_pass_through(self):
        for backend in BACKENDS:
            assert resolve_backend(backend) == backend

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="scalar"):
            resolve_backend("gpu")

    def test_allowed_subset_rejects_known_backends(self):
        assert resolve_backend("scalar",
                               allowed=("scalar", "vectorized")) == "scalar"
        with pytest.raises(ValueError, match="not supported here"):
            resolve_backend("fused", allowed=("scalar", "vectorized"))

    def test_allowed_rejection_differs_from_unknown(self):
        # A known-but-unsupported backend must not masquerade as a typo.
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu", allowed=("scalar",))

    def test_catalogue_names_are_exported(self):
        import repro.kernels as kernels

        for name in KERNEL_CATALOGUE:
            assert hasattr(kernels, name), name


class TestSettlingKernel:
    """Theorem 4.1: the batch window-growth law per memory model."""

    def test_sc_support_is_exactly_zero(self):
        growths = window_growth_batch(SC, RandomSource(5), 10_000)
        assert growths.shape == (10_000,)
        assert not growths.any()

    def test_support_is_bounded_by_body_length(self):
        for model in (TSO, WO, PSO):
            growths = window_growth_batch(model, RandomSource(6), 10_000,
                                          body_length=DEFAULT_BODY_LENGTH)
            assert growths.min() >= 0
            assert growths.max() <= DEFAULT_BODY_LENGTH

    def test_wo_matches_theorem_41_law(self):
        """WO: Pr[B_0] = 2/3 and Pr[B_gamma] = 2^-gamma / 3 for small gamma
        (body_length >> gamma makes the truncation negligible)."""
        trials = 60_000
        growths = window_growth_batch(WO, RandomSource(41), trials,
                                      body_length=96)
        assert_contains_probability(int((growths == 0).sum()), trials,
                                    2.0 / 3.0, confidence=0.999,
                                    context="WO Pr[B_0]")
        for gamma in (1, 2, 3):
            assert_contains_probability(
                int((growths == gamma).sum()), trials,
                2.0 ** -gamma / 3.0, confidence=0.999,
                context=f"WO Pr[B_{gamma}]",
            )

    @pytest.mark.parametrize("name", ["TSO", "WO", "PSO"])
    def test_equivalent_to_scalar_reference(self, name):
        model = MODELS[name]
        scalar_trials, vector_trials = 4_000, 40_000
        source = RandomSource(17)
        scalar = sum(sample_window_growth(model, source) == 0
                     for _ in range(scalar_trials))
        growths = window_growth_batch(model, RandomSource(18), vector_trials)
        assert_equivalent_proportions(
            int(scalar), scalar_trials,
            int((growths == 0).sum()), vector_trials,
            context=f"{name} Pr[B_0] scalar vs vectorized",
        )


class TestShiftKernel:
    """Theorem 5.1 / Corollary 5.2: batch disjointness."""

    def test_shift_matrix_shape_and_validation(self):
        shifts = sample_shifts_batch(RandomSource(1), 128, 3)
        assert shifts.shape == (128, 3)
        assert shifts.min() >= 0
        with pytest.raises(ValueError):
            sample_shifts_batch(RandomSource(1), 0, 3)
        with pytest.raises(ValueError):
            sample_shifts_batch(RandomSource(1), 8, 0)

    def test_matches_theorem_51_closed_form(self):
        lengths = (1, 2, 3)
        trials = 50_000
        successes = shift_disjoint_batch(RandomSource(51), trials, lengths)
        exact = disjointness_probability(list(lengths), DEFAULT_SHIFT_RATIO)
        assert_contains_probability(successes, trials, exact,
                                    confidence=0.999,
                                    context=f"Thm 5.1 at {lengths}")

    def test_equivalent_to_scalar_process(self):
        lengths = (2, 2)
        process = ShiftProcess(DEFAULT_SHIFT_RATIO)
        scalar_trials, vector_trials = 10_000, 50_000
        source = RandomSource(52)
        scalar = sum(process.sample_event(source, lengths)
                     for _ in range(scalar_trials))
        vectorized = shift_disjoint_batch(RandomSource(53), vector_trials,
                                          lengths)
        assert_equivalent_proportions(
            int(scalar), scalar_trials, vectorized, vector_trials,
            context="shift disjointness scalar vs vectorized",
        )

    def test_estimator_rides_the_engine(self):
        """Corollary 5.2 shape: the engine-wrapped estimator at the
        canonical n = 2 lengths reproduces the golden joined value."""
        result = estimate_shift_disjointness((2, 2), 20_000, seed=0)
        assert result.successes == 3335
        assert result.agrees_with(1.0 / 6.0)

    def test_estimator_is_worker_invariant(self):
        serial = estimate_shift_disjointness((1, 3), 8_000, seed=9, shards=4,
                                             workers=1)
        parallel = estimate_shift_disjointness((1, 3), 8_000, seed=9,
                                               shards=4, workers=2)
        assert serial.successes == parallel.successes


class TestJoinedKernel:
    """Theorem 6.2/6.3: the full §6 pipeline, vectorized vs scalar."""

    #: Published Monte-Carlo pins: 20k trials, seed 0, default shards.
    GOLDEN = {"SC": 3335, "TSO": 2726, "WO": 2569, "PSO": 2930}

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_vectorized_backend_is_bit_stable(self, name):
        result = estimate_non_manifestation(MODELS[name], 2, 20_000, seed=0)
        assert result.successes == self.GOLDEN[name], (
            f"{name}: the relocated non_manifestation_batch kernel changed "
            f"the published numbers"
        )

    def test_three_thread_pin_survives_sharding(self):
        result = estimate_non_manifestation(TSO, 3, 20_000, seed=0, shards=8)
        assert result.successes == 54

    def test_scalar_backend_agrees_with_theorem_62(self):
        result = estimate_non_manifestation(SC, 2, 20_000, seed=0,
                                            backend="scalar")
        assert result.successes == 3347  # deterministic in (seed, shards)
        assert result.agrees_with(1.0 / 6.0)

    def test_backends_are_statistically_equivalent(self):
        scalar_trials, vector_trials = 6_000, 60_000
        options = dict(model=TSO, n=2, store_probability=0.5,
                       beta=DEFAULT_SHIFT_RATIO,
                       body_length=DEFAULT_BODY_LENGTH,
                       critical_section_length=2)
        scalar = non_manifestation_scalar_batch(
            RandomSource(61), scalar_trials, **options)
        vectorized = non_manifestation_batch(
            RandomSource(62), vector_trials, **options)
        assert_equivalent_proportions(
            scalar, scalar_trials, vectorized, vector_trials,
            context="joined pipeline scalar vs vectorized",
        )

    def test_vectorized_lands_on_the_exact_value(self):
        result = estimate_non_manifestation(WO, 2, 60_000, seed=3,
                                            confidence=0.999)
        exact = non_manifestation_probability(WO, 2).value
        assert np.isclose(exact, 7.0 / 54.0)
        assert result.agrees_with(exact)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            estimate_non_manifestation(SC, 2, 1_000, backend="cuda")


class TestFusedKernel:
    """The single-pass fused chain: z-equivalent to the composed kernels.

    The fused backend inverts its geometric draws from uniforms instead
    of replaying the composed chain's generator calls, so it is pinned by
    two-sample equivalence at 0.999 (same laws, different streams) — not
    bit-identity — plus its own fixed-seed determinism.
    """

    OPTIONS = dict(store_probability=0.5, beta=DEFAULT_SHIFT_RATIO,
                   body_length=DEFAULT_BODY_LENGTH,
                   critical_section_length=2)

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_equivalent_to_composed_chain(self, name):
        trials = 60_000
        fused = non_manifestation_fused_batch(
            RandomSource(71), trials, model=MODELS[name], n=2, **self.OPTIONS)
        composed = non_manifestation_batch(
            RandomSource(72), trials, model=MODELS[name], n=2, **self.OPTIONS)
        assert_equivalent_proportions(
            fused, trials, composed, trials,
            confidence=0.999, context=f"fused vs composed {name} n=2",
        )

    @pytest.mark.parametrize("n", [3, 5])
    def test_equivalent_beyond_the_closed_form_pair(self, n):
        trials = 60_000
        fused = non_manifestation_fused_batch(
            RandomSource(73), trials, model=TSO, n=n, **self.OPTIONS)
        composed = non_manifestation_batch(
            RandomSource(74), trials, model=TSO, n=n, **self.OPTIONS)
        assert_equivalent_proportions(
            fused, trials, composed, trials,
            confidence=0.999, context=f"fused vs composed TSO n={n}",
        )

    def test_fixed_seed_is_deterministic(self):
        draws = [non_manifestation_fused_batch(
            RandomSource(75), 5_000, model=PSO, n=2, **self.OPTIONS)
            for _ in range(2)]
        assert draws[0] == draws[1]

    def test_degenerate_parameters_match_composed_exactly(self):
        # beta=0 shifts and p in {0, 1} stores draw no randomness, so the
        # fused and composed counts coincide exactly, not just in law.
        for p in (0.0, 1.0):
            options = dict(store_probability=p, beta=0.0,
                           body_length=4, critical_section_length=2)
            fused = non_manifestation_fused_batch(
                RandomSource(76), 500, model=TSO, n=2, **options)
            composed = non_manifestation_batch(
                RandomSource(76), 500, model=TSO, n=2, **options)
            assert fused == composed

    def test_validates_batch_and_n(self):
        with pytest.raises(ValueError, match="positive"):
            non_manifestation_fused_batch(
                RandomSource(0), 0, model=SC, n=2, **self.OPTIONS)
        with pytest.raises(ValueError, match="positive"):
            non_manifestation_fused_batch(
                RandomSource(0), 10, model=SC, n=0, **self.OPTIONS)

    def test_estimator_backend_lands_on_the_exact_value(self):
        result = estimate_non_manifestation(WO, 2, 60_000, seed=8,
                                            confidence=0.999,
                                            backend="fused")
        assert result.agrees_with(non_manifestation_probability(WO, 2).value)

    def test_estimator_backend_survives_sharding(self):
        serial = estimate_non_manifestation(TSO, 2, 8_000, seed=9, shards=4,
                                            backend="fused")
        parallel = estimate_non_manifestation(TSO, 2, 8_000, seed=9, shards=4,
                                              workers=2, backend="fused")
        assert serial.successes == parallel.successes

    def test_machine_paths_reject_fused(self):
        from repro.sim import run_canonical_bug
        from repro.sim.measurement import measure_critical_windows

        with pytest.raises(ValueError, match="not supported here"):
            run_canonical_bug("TSO", threads=2, trials=100, backend="fused")
        with pytest.raises(ValueError, match="not supported here"):
            measure_critical_windows("TSO", 2, 100, backend="fused")
