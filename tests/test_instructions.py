"""Tests for repro.core.instructions: the §3.1.1 program model."""

from __future__ import annotations

import pytest

from repro.core import (
    LD,
    ST,
    Instruction,
    InstructionType,
    Program,
    generate_program,
    program_from_types,
)
from repro.core.instructions import CRITICAL_LOCATION
from repro.errors import ProgramError
from repro.stats import RandomSource


class TestInstructionType:
    def test_mnemonics_match_paper(self):
        assert InstructionType.LOAD.mnemonic == "LD"
        assert InstructionType.STORE.mnemonic == "ST"

    def test_aliases(self):
        assert LD is InstructionType.LOAD
        assert ST is InstructionType.STORE


class TestProgramFromTypes:
    def test_structure(self):
        program = program_from_types("SLS")
        assert program.body_length == 3
        assert program.length == 5
        assert program.critical_load.is_load
        assert program.critical_store.is_store

    def test_critical_pair_shares_location(self):
        program = program_from_types("L")
        assert program.critical_load.location == CRITICAL_LOCATION
        assert program.critical_store.location == CRITICAL_LOCATION

    def test_body_types_respected(self):
        program = program_from_types("SLS")
        assert program.type_of(1) is ST
        assert program.type_of(2) is LD
        assert program.type_of(3) is ST

    def test_empty_body_allowed(self):
        program = program_from_types("")
        assert program.body_length == 0
        assert program.length == 2

    def test_unknown_character_rejected(self):
        with pytest.raises(ProgramError):
            program_from_types("SXL")

    def test_case_insensitive(self):
        assert program_from_types("sls").types() == program_from_types("SLS").types()

    def test_body_locations_distinct(self):
        program = program_from_types("SSSS")
        locations = [instr.location for instr in program.instructions[:-2]]
        assert len(set(locations)) == 4

    def test_store_count_and_mask(self):
        program = program_from_types("SLSSL")
        assert program.store_count() == 3
        assert list(program.body_store_mask()) == [True, False, True, True, False]


class TestProgramValidation:
    def _critical_pair(self, start_index: int):
        return [
            Instruction(start_index, LD, CRITICAL_LOCATION, is_critical=True),
            Instruction(start_index + 1, ST, CRITICAL_LOCATION, is_critical=True),
        ]

    def test_too_short_rejected(self):
        with pytest.raises(ProgramError):
            Program([Instruction(1, LD, "X", is_critical=True)])

    def test_missing_critical_pair_rejected(self):
        with pytest.raises(ProgramError):
            Program([Instruction(1, LD, "a1"), Instruction(2, ST, "a2")])

    def test_critical_pair_wrong_order_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [
                    Instruction(1, ST, CRITICAL_LOCATION, is_critical=True),
                    Instruction(2, LD, CRITICAL_LOCATION, is_critical=True),
                ]
            )

    def test_critical_pair_different_locations_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [
                    Instruction(1, LD, "X", is_critical=True),
                    Instruction(2, ST, "Y", is_critical=True),
                ]
            )

    def test_duplicate_body_locations_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [
                    Instruction(1, LD, "a", is_critical=False),
                    Instruction(2, ST, "a", is_critical=False),
                ]
                + self._critical_pair(3)
            )

    def test_body_touching_critical_location_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [Instruction(1, LD, CRITICAL_LOCATION)] + self._critical_pair(2)
            )

    def test_bad_indices_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [Instruction(5, LD, "a1")] + self._critical_pair(2)
            )

    def test_index_lookup_bounds(self):
        program = program_from_types("S")
        with pytest.raises(ProgramError):
            program.instruction(0)
        with pytest.raises(ProgramError):
            program.instruction(4)


class TestGeneration:
    def test_length(self, source):
        program = generate_program(10, source)
        assert program.body_length == 10

    def test_store_probability_extremes(self, source):
        all_stores = generate_program(20, source, store_probability=1.0)
        assert all(instr.is_store for instr in all_stores.instructions[:-2])
        all_loads = generate_program(20, source, store_probability=0.0)
        assert all(instr.is_load for instr in all_loads.instructions[:-2])

    def test_store_fraction_near_p(self, source):
        program = generate_program(5000, source, store_probability=0.3)
        assert abs(program.store_count() / 5000 - 0.3) < 0.03

    def test_reproducible(self):
        a = generate_program(50, RandomSource(1))
        b = generate_program(50, RandomSource(1))
        assert a == b

    def test_negative_length_rejected(self, source):
        with pytest.raises(ProgramError):
            generate_program(-1, source)

    def test_invalid_probability_rejected(self, source):
        with pytest.raises(ProgramError):
            generate_program(5, source, store_probability=1.5)


class TestProgramDunder:
    def test_iteration_and_len(self):
        program = program_from_types("SL")
        assert len(program) == 4
        assert len(list(program)) == 4

    def test_equality_and_hash(self):
        assert program_from_types("SL") == program_from_types("SL")
        assert program_from_types("SL") != program_from_types("LS")
        assert hash(program_from_types("SL")) == hash(program_from_types("SL"))

    def test_str_marks_critical(self):
        text = str(program_from_types("S"))
        assert "LD*" in text and "ST*" in text
