"""Tests for repro.analysis: sweeps, asymptotics, comparisons."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    beta_sweep,
    compare_model_and_machine,
    exponent_curve,
    exponent_gap_curve,
    limiting_exponent,
    monte_carlo_check,
    ordering_consistent,
    relative_gap_two_threads,
    settle_sweep,
    store_probability_sweep,
    thread_sweep,
    window_pmf_table,
)
from repro.core import PAPER_MODELS, PSO, SC, TSO, WO


class TestThreadSweep:
    def test_row_per_thread_count(self):
        rows = thread_sweep([2, 4, 8])
        assert [row["n"] for row in rows] == [2, 4, 8]

    def test_contains_all_models(self):
        row = thread_sweep([2])[0]
        for model in PAPER_MODELS:
            assert f"ln Pr[A] {model.name}" in row

    def test_values_decrease_with_n(self):
        rows = thread_sweep([2, 8])
        assert rows[1]["ln Pr[A] SC"] < rows[0]["ln Pr[A] SC"]

    def test_sc_dominates_every_row(self):
        for row in thread_sweep([2, 4, 16]):
            assert row["ln Pr[A] SC"] >= row["ln Pr[A] WO"]


class TestSettleSweep:
    def test_zero_settle_collapses_models(self):
        row = settle_sweep([0.0])[0]
        values = {row[f"Pr[bug] {model.name}"] for model in PAPER_MODELS}
        assert max(values) - min(values) < 1e-12

    def test_models_separate_at_high_settle(self):
        row = settle_sweep([0.8])[0]
        assert row["Pr[bug] WO"] > row["Pr[bug] SC"]

    def test_sc_flat_in_settle(self):
        rows = settle_sweep([0.1, 0.9])
        assert rows[0]["Pr[bug] SC"] == pytest.approx(rows[1]["Pr[bug] SC"])

    def test_wo_bug_rate_increases_with_settle(self):
        rows = settle_sweep([0.1, 0.5, 0.9])
        values = [row["Pr[bug] WO"] for row in rows]
        assert values == sorted(values)


class TestStoreProbabilitySweep:
    def test_sc_and_wo_flat_in_p(self):
        rows = store_probability_sweep([0.2, 0.8])
        for name in ("SC", "WO"):
            assert rows[0][f"Pr[bug] {name}"] == pytest.approx(rows[1][f"Pr[bug] {name}"])

    def test_tso_bug_rate_increases_with_p(self):
        rows = store_probability_sweep([0.1, 0.5, 0.9])
        values = [row["Pr[bug] TSO"] for row in rows]
        assert values == sorted(values)


class TestBetaSweep:
    def test_survival_monotone_in_beta(self):
        """More desynchronisation (larger beta) -> more survival, all models."""
        rows = beta_sweep([0.1, 0.5, 0.9])
        for model in PAPER_MODELS:
            values = [row[f"Pr[A] {model.name}"] for row in rows]
            assert values == sorted(values)

    def test_ordering_preserved_at_every_beta(self):
        for row in beta_sweep([0.2, 0.5, 0.8]):
            assert row["Pr[A] WO"] <= row["Pr[A] TSO"] <= row["Pr[A] SC"]

    def test_paper_beta_matches_theorem62(self):
        row = beta_sweep([0.5])[0]
        assert row["Pr[A] SC"] == pytest.approx(1 / 6)
        assert row["SC/WO ratio"] == pytest.approx(9 / 7)

    def test_model_gap_shrinks_with_desynchronisation(self):
        """Heavily staggered threads blur the model distinction."""
        rows = beta_sweep([0.2, 0.5, 0.9])
        ratios = [row["SC/WO ratio"] for row in rows]
        assert ratios == sorted(ratios, reverse=True)


class TestWindowPmfTable:
    def test_gamma_zero_row(self):
        row = window_pmf_table([0])[0]
        assert row["Pr[B] SC"] == 1.0
        assert row["Pr[B] WO"] == pytest.approx(2 / 3)


class TestAsymptotics:
    def test_limiting_exponent_paper_value(self):
        assert limiting_exponent() == pytest.approx(1.5 * math.log(2))

    def test_limiting_exponent_validation(self):
        with pytest.raises(ValueError):
            limiting_exponent(0.0)

    def test_exponent_curve_converges(self):
        rows = exponent_curve([4, 16, 64])
        final = rows[-1]
        for model in PAPER_MODELS:
            assert final[f"exponent {model.name}"] == pytest.approx(
                final["limit"], rel=0.15
            )

    def test_gap_curve_ratio_monotone_to_one(self):
        rows = exponent_gap_curve([2, 8, 32], weak_model=WO)
        ratios = [row["log-ratio"] for row in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.95

    def test_gap_curve_survival_ratio_grows(self):
        """Absolute advantage grows even as relative advantage vanishes."""
        rows = exponent_gap_curve([2, 8, 32], weak_model=WO)
        survival_ratios = [row["survival ratio"] for row in rows]
        assert survival_ratios == sorted(survival_ratios)

    def test_relative_gap_two_threads_paper_value(self):
        assert relative_gap_two_threads(WO) == pytest.approx(9 / 7)
        assert relative_gap_two_threads(SC) == pytest.approx(1.0)


class TestMonteCarloCheck:
    def test_rows_agree(self):
        rows = monte_carlo_check([SC, WO], n=2, trials=60_000, seed=5)
        assert all(row["agrees"] for row in rows)


class TestModelMachineComparison:
    def test_comparison_rows(self):
        comparison = compare_model_and_machine(SC, threads=2, trials=300, seed=7,
                                               body_length=4)
        row = comparison.row()
        assert row["model"] == "SC"
        assert 0.0 <= comparison.machine_manifestation <= 1.0

    def test_ordering_consistent_trivial(self):
        a = compare_model_and_machine(SC, threads=2, trials=400, seed=9, body_length=4)
        b = compare_model_and_machine(WO, threads=2, trials=400, seed=9, body_length=4)
        assert ordering_consistent([a, b], tolerance=0.05)

    def test_ordering_consistent_detects_flip(self):
        a = compare_model_and_machine(SC, threads=2, trials=300, seed=11, body_length=4)
        b = compare_model_and_machine(WO, threads=2, trials=300, seed=11, body_length=4)
        # Swap the machine results to force an inconsistency.
        from repro.analysis.comparison import ModelMachineComparison

        swapped = [
            ModelMachineComparison(a.model, 2, a.abstract_manifestation, b.machine),
            ModelMachineComparison(b.model, 2, b.abstract_manifestation, a.machine),
        ]
        assert not ordering_consistent(swapped)
