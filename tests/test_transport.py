"""The zero-copy shard result transport (``repro.stats.transport``).

The transport contract has one load-bearing clause: for any fixed
``(seed, shards)``, the merged numbers are **bit-identical across
transports and worker counts** — shared memory only changes the bytes'
route home, never the kernel, its draws, or the merge.  These tests pin
that clause for all three shard result kinds (Bernoulli, categorical,
window-stats) across ``workers ∈ {1, 2, 4}``, plus the per-layout
pack/unpack semantics and the automatic per-shard pickle fallback.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.sim.measurement import _WindowShard, measure_critical_windows
from repro.stats.montecarlo import (
    BernoulliResult,
    CategoricalResult,
    run_bernoulli_trials,
    run_categorical_trials,
    run_event_trials,
)
from repro.stats.transport import (
    TRANSPORTS,
    BernoulliLayout,
    CategoricalLayout,
    Packed,
    ShardTable,
    ShardWriter,
    WindowLayout,
    pickled_payload_bytes,
    resolve_transport,
)

WORKER_COUNTS = (1, 2, 4)


def _bernoulli_trial(source):
    return source.generator.random() < 0.3


def _categorical_trial(source):
    return int(source.generator.integers(0, 5))


def _event_batch(source, batch):
    return int((source.generator.random(batch) < 0.25).sum())


class TestResolveTransport:
    def test_known_transports_pass_through(self):
        for transport in TRANSPORTS:
            assert resolve_transport(transport) == transport

    def test_unknown_transport_raises_with_choices(self):
        with pytest.raises(ValueError, match="pickle"):
            resolve_transport("carrier-pigeon")


class TestLayouts:
    def test_bernoulli_roundtrip(self):
        layout = BernoulliLayout(0.99)
        row = np.zeros(layout.row_width(1000), dtype=np.int64)
        assert layout.pack(BernoulliResult(7, 100, 0.99, 3), row)
        result = layout.unpack(row)
        assert (result.successes, result.trials) == (7, 100)
        assert result.confidence == 0.99
        assert result.seed is None  # merge discards per-shard seeds anyway

    def test_categorical_roundtrip(self):
        layout = CategoricalLayout(0.95)
        row = np.zeros(layout.row_width(1000), dtype=np.int64)
        counts = {3: 10, -1: 5, 7: 85}
        assert layout.pack(CategoricalResult(counts, 100, 0.95, None), row)
        result = layout.unpack(row)
        assert result.counts == counts
        assert result.trials == 100

    def test_categorical_overflow_falls_back(self):
        layout = CategoricalLayout(0.95, capacity=4)
        row = np.zeros(layout.row_width(1000), dtype=np.int64)
        too_wide = {value: 1 for value in range(5)}
        assert not layout.pack(CategoricalResult(too_wide, 5, 0.95, None), row)

    def test_window_roundtrip(self):
        layout = WindowLayout(threads=2)
        row = np.zeros(layout.row_width(4), dtype=np.int64)
        shard = _WindowShard(
            durations=np.array([3, 4, 5, 6, 2, 9], dtype=np.int64),
            overlap_trials=2, manifest_trials=1, manifest_without_overlap=0,
        )
        assert layout.pack(shard, row)
        result = layout.unpack(row)
        np.testing.assert_array_equal(result.durations, shard.durations)
        assert result.overlap_trials == 2
        assert result.manifest_trials == 1
        assert result.manifest_without_overlap == 0

    def test_window_unpack_copies_out_of_shared_row(self):
        layout = WindowLayout(threads=1)
        row = np.zeros(layout.row_width(3), dtype=np.int64)
        shard = _WindowShard(np.array([1, 2, 3], dtype=np.int64), 0, 0, 0)
        layout.pack(shard, row)
        result = layout.unpack(row)
        row[:] = -1  # unpacked results must survive the table's teardown
        np.testing.assert_array_equal(result.durations, [1, 2, 3])

    def test_pickled_payload_bytes_measures_pickle(self):
        result = BernoulliResult(1, 2, 0.99, None)
        assert pickled_payload_bytes(result) == len(pickle.dumps(result))


class TestShardTable:
    def test_rows_are_zeroed_and_addressable(self):
        with ShardTable(3, 4) as table:
            assert table.row(2).tolist() == [0, 0, 0, 0]
            table.row(1)[:] = [1, 2, 3, 4]
            assert table.row(1).tolist() == [1, 2, 3, 4]
            assert table.row(0).tolist() == [0, 0, 0, 0]

    def test_close_is_idempotent(self):
        table = ShardTable(1, 1)
        table.close()
        table.close()

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            ShardTable(0, 4)
        with pytest.raises(ValueError):
            ShardTable(4, 0)


class TestShardWriter:
    def test_packs_into_named_row_and_returns_marker(self):
        layout = BernoulliLayout(0.99)
        with ShardTable(2, 2) as table:
            writer = ShardWriter(
                lambda source, count: BernoulliResult(count - 1, count, 0.99, None),
                layout, table.name, 2,
            )
            marker = writer(None, 10, 1)
            assert marker == Packed(1)
            assert table.row(1).tolist() == [9, 10]
            assert table.row(0).tolist() == [0, 0]

    def test_unpackable_result_rides_pickle_channel(self):
        layout = CategoricalLayout(0.99, capacity=2)
        wide = CategoricalResult({0: 1, 1: 1, 2: 1}, 3, 0.99, None)
        with ShardTable(1, layout.row_width(10)) as table:
            writer = ShardWriter(lambda source, count: wide, layout,
                                 table.name, layout.row_width(10))
            assert writer(None, 3, 0) is wide


class TestTransportBitIdentity:
    """shm and pickle merges agree bit-for-bit at every worker count."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bernoulli_kind(self, workers):
        baseline = run_bernoulli_trials(_bernoulli_trial, 600, seed=11,
                                        shards=6, workers=1,
                                        transport="pickle")
        shm = run_bernoulli_trials(_bernoulli_trial, 600, seed=11,
                                   shards=6, workers=workers,
                                   transport="shm")
        assert (shm.successes, shm.trials) == (baseline.successes,
                                               baseline.trials)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_categorical_kind(self, workers):
        baseline = run_categorical_trials(_categorical_trial, 600, seed=12,
                                          shards=6, workers=1,
                                          transport="pickle")
        shm = run_categorical_trials(_categorical_trial, 600, seed=12,
                                     shards=6, workers=workers,
                                     transport="shm")
        assert shm.counts == baseline.counts
        assert shm.trials == baseline.trials

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_event_kind(self, workers):
        baseline = run_event_trials(_event_batch, 4_000, seed=13, shards=6,
                                    workers=1, transport="pickle")
        shm = run_event_trials(_event_batch, 4_000, seed=13, shards=6,
                               workers=workers, transport="shm")
        assert (shm.successes, shm.trials) == (baseline.successes,
                                               baseline.trials)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_window_kind(self, workers):
        baseline = measure_critical_windows("TSO", 2, 60, seed=14, shards=4,
                                            workers=1, transport="pickle")
        shm = measure_critical_windows("TSO", 2, 60, seed=14, shards=4,
                                       workers=workers, transport="shm")
        np.testing.assert_array_equal(shm.durations, baseline.durations)
        assert shm.overlap_trials == baseline.overlap_trials
        assert shm.manifest_trials == baseline.manifest_trials
        assert shm.manifest_without_overlap == baseline.manifest_without_overlap

    def test_auto_matches_both(self):
        auto = run_event_trials(_event_batch, 4_000, seed=13, shards=6,
                                workers=2, transport="auto")
        pickled = run_event_trials(_event_batch, 4_000, seed=13, shards=6,
                                   workers=2, transport="pickle")
        assert (auto.successes, auto.trials) == (pickled.successes,
                                                 pickled.trials)

    def test_shm_without_layout_raises(self):
        from repro.stats.parallel import ShardPlan, run_sharded

        with pytest.raises(ValueError, match="layout"):
            run_sharded(lambda source, count: None,
                        ShardPlan(10, 2, 0), workers=1, transport="shm")
