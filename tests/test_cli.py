"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

import repro.cli as cli_module
from repro.cli import build_parser, main
from repro.runconfig import RunConfig


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "ST/LD" in out
        assert "TSO" in out

    def test_window_all_models(self, capsys):
        out = run_cli(capsys, "window", "--max-gamma", "2")
        assert "Pr[B] SC" in out

    def test_window_single_model(self, capsys):
        out = run_cli(capsys, "window", "--model", "wo", "--max-gamma", "3")
        assert "WO" in out
        assert "0.66667" in out

    def test_thm62_exact_only(self, capsys):
        out = run_cli(capsys, "thm62")
        assert "0.166667" in out
        assert "0.129630" in out

    def test_thm62_with_monte_carlo(self, capsys):
        out = run_cli(capsys, "thm62", "--trials", "20000", "--seed", "4")
        assert "monte carlo" in out

    def test_scaling(self, capsys):
        out = run_cli(capsys, "scaling", "--max-n", "8")
        assert "ln Pr[A] SC" in out
        assert "log-ratio" in out

    def test_litmus_matrix(self, capsys):
        out = run_cli(capsys, "litmus")
        assert "SB" in out and "IRIW" in out

    def test_litmus_single(self, capsys):
        out = run_cli(capsys, "litmus", "--test", "MP")
        assert "Message passing" in out
        assert "forbidden" in out

    def test_machine(self, capsys):
        out = run_cli(capsys, "machine", "--model", "SC", "--trials", "50",
                      "--body-length", "2")
        assert "SC n=2" in out

    def test_machine_atomic_never_manifests(self, capsys):
        out = run_cli(capsys, "machine", "--model", "WO", "--trials", "100",
                      "--atomic", "--body-length", "2")
        assert "manifests 0.000000" in out

    def test_fences(self, capsys):
        out = run_cli(capsys, "fences", "--model", "TSO", "--distances", "0", "4")
        assert "0.166667" in out

    def test_fleet(self, capsys):
        out = run_cli(capsys, "fleet", "SC", "WO")
        assert "0.148148" in out

    def test_fleet_approximate_flag(self, capsys):
        out = run_cli(capsys, "fleet", "TSO", "TSO", "SC", "--approximate")
        assert "Pr[A]" in out

    def test_critical_section(self, capsys):
        out = run_cli(capsys, "critical-section", "--lengths", "2", "4")
        assert "SC/WO ratio" in out

    def test_multibug(self, capsys):
        out = run_cli(capsys, "multibug", "--bugs", "1", "8")
        assert "SC/WO ratio" in out
        assert "0.166667" in out

    def test_experiments(self, capsys):
        out = run_cli(capsys, "experiments")
        assert "E1" in out and "E16" in out

    def test_verify(self, capsys):
        out = run_cli(capsys, "verify")
        assert "all 11 checks passed" in out
        assert "FAIL" not in out


class TestFaultToleranceFlags:
    def test_retries_and_timeout_accepted(self, capsys):
        out = run_cli(capsys, "--retries", "2", "--shard-timeout", "30",
                      "--workers", "2", "--shards", "4", "machine",
                      "--model", "SC", "--trials", "50", "--seed", "5")
        assert "bug manifests" in out

    def test_checkpoint_resume_reproduces_output(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        base = ["--shards", "6", "thm62", "--trials", "6000", "--seed", "13"]
        clean = run_cli(capsys, *base)
        first = run_cli(capsys, "--checkpoint", str(journal), *base)
        assert first == clean
        lines = journal.read_text().splitlines()
        # One record per shard per model estimate sharing the journal.
        assert len(lines) >= 6 and len(lines) % 6 == 0
        # Simulate an interrupted run: drop half the journal, resume.
        journal.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        resumed = run_cli(capsys, "--checkpoint", str(journal), *base)
        assert resumed == clean


class TestObservabilityFlags:
    def test_manifest_after_subcommand(self, capsys, tmp_path):
        from repro.obs import load_manifest

        manifest = tmp_path / "m.json"
        base = ["thm62", "--trials", "4000", "--seed", "3", "--shards", "4"]
        clean = run_cli(capsys, *base)
        observed = run_cli(capsys, *base, "--manifest", str(manifest))
        assert observed == clean  # manifests never change numbers
        document = load_manifest(manifest)
        assert [run["label"].split(":")[1] for run in document["runs"]] == [
            "SC", "TSO", "PSO", "WO",
        ]
        for run in document["runs"]:
            assert len(run["shards"]) == 4
            assert run["result"]["trials"] == 4000

    def test_manifest_flag_before_subcommand(self, capsys, tmp_path):
        manifest = tmp_path / "m.json"
        run_cli(capsys, "--manifest", str(manifest), "machine",
                "--model", "SC", "--trials", "50", "--seed", "5",
                "--shards", "2")
        from repro.obs import load_manifest

        document = load_manifest(manifest)
        assert document["runs"][0]["label"].startswith("canonical:SC")

    def test_trace_and_progress(self, capsys, tmp_path):
        import json

        trace = tmp_path / "spans.jsonl"
        assert main(["machine", "--model", "SC", "--trials", "50",
                     "--seed", "5", "--shards", "2", "--trace", str(trace),
                     "--progress"]) == 0
        captured = capsys.readouterr()
        names = [json.loads(line)["name"]
                 for line in trace.read_text().splitlines()]
        assert names == ["shards", "merge", "run"]  # children close first
        assert "shards 2/2" in captured.err

    def test_scaling_accepts_progress(self, capsys):
        out = run_cli(capsys, "scaling", "--max-n", "4", "--progress")
        assert "ln Pr[A] SC" in out


#: Minimal valid argv per subcommand — one entry for every subcommand the
#: CLI exposes, so the RunConfig regression below cannot silently skip one.
SUBCOMMAND_ARGV = {
    "table1": ["table1"],
    "window": ["window", "--max-gamma", "2"],
    "thm62": ["thm62"],
    "scaling": ["scaling", "--max-n", "4"],
    "litmus": ["litmus"],
    "machine": ["machine", "--model", "SC", "--trials", "50",
                "--body-length", "2"],
    "fences": ["fences", "--distances", "0", "4"],
    "fleet": ["fleet", "SC", "WO"],
    "critical-section": ["critical-section", "--lengths", "2", "4"],
    "multibug": ["multibug", "--bugs", "1", "8"],
    "cache": ["cache", "stats"],
    "experiments": ["experiments"],
    "verify": ["verify"],
    "serve": ["serve", "--port", "0"],
}

#: Global engine flags with distinctive values, given *before* the
#: subcommand (the root parser serves every subcommand).
ENGINE_FLAGS = ["--workers", "2", "--shards", "3", "--retries", "1",
                "--shard-timeout", "30", "--rng-plan", "philox",
                "--transport", "shm"]


def _assert_probe_config(config: RunConfig) -> None:
    assert config.workers == 2
    assert config.shards == 3
    assert config.retries == 1
    assert config.timeout == 30.0
    assert config.rng_plan == "philox"
    assert config.transport == "shm"


class TestRunConfigFromArgs:
    """Every subcommand must carry the global engine flags into one
    RunConfig — the regression net for the historical dropped-flag bugs
    (e.g. ``scaling`` parsing ``--rng-plan`` but never forwarding it)."""

    def test_every_subcommand_is_covered(self):
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        assert set(subparsers.choices) == set(SUBCOMMAND_ARGV)

    @pytest.mark.parametrize("command", sorted(SUBCOMMAND_ARGV))
    def test_global_flags_reach_run_config(self, command):
        args = build_parser().parse_args(ENGINE_FLAGS + SUBCOMMAND_ARGV[command])
        _assert_probe_config(RunConfig.from_args(args))

    @pytest.mark.parametrize("command",
                             ["thm62", "scaling", "machine", "critical-section"])
    def test_engine_subcommands_accept_flags_after_subcommand(self, command):
        argv = SUBCOMMAND_ARGV[command] + ENGINE_FLAGS
        _assert_probe_config(RunConfig.from_args(build_parser().parse_args(argv)))

    def test_flag_after_subcommand_wins_over_root(self):
        args = build_parser().parse_args(
            ["--rng-plan", "spawn", "thm62", "--rng-plan", "philox"])
        assert RunConfig.from_args(args).rng_plan == "philox"

    def test_invalid_workers_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workers", "0", "thm62"])

    def test_from_args_validates_the_built_config(self):
        args = build_parser().parse_args(["thm62"])
        args.workers = 0  # as if a flag validator were missing
        with pytest.raises(ValueError):
            RunConfig.from_args(args)


class _Recording:
    """Delegating wrapper that records the ``config=`` each call received."""

    def __init__(self, real):
        self.real = real
        self.configs = []

    def __call__(self, *args, **kwargs):
        self.configs.append(kwargs.get("config"))
        return self.real(*args, **kwargs)


class TestHandlersForwardRunConfig:
    """Through the real ``main()``: the engine entry point each handler
    calls must receive the parsed flags via ``args.run_config``."""

    ENGINE_CALLS = [
        pytest.param("estimate_non_manifestation",
                     ["thm62", "--trials", "2000"], id="thm62"),
        pytest.param("thread_sweep", ["scaling", "--max-n", "4"], id="scaling"),
        pytest.param("run_canonical_bug",
                     ["machine", "--model", "SC", "--trials", "50",
                      "--body-length", "2"], id="machine"),
        pytest.param("critical_section_sweep",
                     ["critical-section", "--lengths", "2", "4"],
                     id="critical-section"),
    ]

    @pytest.mark.parametrize("entry_point, argv", ENGINE_CALLS)
    def test_handler_forwards_flags(self, capsys, monkeypatch, entry_point,
                                    argv):
        recorder = _Recording(getattr(cli_module, entry_point))
        monkeypatch.setattr(cli_module, entry_point, recorder)
        run_cli(capsys, "--retries", "1", "--rng-plan", "philox",
                "--transport", "pickle", *argv)
        assert recorder.configs  # the handler did call the engine
        for config in recorder.configs:
            assert config is not None
            assert config.retries == 1
            assert config.rng_plan == "philox"
            assert config.transport == "pickle"


class TestTransportFlag:
    def test_shm_transport_output_matches_pickle(self, capsys):
        base = ["--workers", "2", "--shards", "4", "machine", "--model", "SC",
                "--trials", "50", "--seed", "5", "--body-length", "2"]
        via_pickle = run_cli(capsys, "--transport", "pickle", *base)
        via_shm = run_cli(capsys, "--transport", "shm", *base)
        assert via_shm == via_pickle

    def test_shm_transport_thm62(self, capsys):
        base = ["thm62", "--trials", "4000", "--seed", "3", "--shards", "4"]
        clean = run_cli(capsys, *base)
        via_shm = run_cli(capsys, "--transport", "shm", *base)
        assert via_shm == clean
