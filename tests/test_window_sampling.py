"""Tests for repro.core.window_sampling: the vectorised batch samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PSO, SC, TSO, WO, sample_growth_matrix, window_distribution
from repro.stats import RandomSource, wilson_interval


class TestShapes:
    def test_shape(self, paper_model, source):
        growths = sample_growth_matrix(paper_model, source, trials=7, threads=3)
        assert growths.shape == (7, 3)
        assert growths.dtype == np.int64

    def test_non_negative(self, paper_model, source):
        growths = sample_growth_matrix(paper_model, source, trials=50, threads=2)
        assert (growths >= 0).all()

    def test_sc_all_zero(self, source):
        assert not sample_growth_matrix(SC, source, trials=20, threads=4).any()

    def test_validation(self, source):
        with pytest.raises(ValueError):
            sample_growth_matrix(TSO, source, trials=0, threads=2)
        with pytest.raises(ValueError):
            sample_growth_matrix(TSO, source, trials=2, threads=0)

    def test_reproducible(self):
        a = sample_growth_matrix(TSO, RandomSource(8), trials=20, threads=2)
        b = sample_growth_matrix(TSO, RandomSource(8), trials=20, threads=2)
        assert (a == b).all()


class TestMarginals:
    @pytest.mark.parametrize("model", [TSO, PSO, WO], ids=lambda m: m.name)
    def test_marginal_matches_analytic(self, model, source):
        growths = sample_growth_matrix(model, source, trials=15_000, threads=2)
        flat = growths.ravel()
        dist = window_distribution(model)
        for gamma in range(4):
            count = int((flat == gamma).sum())
            interval = wilson_interval(count, flat.size, confidence=0.999)
            assert interval.contains(dist.pmf(gamma)), f"{model.name} gamma={gamma}"


class TestSharedProgramCoupling:
    def test_tso_threads_positively_correlated(self, source):
        """Shared programs couple TSO windows: same-trial threads correlate.

        A program whose suffix is store-rich inflates every thread's window,
        so Cov(gamma_1, gamma_2) > 0; independent sampling would give ~0.
        """
        growths = sample_growth_matrix(TSO, source, trials=60_000, threads=2)
        correlation = np.corrcoef(growths[:, 0], growths[:, 1])[0, 1]
        assert correlation > 0.02

    def test_wo_threads_uncorrelated(self, source):
        """WO windows are program-independent, hence uncorrelated."""
        growths = sample_growth_matrix(WO, source, trials=60_000, threads=2)
        correlation = np.corrcoef(growths[:, 0], growths[:, 1])[0, 1]
        assert abs(correlation) < 0.02


class TestReferenceFallback:
    def test_custom_model_uses_reference_settler(self, source):
        from repro.core import LD, ST, MemoryModel

        exotic = MemoryModel("exotic", [(ST, ST)])
        growths = sample_growth_matrix(
            exotic, source, trials=10, threads=2, body_length=12
        )
        assert not growths.any()  # ST/ST alone can never grow the window

    def test_reference_matches_fast_for_tso(self):
        """The slow shared-program path agrees with the fast chain path."""
        from repro.core.window_sampling import _sample_growth_reference

        fast = sample_growth_matrix(
            TSO, RandomSource(3), trials=4000, threads=1, body_length=32
        ).ravel()
        slow = _sample_growth_reference(
            TSO, RandomSource(4), trials=4000, threads=1, body_length=32,
            store_probability=0.5,
        ).ravel()
        for gamma in range(3):
            fast_interval = wilson_interval(int((fast == gamma).sum()), fast.size, 0.999)
            slow_interval = wilson_interval(int((slow == gamma).sum()), slow.size, 0.999)
            assert fast_interval.low <= slow_interval.high
            assert slow_interval.low <= fast_interval.high
