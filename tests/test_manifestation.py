"""Tests for repro.core.manifestation: the joined model (Theorems 6.2, 6.3)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    PSO,
    SC,
    TSO,
    WO,
    asymptotic_exponent,
    estimate_non_manifestation,
    estimate_non_manifestation_rao_blackwell,
    log_non_manifestation,
    manifestation_probability,
    non_manifestation_probability,
    theorem_62_reference,
    tso_two_thread_bounds,
)
from repro.errors import ModelDefinitionError


class TestTheorem62:
    """The paper's two-thread table (experiment E8)."""

    def test_sc_exact(self):
        assert non_manifestation_probability(SC).value == pytest.approx(1 / 6)

    def test_wo_exact(self):
        assert non_manifestation_probability(WO).value == pytest.approx(7 / 54)

    def test_tso_within_published_bounds(self):
        lower, upper = tso_two_thread_bounds()
        value = non_manifestation_probability(TSO).value
        assert lower < value < upper

    def test_tso_bounds_match_stated_decimals(self):
        lower, upper = tso_two_thread_bounds()
        assert lower == pytest.approx(0.13151927, abs=1e-6)
        assert upper == pytest.approx(0.13681028, abs=1e-6)

    def test_ordering_sc_strongest(self):
        """SC survives most; WO least among the paper's three (n = 2)."""
        sc = non_manifestation_probability(SC).value
        tso = non_manifestation_probability(TSO).value
        wo = non_manifestation_probability(WO).value
        assert sc > tso > wo

    def test_tso_closer_to_wo_than_sc(self):
        """The paper's remark: TSO's value is substantially closer to WO."""
        sc = non_manifestation_probability(SC).value
        tso = non_manifestation_probability(TSO).value
        wo = non_manifestation_probability(WO).value
        assert abs(tso - wo) < abs(tso - sc)

    def test_pso_between_tso_and_sc(self):
        """E12: the store-chase makes PSO safer than TSO in this model."""
        pso = non_manifestation_probability(PSO).value
        assert non_manifestation_probability(TSO).value < pso
        assert pso < non_manifestation_probability(SC).value

    def test_sc_to_wo_ratio_is_nine_sevenths(self):
        """The paper: (1/6) / (7/54) = 9/7."""
        ratio = (
            non_manifestation_probability(SC).value
            / non_manifestation_probability(WO).value
        )
        assert ratio == pytest.approx(9 / 7)

    def test_reference_table(self):
        reference = theorem_62_reference()
        assert reference["SC"] == pytest.approx(1 / 6)
        assert reference["WO"] == pytest.approx(7 / 54)
        assert reference["TSO"] == tso_two_thread_bounds()

    def test_manifestation_is_complement(self, paper_model):
        survive = non_manifestation_probability(paper_model).value
        manifest = manifestation_probability(paper_model).value
        assert survive + manifest == pytest.approx(1.0)


class TestManifestationBounds:
    def test_tight_at_two_threads(self, paper_model):
        from repro.core import manifestation_bounds

        low, high = manifestation_bounds(paper_model, 2)
        exact = manifestation_probability(paper_model).value
        assert low == pytest.approx(exact)
        assert high == pytest.approx(exact)

    def test_bracket_monte_carlo_for_dependent_model(self):
        from repro.core import manifestation_bounds

        for n in (3, 4):
            low, high = manifestation_bounds(TSO, n)
            empirical = estimate_non_manifestation(TSO, n, trials=100_000, seed=89)
            manifest = 1.0 - empirical.estimate
            margin = empirical.proportion.half_width
            assert low - margin <= manifest <= high + margin, n

    def test_upper_bound_saturates(self):
        """binom(n,2)·q passes 1 quickly in the paper's risky regime."""
        from repro.core import manifestation_bounds

        _, high = manifestation_bounds(SC, 5)
        assert high == 1.0

    def test_monotone_in_n(self):
        from repro.core import manifestation_bounds

        uppers = [manifestation_bounds(WO, n)[1] for n in (2, 3, 4)]
        assert uppers == sorted(uppers)

    def test_validation(self):
        from repro.core import manifestation_bounds

        with pytest.raises(ValueError):
            manifestation_bounds(SC, 1)


class TestRouteGuards:
    def test_n_below_two_rejected(self):
        with pytest.raises(ValueError):
            non_manifestation_probability(SC, n=1)
        with pytest.raises(ValueError):
            log_non_manifestation(SC, n=0)

    def test_dependent_models_need_explicit_approximation(self):
        with pytest.raises(ModelDefinitionError):
            non_manifestation_probability(TSO, n=3)
        with pytest.raises(ModelDefinitionError):
            log_non_manifestation(PSO, n=4)

    def test_independent_models_fine_at_any_n(self):
        assert non_manifestation_probability(WO, n=5).value > 0
        assert non_manifestation_probability(SC, n=5).value > 0

    def test_approximation_flag_unlocks(self):
        value = non_manifestation_probability(
            TSO, n=3, allow_independent_approximation=True
        )
        assert 0 < value.value < 1


class TestTheorem63:
    def test_log_probabilities_decrease_quadratically(self):
        values = [log_non_manifestation(SC, n) for n in (2, 4, 8, 16)]
        assert all(b < a for a, b in zip(values, values[1:]))
        # -ln Pr / n^2 approaches (3/2) ln 2 from below as n grows.
        exponents = [-value / n**2 for value, n in zip(values, (2, 4, 8, 16))]
        assert exponents[-1] == pytest.approx(1.5 * math.log(2), rel=0.2)

    def test_asymptotic_exponent_converges_same_limit(self, paper_model):
        limit = 1.5 * math.log(2)
        exponent = asymptotic_exponent(paper_model, 64)
        assert exponent == pytest.approx(limit, rel=0.12)

    def test_model_gap_vanishes(self):
        """ln Pr[A_SC] / ln Pr[A_WO] → 1 (the headline dichotomy)."""
        ratios = [
            log_non_manifestation(SC, n) / log_non_manifestation(WO, n)
            for n in (2, 8, 32, 128)
        ]
        assert ratios == sorted(ratios)  # monotone towards 1
        assert ratios[0] < 0.9
        assert ratios[-1] > 0.99

    def test_sc_closed_form(self):
        """SC: Pr[A] = prefactor · n! · 2^{-3 binom(n,2)}."""
        from repro.core import prefactor

        for n in (2, 3, 5):
            expected = prefactor(n) * math.factorial(n) * 2.0 ** (-3 * n * (n - 1) / 2)
            assert math.exp(log_non_manifestation(SC, n)) == pytest.approx(expected)


class TestMonteCarloRoutes:
    def test_end_to_end_matches_theorem_62(self, paper_model):
        empirical = estimate_non_manifestation(paper_model, n=2, trials=120_000, seed=61)
        exact = non_manifestation_probability(paper_model).value
        assert empirical.agrees_with(exact), f"{paper_model.name}: {empirical} vs {exact}"

    def test_end_to_end_three_threads_wo(self):
        empirical = estimate_non_manifestation(WO, n=3, trials=150_000, seed=67)
        exact = non_manifestation_probability(WO, n=3).value
        assert empirical.agrees_with(exact)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_non_manifestation(SC, n=1, trials=10)

    def test_rao_blackwell_matches_exact_at_n2(self, store_buffer_model):
        result = estimate_non_manifestation_rao_blackwell(
            store_buffer_model, n=2, programs=300, seed=71
        )
        exact = non_manifestation_probability(store_buffer_model).value
        assert result.agrees_with(exact, sigmas=4)

    def test_rao_blackwell_trivial_for_independent_models(self):
        """For WO the conditional equals the unconditional: zero variance."""
        result = estimate_non_manifestation_rao_blackwell(WO, n=3, programs=5, seed=0)
        assert result.standard_error == pytest.approx(0.0, abs=1e-12)
        assert result.estimate == pytest.approx(
            non_manifestation_probability(WO, n=3).value
        )

    def test_rao_blackwell_vs_end_to_end_n3(self):
        """The dependence-honouring routes agree at n = 3 for TSO."""
        rao = estimate_non_manifestation_rao_blackwell(TSO, n=3, programs=500, seed=73)
        end_to_end = estimate_non_manifestation(TSO, n=3, trials=200_000, seed=79)
        assert abs(rao.estimate - end_to_end.estimate) < 4 * (
            rao.standard_error + end_to_end.proportion.half_width
        )

    def test_rao_blackwell_detects_positive_dependence(self):
        """Shared programs raise Pr[A] above the independent approximation.

        Positively-correlated windows make joint disjointness *more* likely
        than independence predicts (both windows small together).
        """
        rao = estimate_non_manifestation_rao_blackwell(TSO, n=4, programs=800, seed=83)
        independent = non_manifestation_probability(
            TSO, n=4, allow_independent_approximation=True
        ).value
        assert rao.estimate > independent

    def test_rao_blackwell_validation(self):
        with pytest.raises(ValueError):
            estimate_non_manifestation_rao_blackwell(TSO, n=1, programs=10)
