"""Tests for repro.sim.machine and repro.sim.scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import (
    GeometricLaunchScheduler,
    Load,
    LockStepScheduler,
    Machine,
    RandomScheduler,
    Store,
    ThreadProgram,
)
from repro.stats import RandomSource


class TestMachineBasics:
    def test_single_thread_runs_to_completion(self, source):
        program = ThreadProgram("T0", (Store("x", value=3), Load("r1", "x")))
        result = Machine("SC", [program]).run(source)
        assert result.location("x") == 3
        assert result.register("T0", "r1") == 3
        assert result.cycles >= 2

    def test_initial_memory_respected(self, source):
        program = ThreadProgram("T0", (Load("r1", "flag"),))
        result = Machine("SC", [program], initial_memory={"flag": 9}).run(source)
        assert result.register("T0", "r1") == 9

    def test_unwritten_locations_read_zero(self, source):
        program = ThreadProgram("T0", (Load("r1", "nowhere"),))
        result = Machine("TSO", [program]).run(source)
        assert result.register("T0", "r1") == 0

    def test_needs_programs(self):
        with pytest.raises(SimulationError):
            Machine("SC", [])

    def test_access_log_optional(self, source):
        program = ThreadProgram("T0", (Store("x", value=1),))
        bare = Machine("SC", [program]).run(source.child())
        logged = Machine("SC", [program], log_accesses=True).run(source.child())
        assert bare.log == []
        assert len(logged.log) == 1

    def test_buffers_flushed_at_exit(self, source):
        """A TSO store with drain probability 0 still reaches memory."""
        program = ThreadProgram("T0", (Store("x", value=5),))
        result = Machine("TSO", [program], drain_probability=0.0).run(source)
        assert result.location("x") == 5

    def test_reproducible(self):
        programs = [
            ThreadProgram("T0", (Store("x", value=1), Load("r1", "y"))),
            ThreadProgram("T1", (Store("y", value=1), Load("r2", "x"))),
        ]
        a = Machine("TSO", programs).run(RandomSource(3))
        b = Machine("TSO", programs).run(RandomSource(3))
        assert a.registers == b.registers

    def test_two_threads_communicate(self, source):
        """A lock-step SC machine: T1's late load sees T0's early store."""
        programs = [
            ThreadProgram("T0", (Store("flag", value=1),)),
            ThreadProgram("T1", (Load("r0", "pad"), Load("r1", "flag"))),
        ]
        result = Machine("SC", programs, scheduler=LockStepScheduler()).run(source)
        assert result.register("T1", "r1") == 1


class TestSchedulers:
    def test_lockstep_always_schedules(self, source):
        scheduler = LockStepScheduler()
        assert all(scheduler.scheduled(i, c, source) for i in range(4) for c in range(4))

    def test_random_scheduler_rate_validation(self):
        with pytest.raises(ValueError):
            RandomScheduler(0.0)
        with pytest.raises(ValueError):
            RandomScheduler(1.5)

    def test_random_scheduler_mixes(self, source):
        scheduler = RandomScheduler(0.5)
        decisions = [scheduler.scheduled(0, c, source) for c in range(200)]
        assert any(decisions) and not all(decisions)

    def test_geometric_launch_delays(self, source):
        scheduler = GeometricLaunchScheduler(beta=0.5)
        scheduler.prepare(8, source)
        delays = scheduler.delays
        assert len(delays) == 8
        assert all(delay >= 0 for delay in delays)
        for index, delay in enumerate(delays):
            if delay > 0:
                assert not scheduler.scheduled(index, delay - 1, source)
            assert scheduler.scheduled(index, delay, source)

    def test_geometric_launch_zero_beta_starts_immediately(self, source):
        scheduler = GeometricLaunchScheduler(beta=0.0)
        scheduler.prepare(3, source)
        assert scheduler.delays == [0, 0, 0]

    def test_geometric_beta_validation(self):
        with pytest.raises(ValueError):
            GeometricLaunchScheduler(beta=1.0)

    def test_machine_with_geometric_scheduler_completes(self, source):
        programs = [
            ThreadProgram("T0", (Store("x", value=1),)),
            ThreadProgram("T1", (Load("r1", "x"),)),
        ]
        result = Machine("WO", programs, scheduler=GeometricLaunchScheduler()).run(source)
        assert result.location("x") == 1


class TestStoreBuffering:
    def test_sb_relaxed_outcome_reachable_on_tso_machine(self):
        """The machine exhibits SB's r1 = r2 = 0 under TSO but not SC."""
        programs = [
            ThreadProgram("T0", (Store("x", value=1), Load("r1", "y"))),
            ThreadProgram("T1", (Store("y", value=1), Load("r2", "x"))),
        ]

        def outcomes(model: str, seeds: int) -> set[tuple[int, int]]:
            seen = set()
            for seed in range(seeds):
                result = Machine(model, programs).run(RandomSource(seed))
                seen.add((result.register("T0", "r1"), result.register("T1", "r2")))
            return seen

        assert (0, 0) in outcomes("TSO", 60)
        assert (0, 0) not in outcomes("SC", 60)
