"""Tests for repro.core.settling: the §3.1.2 reordering process."""

from __future__ import annotations

import pytest

from repro.core import (
    PSO,
    SC,
    TSO,
    WO,
    SettlingProcess,
    program_from_types,
    sample_window_growth,
)
from repro.core.settling import sample_trailing_run
from repro.errors import ModelDefinitionError
from repro.stats import RandomSource, run_categorical_trials


class TestSettlingInvariants:
    def test_output_is_permutation(self, paper_model, source):
        program = program_from_types("SLSLSLSS")
        result = SettlingProcess(paper_model).settle(program, source)
        assert sorted(result.order) == list(range(1, program.length + 1))

    def test_position_of_inverts_order(self, paper_model, source):
        program = program_from_types("SLLS")
        result = SettlingProcess(paper_model).settle(program, source)
        for position, index in enumerate(result.order, start=1):
            assert result.position_of(index) == position

    def test_sc_is_identity(self, source):
        program = program_from_types("SLSLLS")
        result = SettlingProcess(SC).settle(program, source)
        assert list(result.order) == list(range(1, program.length + 1))
        assert result.window_growth == 0

    def test_critical_store_never_passes_critical_load(self, paper_model, source):
        program = program_from_types("SSSS")
        for _ in range(50):
            result = SettlingProcess(paper_model).settle(program, source.child())
            assert result.critical_load_position < result.critical_store_position

    def test_window_length_is_growth_plus_two(self, paper_model, source):
        program = program_from_types("SSLS")
        result = SettlingProcess(paper_model).settle(program, source)
        assert result.window_length == result.window_growth + 2

    def test_window_indices_span_critical_pair(self, source):
        program = program_from_types("SSSS")
        result = SettlingProcess(WO).settle(program, source)
        indices = result.window_indices()
        assert indices[0] == result.critical_load_position
        assert indices[-1] == result.critical_store_position

    def test_tso_stores_never_move(self, source):
        """Under TSO a store can pass nothing: relative store order is fixed."""
        program = program_from_types("SLSLS")
        store_indices = [i for i in range(1, program.length + 1)
                         if program.type_of(i).mnemonic == "ST"]
        for _ in range(50):
            result = SettlingProcess(TSO).settle(program, source.child())
            positions = [result.position_of(i) for i in store_indices]
            assert positions == sorted(positions)

    def test_tso_load_never_passes_load(self, source):
        program = program_from_types("LLLL")
        for _ in range(50):
            result = SettlingProcess(TSO).settle(program, source.child())
            assert list(result.order) == list(range(1, program.length + 1))

    def test_pso_preserves_type_multiset(self, source):
        program = program_from_types("SLLSS")
        result = SettlingProcess(PSO).settle(program, source)
        initial = sorted(t.mnemonic for t in program.types())
        final = sorted(t.mnemonic for t in result.final_types())
        assert initial == final


class TestTrace:
    def test_trace_absent_by_default(self, source):
        result = SettlingProcess(TSO).settle(program_from_types("SL"), source)
        assert result.trace is None

    def test_trace_has_one_step_per_round(self, source):
        program = program_from_types("SLS")
        result = SettlingProcess(TSO).settle(program, source, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == program.length
        assert [step.round_index for step in result.trace] == list(range(1, program.length + 1))

    def test_trace_orders_grow_by_one(self, source):
        program = program_from_types("SSLL")
        result = SettlingProcess(WO).settle(program, source, record_trace=True)
        for round_number, step in enumerate(result.trace, start=1):
            assert len(step.order) == round_number
            assert sorted(step.order) == list(range(1, round_number + 1))

    def test_trace_final_order_matches_result(self, source):
        program = program_from_types("SLSSL")
        result = SettlingProcess(PSO).settle(program, source, record_trace=True)
        assert result.trace[-1].order == result.order

    def test_swap_counts_bounded_by_position(self, source):
        program = program_from_types("SSSSS")
        result = SettlingProcess(WO).settle(program, source, record_trace=True)
        for step in result.trace:
            assert 0 <= step.swaps < step.round_index


class TestDeterministicSettling:
    def test_certain_swap_probability_floats_load_to_top(self):
        """With s = 1 under TSO, a load passes every store above it."""
        model = TSO.with_settle_probability(1.0)
        program = program_from_types("SSS")
        result = SettlingProcess(model).settle(program, RandomSource(0))
        # The critical load must sit at position 1; critical store stays put.
        assert result.critical_load_position == 1
        assert result.window_growth == 3

    def test_zero_swap_probability_is_identity(self):
        model = WO.with_settle_probability(0.0)
        program = program_from_types("SLSL")
        result = SettlingProcess(model).settle(program, RandomSource(0))
        assert list(result.order) == list(range(1, program.length + 1))


class TestTrailingRunSampler:
    def test_requires_store_buffer_model(self, source):
        with pytest.raises(ModelDefinitionError):
            sample_trailing_run(WO, source)
        with pytest.raises(ModelDefinitionError):
            sample_trailing_run(SC, source)

    def test_accepts_tso_and_pso(self, store_buffer_model, source):
        value = sample_trailing_run(store_buffer_model, source, body_length=32)
        assert 0 <= value <= 32

    def test_rejects_non_uniform_settle(self, source):
        from repro.core import LD, ST, MemoryModel

        lopsided = MemoryModel("lop", [(ST, LD), (ST, ST)], {(ST, LD): 0.3, (ST, ST): 0.6})
        with pytest.raises(ModelDefinitionError):
            sample_trailing_run(lopsided, source)

    def test_matches_settled_prefix_run(self):
        """The chain sampler's distribution matches direct settling."""
        from repro.core import run_length_distribution

        result = run_categorical_trials(
            lambda src: sample_trailing_run(TSO, src, body_length=64),
            trials=20_000,
            seed=17,
        )
        exact = run_length_distribution()
        for mu in range(5):
            assert result.probability(mu).contains(exact.pmf(mu)), f"mu={mu}"


class TestWindowGrowthSampler:
    def test_sc_always_zero(self, source):
        assert all(sample_window_growth(SC, source) == 0 for _ in range(20))

    def test_non_negative(self, paper_model, source):
        for _ in range(50):
            assert sample_window_growth(paper_model, source, body_length=32) >= 0

    def test_matches_reference_simulator(self, paper_model):
        """Fast samplers agree with the full settling process (cross-check)."""
        fast = run_categorical_trials(
            lambda src: sample_window_growth(paper_model, src, body_length=48),
            trials=15_000,
            seed=23,
        )
        slow = run_categorical_trials(
            lambda src: SettlingProcess(paper_model)
            .sample_result(src, body_length=48)
            .window_growth,
            trials=15_000,
            seed=29,
        )
        for gamma in range(4):
            fast_interval = fast.probability(gamma)
            slow_interval = slow.probability(gamma)
            assert fast_interval.low <= slow_interval.high
            assert slow_interval.low <= fast_interval.high

    def test_custom_model_falls_back_to_reference(self, source):
        from repro.core import LD, ST, MemoryModel

        # Only ST/ST relaxes: the critical load cannot move and the critical
        # store cannot pass the load, so the window can never grow.
        exotic = MemoryModel("exotic", [(ST, ST)])
        for _ in range(20):
            assert sample_window_growth(exotic, source, body_length=16) == 0
