"""Tests for repro.core.multibug: scaling in the number of racy sections."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    estimate_multi_bug_survival,
    multi_bug_gap_curve,
    multi_bug_survival,
    non_manifestation_probability,
    shift_difference_pmf,
)


class TestShiftDifference:
    def test_normalised(self):
        total = shift_difference_pmf(0) + 2 * sum(
            shift_difference_pmf(k) for k in range(1, 200)
        )
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_paper_beta_values(self):
        assert shift_difference_pmf(0) == pytest.approx(1 / 3)
        assert shift_difference_pmf(1) == pytest.approx(1 / 6)
        assert shift_difference_pmf(-1) == pytest.approx(1 / 6)
        assert shift_difference_pmf(2) == pytest.approx(1 / 12)

    def test_symmetric(self):
        for k in range(5):
            assert shift_difference_pmf(k) == shift_difference_pmf(-k)

    def test_general_beta_normalised(self):
        beta = 0.3
        total = shift_difference_pmf(0, beta) + 2 * sum(
            shift_difference_pmf(k, beta) for k in range(1, 100)
        )
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            shift_difference_pmf(0, beta=1.0)


class TestExactSurvival:
    def test_single_bug_reproduces_theorem_62(self, paper_model):
        one = multi_bug_survival(paper_model, 1).value
        reference = non_manifestation_probability(paper_model).value
        assert one == pytest.approx(reference, abs=1e-9)

    def test_sc_survival_constant_in_bug_count(self):
        """Deterministic windows: Pr[A] = Pr[|d| >= 3] = 1/6 for every K."""
        for bug_count in (1, 4, 64, 1024):
            assert multi_bug_survival(SC, bug_count).value == pytest.approx(1 / 6)

    def test_weak_models_decay(self, paper_model):
        values = [multi_bug_survival(paper_model, k).value for k in (1, 4, 16)]
        if paper_model.relaxed_pairs:
            assert values == sorted(values, reverse=True)
            assert values[0] > values[-1]
        else:
            assert values[0] == pytest.approx(values[-1])

    def test_wo_decays_like_one_over_k(self):
        """Window tail ratio 1/2 -> survival ~ K^{-1} (Laplace method)."""
        small = multi_bug_survival(WO, 64).value
        large = multi_bug_survival(WO, 256).value
        assert small / large == pytest.approx(4.0, rel=0.15)

    def test_tso_decays_like_k_to_minus_half(self):
        """Window tail ratio 1/4 -> exponent log_4(2) = 1/2."""
        small = multi_bug_survival(TSO, 64).value
        large = multi_bug_survival(TSO, 256).value
        assert small / large == pytest.approx(2.0, rel=0.1)

    def test_gap_diverges(self):
        """The dual of Theorem 6.3: SC/WO ratio grows without bound in K."""
        ratios = [
            multi_bug_survival(SC, k).value / multi_bug_survival(WO, k).value
            for k in (1, 8, 64, 512)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 50 * ratios[0]

    def test_ordering_preserved_at_every_k(self):
        for bug_count in (1, 8, 64):
            values = {
                model.name: multi_bug_survival(model, bug_count).value
                for model in PAPER_MODELS
            }
            assert values["WO"] <= values["TSO"] <= values["PSO"] <= values["SC"] + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_bug_survival(SC, 0)


class TestMonteCarloValidation:
    @pytest.mark.parametrize("model", [SC, TSO, PSO, WO], ids=lambda m: m.name)
    def test_agrees_with_exact(self, model):
        for bug_count in (2, 6):
            exact = multi_bug_survival(model, bug_count).value
            empirical = estimate_multi_bug_survival(
                model, bug_count, trials=120_000, seed=97 + bug_count
            )
            assert empirical.agrees_with(exact), (model.name, bug_count)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_multi_bug_survival(SC, 0, trials=100)


class TestGapCurve:
    def test_rows_shape(self):
        rows = multi_bug_gap_curve([1, 4])
        assert [row["bugs"] for row in rows] == [1, 4]
        assert "SC/WO ratio" in rows[0]

    def test_ratio_column_grows(self):
        rows = multi_bug_gap_curve([1, 16, 128])
        ratios = [float(row["SC/WO ratio"]) for row in rows]
        assert ratios == sorted(ratios)

    def test_subset_of_models(self):
        rows = multi_bug_gap_curve([2], models=(SC, TSO))
        assert "Pr[A] SC" in rows[0]
        assert "Pr[A] WO" not in rows[0]
