"""Tests for the fault-tolerance layer (repro.stats.faults).

The invariant under test everywhere: recovery never changes numbers.  A
shard is a pure function of ``(seed, shards, i)``, so a retried,
pool-recovered, or timed-out-and-rerun shard must be **bit-identical** to
the attempt it replaces, and the merged run must equal an undisturbed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from repro.parallel import (
    InjectedFault,
    RetryPolicy,
    ScriptedFaults,
    ShardExecutionError,
    ShardPlan,
    execute_tasks,
    run_sharded,
)

#: Fast-backoff policy so retry tests do not sleep for real.
FAST = dict(backoff=0.0)


def _sum_kernel(source, shard_trials) -> int:
    return int(source.bernoulli_array(0.5, shard_trials).sum()) if shard_trials else 0


def _identity(value):
    return value


@dataclass(frozen=True)
class _SleepOnFirstAttempt:
    """Picklable injector that wedges one task's first attempt."""

    index: int
    seconds: float

    def __call__(self, index: int, attempt: int) -> None:
        if index == self.index and attempt == 0:
            time.sleep(self.seconds)


class TestRetryPolicy:
    def test_defaults_fail_fast(self):
        policy = RetryPolicy()
        assert policy.retries == 0
        assert policy.timeout is None

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(retries=8, backoff=0.1, backoff_factor=2.0,
                             max_backoff=0.5)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(retries=1000)


class TestScriptedFaults:
    def test_kills_scripted_attempts_only(self):
        faults = ScriptedFaults(failures={2: 2})
        faults(0, 0)  # untouched task: no-op
        with pytest.raises(InjectedFault):
            faults(2, 0)
        with pytest.raises(InjectedFault):
            faults(2, 1)
        faults(2, 2)  # third attempt survives

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            ScriptedFaults(kind="segfault")


class TestExecuteTasksSerial:
    def test_plain_execution_in_order(self):
        results = execute_tasks(_identity, [(3,), (1,), (2,)])
        assert results == [3, 1, 2]

    def test_retry_heals_injected_faults(self):
        faults = ScriptedFaults(failures={0: 2, 2: 1})
        results = execute_tasks(
            _identity, [(10,), (20,), (30,)],
            policy=RetryPolicy(retries=2, **FAST), fault_injector=faults,
        )
        assert results == [10, 20, 30]

    def test_exhausted_retries_raise_with_task_identity(self):
        faults = ScriptedFaults(failures={1: 99})
        with pytest.raises(ShardExecutionError) as excinfo:
            execute_tasks(_identity, [(1,), (2,)],
                          policy=RetryPolicy(retries=2, **FAST),
                          fault_injector=faults)
        assert excinfo.value.index == 1
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_completed_tasks_are_not_reexecuted(self):
        faults = ScriptedFaults(failures={0: 99})  # would never succeed
        results = execute_tasks(_identity, [(7,), (8,)],
                                fault_injector=faults,
                                completed={0: 70})
        assert results == [70, 8]

    def test_completed_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            execute_tasks(_identity, [(1,)], completed={5: 0})

    def test_on_result_fires_per_fresh_result(self):
        seen = []
        execute_tasks(_identity, [(1,), (2,), (3,)],
                      on_result=lambda index, value: seen.append((index, value)),
                      completed={1: 20})
        assert seen == [(0, 1), (2, 3)]


class TestExecuteTasksPooled:
    def test_pool_matches_serial(self):
        tasks = [(value,) for value in range(6)]
        assert (execute_tasks(_identity, tasks, workers=2, serial=False)
                == execute_tasks(_identity, tasks))

    def test_retry_heals_raised_faults(self):
        plan = ShardPlan(trials=1200, shards=4, seed=5)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        faults = ScriptedFaults(failures={1: 1, 3: 2})
        healed = run_sharded(_sum_kernel, plan, workers=2, retries=2,
                             fault_injector=faults)
        assert healed == clean

    def test_broken_pool_recovery_reexecutes_lost_shards(self):
        plan = ShardPlan(trials=1200, shards=4, seed=6)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        # kind="exit" hard-kills the worker: the executor breaks and every
        # unfinished shard must be recovered on a fresh pool.
        faults = ScriptedFaults(failures={2: 1}, kind="exit")
        recovered = run_sharded(_sum_kernel, plan, workers=2, retries=2,
                                fault_injector=faults)
        assert recovered == clean

    def test_timeout_charges_attempt_and_recovers(self):
        plan = ShardPlan(trials=400, shards=3, seed=8)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        slow = _SleepOnFirstAttempt(index=1, seconds=5.0)
        start = time.perf_counter()
        healed = run_sharded(_sum_kernel, plan, workers=2, retries=1,
                             timeout=0.5, fault_injector=slow)
        elapsed = time.perf_counter() - start
        assert healed == clean
        assert elapsed < 5.0  # did not wait out the wedged attempt

    def test_pooled_exhaustion_raises(self):
        plan = ShardPlan(trials=400, shards=2, seed=9)
        always_failing = ScriptedFaults(failures={0: 99})
        with pytest.raises(ShardExecutionError):
            run_sharded(_sum_kernel, plan, workers=2, retries=1,
                        fault_injector=always_failing)


class TestRunShardedFaultPlumbing:
    def test_serial_injector_heals_identically(self):
        plan = ShardPlan(trials=1000, shards=4, seed=12)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        healed = run_sharded(_sum_kernel, plan, workers=1, retries=3,
                             fault_injector=ScriptedFaults(failures={0: 2}))
        assert healed == clean

    def test_unpicklable_injector_falls_back_to_serial(self):
        plan = ShardPlan(trials=1000, shards=4, seed=13)
        clean = run_sharded(_sum_kernel, plan, workers=1)
        failures = {1: 1}
        injector = lambda index, attempt: (  # noqa: E731 — deliberately unpicklable
            (_ for _ in ()).throw(InjectedFault("boom"))
            if attempt < failures.get(index, 0) else None)
        healed = run_sharded(_sum_kernel, plan, workers=4, retries=1,
                             fault_injector=injector)
        assert healed == clean
