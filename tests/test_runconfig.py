"""The unified RunConfig execution context (``repro.runconfig``).

Three layers of coverage:

1. The record itself — validation at the single ``resolve()`` point,
   keyword-alias folding (``UNSET`` semantics), CLI binding metadata.
2. Knob propagation — a ``RunConfig`` with a distinctive value in every
   field, driven through each public estimator with ``run_sharded`` /
   ``parallel_map`` monkeypatched to record what actually arrives at the
   engine.  This is the test that would have caught the historical
   "flag parsed but silently dropped" CLI bugs.
3. Golden byte-identity — fixed-seed merged numbers and v2 plan keys
   over the full spawn/philox × pickle/shm × scalar/vectorized/fused
   matrix, pinned to the values the pre-RunConfig code produced.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.sweeps as sweeps_module
import repro.sim.executor as executor_module
import repro.sim.measurement as measurement_module
import repro.stats.montecarlo as montecarlo_module
from repro import RunConfig, UNSET, resolve_run_config
from repro.analysis import (
    beta_sweep,
    critical_section_sweep,
    monte_carlo_check,
    settle_sweep,
    store_probability_sweep,
    thread_sweep,
)
from repro.core.manifestation import (
    _disjointness_batch_trial,
    _disjointness_fused_trial,
    _disjointness_scalar_trial,
    estimate_non_manifestation,
)
from repro.core.memory_models import SC, TSO
from repro.obs import load_manifest
from repro.sim.executor import run_canonical_bug
from repro.sim.measurement import _WindowShard, measure_critical_windows
from repro.stats.montecarlo import (
    BernoulliResult,
    CategoricalResult,
    run_bernoulli_trials,
    run_categorical_trials,
    run_event_trials,
)


# ----------------------------------------------------------------------
# The record: validation, folding, metadata
# ----------------------------------------------------------------------


class TestResolve:
    def test_default_config_resolves_to_itself(self):
        config = RunConfig()
        assert config.resolve() == config

    def test_driver_default_backend_is_applied(self):
        resolved = RunConfig().resolve(default_backend="vectorized")
        assert resolved.backend == "vectorized"

    def test_explicit_backend_wins_over_driver_default(self):
        resolved = RunConfig(backend="scalar").resolve(default_backend="vectorized")
        assert resolved.backend == "scalar"

    @pytest.mark.parametrize("field, value", [
        ("workers", 0), ("workers", -2), ("shards", 0), ("retries", -1),
        ("timeout", 0.0), ("timeout", -1.0), ("rng_plan", "mersenne"),
        ("transport", "carrier-pigeon"), ("backend", "quantum"),
    ])
    def test_bad_knobs_raise(self, field, value):
        with pytest.raises(ValueError):
            RunConfig(**{field: value}).resolve()

    def test_fused_rejected_where_not_allowed(self):
        with pytest.raises(ValueError, match="fused"):
            RunConfig(backend="fused").resolve(
                allowed_backends=("scalar", "vectorized"))

    def test_fused_allowed_on_unrestricted_drivers(self):
        assert RunConfig(backend="fused").resolve().backend == "fused"


class TestFolding:
    def test_unset_alias_does_not_mask_config(self):
        config = RunConfig(workers=4, rng_plan="philox")
        folded = resolve_run_config(config, workers=UNSET, rng_plan=UNSET)
        assert folded == config

    def test_explicit_alias_overrides_config(self):
        config = RunConfig(workers=4, retries=3)
        folded = resolve_run_config(config, workers=2, retries=UNSET)
        assert folded.workers == 2
        assert folded.retries == 3

    def test_explicit_none_is_an_override_not_unset(self):
        config = RunConfig(timeout=30.0, shards=8)
        folded = resolve_run_config(config, timeout=None, shards=UNSET)
        assert folded.timeout is None
        assert folded.shards == 8

    def test_no_config_starts_from_defaults(self):
        assert resolve_run_config(None) == RunConfig()
        assert resolve_run_config(None, workers=2).workers == 2

    def test_unset_is_falsy_singleton(self):
        assert not UNSET
        assert repr(UNSET) == "UNSET"
        assert type(UNSET)() is UNSET


class TestMetadata:
    def test_every_field_has_a_cli_binding_or_is_api_only(self):
        bindings = RunConfig.cli_bindings()
        assert set(bindings) == {
            "workers", "shards", "retries", "timeout", "checkpoint",
            "fingerprint", "cache", "manifest", "trace", "progress",
            "backend", "rng_plan", "transport",
        }
        assert bindings["fingerprint"] is None  # API-only, by design
        assert bindings["timeout"] == "--shard-timeout"
        assert all(flag.startswith("--") for name, flag in bindings.items()
                   if flag is not None)

    def test_plan_key_inputs_expose_exactly_the_identity_knobs(self):
        config = RunConfig(workers=4, shards=8, rng_plan="philox",
                           fingerprint="abc", retries=5, transport="shm")
        assert config.plan_key_inputs() == {
            "shards": 8, "rng_plan": "philox", "fingerprint": "abc"}

    def test_resolved_shards_uses_the_fixed_default_under_parallelism(self):
        from repro.stats.parallel import DEFAULT_SHARDS
        assert RunConfig().resolved_shards() == 1
        assert RunConfig(workers=4).resolved_shards() == DEFAULT_SHARDS
        assert RunConfig(workers=None).resolved_shards() == DEFAULT_SHARDS
        assert RunConfig(workers=4, shards=5).resolved_shards() == 5

    def test_observer_derivation(self, tmp_path):
        assert RunConfig().observer() is None
        observer = RunConfig(trace=tmp_path / "t.jsonl").observer("lbl")
        assert observer is not None
        observer.finish()

    def test_from_args_reads_cli_attribute_names(self):
        class Args:
            workers = 3
            shard_timeout = 12.5
            rng_plan = "philox"
            transport = "shm"
        config = RunConfig.from_args(Args())
        assert config.workers == 3
        assert config.timeout == 12.5
        assert config.rng_plan == "philox"
        assert config.transport == "shm"
        assert config.shards is None  # missing attrs keep field defaults


# ----------------------------------------------------------------------
# Knob propagation: every field must reach the engine
# ----------------------------------------------------------------------

#: One distinctive value per knob.  trace (rather than manifest/progress)
#: carries the observability leg so the assertion is a non-None observer
#: without stderr noise; backend is exercised separately per driver.
def _probe_config(tmp_path, **overrides):
    base = dict(
        workers=2, shards=3, retries=1, timeout=30.0,
        checkpoint=str(tmp_path / "probe.ckpt"), fingerprint="deadbeef",
        cache=str(tmp_path / "cache"), trace=str(tmp_path / "trace.jsonl"),
        rng_plan="philox", transport="pickle",
    )
    base.update(overrides)
    return RunConfig(**base)


class _EngineRecorder:
    """Stands in for ``run_sharded``; records the call, returns shards."""

    def __init__(self, make_result):
        self.make_result = make_result
        self.calls = []

    def __call__(self, kernel, plan, workers=1, **kwargs):
        self.calls.append({"kernel": kernel, "plan": plan,
                           "workers": workers, **kwargs})
        return [self.make_result(plan.trials)]

    @property
    def only_call(self):
        assert len(self.calls) == 1
        return self.calls[0]


def _assert_engine_saw_probe(call, config):
    plan = call["plan"]
    assert plan.shards == config.shards
    assert plan.rng_plan == config.rng_plan
    assert call["workers"] == config.workers
    assert call["retries"] == config.retries
    assert call["timeout"] == config.timeout
    assert call["checkpoint"] == config.checkpoint
    assert call["fingerprint"] == config.fingerprint
    assert call["cache"] == config.cache
    assert call["transport"] == config.transport
    assert call["observer"] is not None  # the trace knob, derived


def _bernoulli(trials):
    return BernoulliResult(1, trials, 0.99, None)


def _categorical(trials):
    return CategoricalResult({2: trials}, trials, 0.99, None)


def _window(trials):
    return _WindowShard(np.array([1, 2], dtype=np.int64), 0, 0, 0)


ESTIMATORS = [
    pytest.param(montecarlo_module, _bernoulli,
                 lambda cfg: run_bernoulli_trials(lambda s: True, 100,
                                                  config=cfg),
                 id="run_bernoulli_trials"),
    pytest.param(montecarlo_module, _categorical,
                 lambda cfg: run_categorical_trials(lambda s: 2, 100,
                                                    config=cfg),
                 id="run_categorical_trials"),
    pytest.param(montecarlo_module, _bernoulli,
                 lambda cfg: run_event_trials(lambda s, b: b, 100,
                                              config=cfg),
                 id="run_event_trials"),
    pytest.param(montecarlo_module, _bernoulli,
                 lambda cfg: estimate_non_manifestation(TSO, 2, 100,
                                                        config=cfg),
                 id="estimate_non_manifestation"),
    pytest.param(executor_module, _categorical,
                 lambda cfg: run_canonical_bug("TSO", 2, 100, config=cfg),
                 id="run_canonical_bug"),
    pytest.param(measurement_module, _window,
                 lambda cfg: measure_critical_windows("TSO", 2, 100,
                                                      config=cfg),
                 id="measure_critical_windows"),
    pytest.param(montecarlo_module, _bernoulli,
                 lambda cfg: monte_carlo_check([TSO], 2, 100, config=cfg),
                 id="monte_carlo_check"),
]


class TestKnobPropagation:
    @pytest.mark.parametrize("module, make_result, drive", ESTIMATORS)
    def test_every_knob_reaches_run_sharded(self, tmp_path, monkeypatch,
                                            module, make_result, drive):
        recorder = _EngineRecorder(make_result)
        monkeypatch.setattr(module, "run_sharded", recorder)
        config = _probe_config(tmp_path)
        drive(config)
        _assert_engine_saw_probe(recorder.only_call, config)

    def test_backend_selects_the_joined_kernel(self, tmp_path, monkeypatch):
        expected = {"scalar": _disjointness_scalar_trial,
                    "vectorized": _disjointness_batch_trial,
                    "fused": _disjointness_fused_trial}
        for backend, func in expected.items():
            recorder = _EngineRecorder(_bernoulli)
            monkeypatch.setattr(montecarlo_module, "run_sharded", recorder)
            estimate_non_manifestation(
                TSO, 2, 100, config=_probe_config(tmp_path, backend=backend))
            batch_trial = recorder.only_call["kernel"].keywords["batch_trial"]
            assert batch_trial.func is func

    def test_backend_selects_the_machine_kernel(self, tmp_path, monkeypatch):
        for backend, func in [
            ("scalar", executor_module._canonical_bug_shard),
            ("vectorized", executor_module._canonical_bug_vectorized_shard),
        ]:
            recorder = _EngineRecorder(_categorical)
            monkeypatch.setattr(executor_module, "run_sharded", recorder)
            run_canonical_bug("TSO", 2, 100,
                              config=_probe_config(tmp_path, backend=backend))
            assert recorder.only_call["kernel"].func is func

    def test_machine_drivers_reject_fused(self, tmp_path):
        config = _probe_config(tmp_path, backend="fused")
        with pytest.raises(ValueError, match="fused"):
            run_canonical_bug("TSO", 2, 100, config=config)
        with pytest.raises(ValueError, match="fused"):
            measure_critical_windows("TSO", 2, 100, config=config)

    def test_keyword_alias_overrides_config_in_estimator(self, tmp_path,
                                                         monkeypatch):
        recorder = _EngineRecorder(_bernoulli)
        monkeypatch.setattr(montecarlo_module, "run_sharded", recorder)
        config = _probe_config(tmp_path)
        run_event_trials(lambda s, b: b, 100, config=config, retries=7,
                         transport="shm")
        call = recorder.only_call
        assert call["retries"] == 7
        assert call["transport"] == "shm"
        assert call["timeout"] == config.timeout  # untouched knobs survive

    SWEEPS = [
        pytest.param(lambda cfg: thread_sweep([2, 3], config=cfg),
                     id="thread_sweep"),
        pytest.param(lambda cfg: settle_sweep([0.25, 0.5], config=cfg),
                     id="settle_sweep"),
        pytest.param(lambda cfg: store_probability_sweep([0.25, 0.5],
                                                         config=cfg),
                     id="store_probability_sweep"),
        pytest.param(lambda cfg: critical_section_sweep([2, 3], config=cfg),
                     id="critical_section_sweep"),
        pytest.param(lambda cfg: beta_sweep([0.25, 0.5], config=cfg),
                     id="beta_sweep"),
    ]

    @pytest.mark.parametrize("drive", SWEEPS)
    def test_sweep_knobs_reach_parallel_map(self, tmp_path, monkeypatch,
                                            drive):
        calls = []

        def fake_map(function, items, workers=1, *, retries=0, timeout=None,
                     observer=None, config=None):
            calls.append({"workers": workers, "retries": retries,
                          "timeout": timeout, "observer": observer})
            return [function(item) for item in items]

        monkeypatch.setattr(sweeps_module, "parallel_map", fake_map)
        config = _probe_config(tmp_path)
        rows = drive(config)
        assert len(rows) == 2
        assert calls == [{"workers": 2, "retries": 1, "timeout": 30.0,
                          "observer": calls[0]["observer"]}]
        assert calls[0]["observer"] is not None


class TestRunShardedConfig:
    """``run_sharded``/``parallel_map`` accept the config directly."""

    def test_run_sharded_honours_config(self, tmp_path):
        from repro.stats.parallel import ShardPlan, run_sharded

        plan = ShardPlan(40, 4, seed=11)
        direct = run_sharded(_shard_sum, plan)
        via_config = run_sharded(
            _shard_sum, plan,
            config=RunConfig(retries=1, transport="pickle",
                             trace=tmp_path / "rs.jsonl"))
        assert via_config == direct
        assert (tmp_path / "rs.jsonl").exists()  # config-derived observer

    def test_run_sharded_config_validation_applies(self):
        from repro.stats.parallel import ShardPlan, run_sharded

        with pytest.raises(ValueError):
            run_sharded(_shard_sum, ShardPlan(10, 2, seed=0),
                        config=RunConfig(transport="bogus"))

    def test_parallel_map_honours_config(self, tmp_path):
        from repro.stats.parallel import parallel_map

        result = parallel_map(
            _double, [1, 2, 3],
            config=RunConfig(retries=1, trace=tmp_path / "pm.jsonl"))
        assert result == [2, 4, 6]
        assert (tmp_path / "pm.jsonl").exists()


def _shard_sum(source, shard_trials):
    return shard_trials


def _double(value):
    return 2 * value


# ----------------------------------------------------------------------
# Golden byte-identity across the full engine matrix
# ----------------------------------------------------------------------

#: Fixed-seed merged numbers and v2 plan keys produced by the
#: pre-RunConfig code (estimate_non_manifestation(TSO, 2, 4000, seed=7,
#: shards=4) / run_canonical_bug("TSO", 2, 400, seed=7, shards=4)).
#: The refactor must keep every one byte-identical.
JOINED_GOLDEN = {
    ("scalar", "spawn", "pickle"): (521, "f8af8f7c11a170e3"),
    ("vectorized", "spawn", "pickle"): (541, "ced60950df46032b"),
    ("fused", "spawn", "pickle"): (541, "29bb05b241367824"),
    ("scalar", "spawn", "shm"): (521, "f8af8f7c11a170e3"),
    ("vectorized", "spawn", "shm"): (541, "ced60950df46032b"),
    ("fused", "spawn", "shm"): (541, "29bb05b241367824"),
    ("scalar", "philox", "pickle"): (495, "86fae0431d414848"),
    ("vectorized", "philox", "pickle"): (554, "92de2eea886fc987"),
    ("fused", "philox", "pickle"): (554, "68f4bf6e53bb762f"),
    ("scalar", "philox", "shm"): (495, "86fae0431d414848"),
    ("vectorized", "philox", "shm"): (554, "92de2eea886fc987"),
    ("fused", "philox", "shm"): (554, "68f4bf6e53bb762f"),
}

MACHINE_GOLDEN = {
    ("scalar", "spawn"): (358, "1dcbef340ac3c146"),
    ("vectorized", "spawn"): (352, "590646dfb9daa17c"),
    ("scalar", "philox"): (354, "bdcd567da5ca59e0"),
    ("vectorized", "philox"): (347, "2b6a693db3c76aa1"),
}


class TestGoldenByteIdentity:
    @pytest.mark.parametrize("backend, rng_plan, transport",
                             sorted(JOINED_GOLDEN))
    def test_joined_matrix(self, tmp_path, backend, rng_plan, transport):
        successes, key = JOINED_GOLDEN[(backend, rng_plan, transport)]
        manifest = tmp_path / "run.json"
        config = RunConfig(shards=4, backend=backend, rng_plan=rng_plan,
                           transport=transport, manifest=manifest)
        result = estimate_non_manifestation(TSO, 2, 4000, seed=7,
                                            config=config)
        assert result.successes == successes
        assert result.trials == 4000
        assert load_manifest(manifest)["runs"][0]["plan"]["key"] == key

    @pytest.mark.parametrize("backend, rng_plan", sorted(MACHINE_GOLDEN))
    def test_machine_matrix(self, tmp_path, backend, rng_plan):
        manifestations, key = MACHINE_GOLDEN[(backend, rng_plan)]
        manifest = tmp_path / "run.json"
        config = RunConfig(shards=4, backend=backend, rng_plan=rng_plan,
                           manifest=manifest)
        result = run_canonical_bug("TSO", threads=2, trials=400, seed=7,
                                   config=config)
        assert result.manifestations == manifestations
        assert result.trials == 400
        assert load_manifest(manifest)["runs"][0]["plan"]["key"] == key

    def test_config_and_alias_calls_are_identical(self):
        via_alias = estimate_non_manifestation(SC, 2, 2000, seed=3, shards=4,
                                               rng_plan="philox")
        via_config = estimate_non_manifestation(
            SC, 2, 2000, seed=3,
            config=RunConfig(shards=4, rng_plan="philox"))
        assert via_alias.successes == via_config.successes
