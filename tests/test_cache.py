"""The content-addressed shard result cache (:mod:`repro.cache`).

Three layers of contract:

* **The store itself** — roundtrip, integrity (a torn or tampered entry
  is a miss, never a wrong number), atomic layout, LRU eviction under a
  byte cap, the in-process memo tier, and the maintenance surface the
  ``repro cache`` CLI drives (``clear``/``verify``/``stats``).
* **Key injectivity** — the v2 :func:`plan_key` and
  :func:`shard_entry_key` must separate *every* axis a shard's bytes
  depend on: kernel fingerprint (and hence backend), trials, shards,
  seed, label, shard index.  Property-tested with hypothesis.
* **Engine integration** — ``cache=`` makes warm re-runs fetch their
  shards (hit counters prove it) while staying **bit-identical** to
  both the cold run and an uncached run, at 1 and 4 workers; torn
  checkpoint journals surface as ``run.journal_skipped`` plus a stderr
  warning instead of disappearing silently.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheStats,
    ShardStore,
    default_cache_root,
    resolve_cache,
    shard_entry_key,
)
from repro.stats import run_bernoulli_trials
from repro.stats.checkpoint import ShardCheckpoint, kernel_fingerprint, plan_key
from repro.stats.parallel import ShardPlan, run_sharded
from repro.stats.rng import RNG_PLANS


def _coin(source):
    return source.bernoulli(0.5)


def _heads_biased(source):
    return source.bernoulli(0.9)


def _sum_kernel(source, batch):
    return sum(1 for _ in range(batch) if source.bernoulli(0.5))


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------


class TestShardStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ShardStore(tmp_path / "c")
        assert store.get("a" * 32) is None
        store.put("a" * 32, {"shard": 3, "value": (1, 2.5, "x")})
        assert store.get("a" * 32) == {"shard": 3, "value": (1, 2.5, "x")}
        stats = store.stats()
        assert isinstance(stats, CacheStats)
        assert (stats.entries, stats.hits, stats.misses, stats.stored) == (1, 1, 1, 1)

    def test_entries_live_in_sharded_directories(self, tmp_path):
        store = ShardStore(tmp_path)
        key = shard_entry_key("deadbeef", 0, 100)
        store.put(key, 1)
        assert (tmp_path / key[:2] / f"{key}.pkl").is_file()

    def test_disk_hit_survives_a_new_store_instance(self, tmp_path):
        ShardStore(tmp_path).put("b" * 32, [1, 2, 3])
        assert ShardStore(tmp_path).get("b" * 32) == [1, 2, 3]

    @pytest.mark.parametrize("vandalise", [
        lambda raw: raw[:-3],                          # torn payload
        lambda raw: raw.replace(b"repro-cache:1:", b"repro-cache:9:"),
        lambda raw: b"not an entry at all",
        lambda raw: raw.replace(b":", b";", 1),        # malformed header
    ])
    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path, vandalise):
        store = ShardStore(tmp_path, memo_entries=0)
        store.put("c" * 32, 42)
        path = tmp_path / "cc" / ("c" * 32 + ".pkl")
        path.write_bytes(vandalise(path.read_bytes()))
        assert store.get("c" * 32, default="MISS") == "MISS"
        assert not path.exists()

    def test_entry_under_wrong_filename_is_corrupt(self, tmp_path):
        store = ShardStore(tmp_path, memo_entries=0)
        store.put("d" * 32, 42)
        src = tmp_path / "dd" / ("d" * 32 + ".pkl")
        dst = tmp_path / "ee" / ("e" * 32 + ".pkl")
        dst.parent.mkdir()
        dst.write_bytes(src.read_bytes())   # key inside disagrees with name
        assert store.get("e" * 32) is None

    def test_verify_reports_but_keeps_corrupt_entries(self, tmp_path):
        store = ShardStore(tmp_path, memo_entries=0)
        store.put("a" * 32, 1)
        store.put("b" * 32, 2)
        path = tmp_path / "bb" / ("b" * 32 + ".pkl")
        path.write_bytes(path.read_bytes()[:-1])
        ok, corrupt = store.verify()
        assert ok == 1
        assert corrupt == [path]
        assert path.exists()    # verify never deletes

    def test_clear_removes_everything(self, tmp_path):
        store = ShardStore(tmp_path)
        for i in range(5):
            store.put(f"{i:032d}", i)
        assert store.clear() == 5
        assert store.stats().entries == 0
        assert store.get("0" * 32) is None  # memo tier cleared too

    def test_lru_evicts_oldest_first_and_get_bumps_recency(self, tmp_path):
        payload = b"x" * 256
        probe = ShardStore(tmp_path / "probe", max_bytes=None)
        probe.put("p" * 32, payload)
        entry_size = (tmp_path / "probe" / "pp" / ("p" * 32 + ".pkl")).stat().st_size
        store = ShardStore(tmp_path / "main", max_bytes=3 * entry_size,
                           memo_entries=0)
        keys = [f"{i:032d}" for i in range(3)]
        import os as _os
        for t, key in enumerate(keys):
            store.put(key, payload)
            path = tmp_path / "main" / key[:2] / f"{key}.pkl"
            _os.utime(path, (1_000_000 + t, 1_000_000 + t))
        # Touch the oldest so the *middle* entry is now LRU.
        assert store.get(keys[0]) == payload
        evicted = store.put(f"{9:032d}", payload)
        assert evicted >= 1
        assert store.get(keys[1]) is None          # evicted
        assert store.get(keys[0]) == payload       # recency saved it
        assert store.evictions == evicted

    def test_memo_tier_serves_hits_without_disk(self, tmp_path):
        store = ShardStore(tmp_path)
        store.put("f" * 32, "memoised")
        (tmp_path / "ff" / ("f" * 32 + ".pkl")).unlink()
        assert store.get("f" * 32) == "memoised"
        assert ShardStore(tmp_path).get("f" * 32) is None

    def test_memo_tier_is_capped(self, tmp_path):
        store = ShardStore(tmp_path, memo_entries=2)
        for i in range(4):
            store.put(f"{i:032d}", i)
        assert len(store._memo) == 2


class TestResolveCache:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_store_passes_through(self, tmp_path):
        store = ShardStore(tmp_path)
        assert resolve_cache(store) is store

    def test_auto_uses_env_root_and_registry_is_shared(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "auto"))
        assert default_cache_root() == tmp_path / "auto"
        first = resolve_cache("auto")
        assert first.root == tmp_path / "auto"
        assert resolve_cache(True) is first
        assert resolve_cache(str(tmp_path / "auto")) is first

    def test_path_becomes_root(self, tmp_path):
        assert resolve_cache(tmp_path / "explicit").root == tmp_path / "explicit"

    def test_garbage_is_rejected(self):
        with pytest.raises(TypeError, match="cache must be"):
            resolve_cache(3.14)


# ---------------------------------------------------------------------------
# Key injectivity
# ---------------------------------------------------------------------------

_labels = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="\n\r"),
    max_size=30,
)
_fingerprints = st.text(alphabet="0123456789abcdef", min_size=0, max_size=16)


class TestKeyInjectivity:
    @settings(max_examples=200, deadline=None)
    @given(
        a=st.tuples(st.integers(1, 10**7), st.integers(1, 512),
                    st.integers(0, 2**32), _labels, _fingerprints),
        b=st.tuples(st.integers(1, 10**7), st.integers(1, 512),
                    st.integers(0, 2**32), _labels, _fingerprints),
    )
    def test_plan_key_separates_every_axis(self, a, b):
        if a != b:
            assert plan_key(*a) != plan_key(*b)
        else:
            assert plan_key(*a) == plan_key(*b)

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.tuples(st.integers(1, 10**7), st.integers(1, 512),
                    st.integers(0, 2**32), _labels, _fingerprints,
                    st.sampled_from(RNG_PLANS)),
        b=st.tuples(st.integers(1, 10**7), st.integers(1, 512),
                    st.integers(0, 2**32), _labels, _fingerprints,
                    st.sampled_from(RNG_PLANS)),
    )
    def test_plan_key_separates_rng_plans_too(self, a, b):
        # The rng_plan axis joins the identity: same (trials, shards,
        # seed, label, fingerprint) under different plans must key apart,
        # or philox shards could resume a spawn journal.
        if a != b:
            assert plan_key(*a) != plan_key(*b)
        else:
            assert plan_key(*a) == plan_key(*b)

    def test_spawn_plan_keys_are_byte_compatible(self):
        # "spawn" contributes nothing to the payload: keys minted before
        # the rng_plan knob existed remain valid verbatim.
        assert (plan_key(1000, 8, 0, "thm62", "abc123")
                == plan_key(1000, 8, 0, "thm62", "abc123", "spawn"))
        assert (plan_key(1000, 8, 0, "thm62", "abc123")
                != plan_key(1000, 8, 0, "thm62", "abc123", "philox"))

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.tuples(st.text("0123456789abcdef", min_size=16, max_size=16),
                    st.integers(0, 511), st.integers(1, 10**6)),
        b=st.tuples(st.text("0123456789abcdef", min_size=16, max_size=16),
                    st.integers(0, 511), st.integers(1, 10**6)),
    )
    def test_shard_entry_key_separates_run_shard_and_trials(self, a, b):
        if a != b:
            assert shard_entry_key(*a) != shard_entry_key(*b)
        else:
            assert shard_entry_key(*a) == shard_entry_key(*b)

    def test_fingerprint_separates_kernels_end_to_end(self):
        keys = {
            plan_key(1000, 8, 0, "", kernel_fingerprint(kernel))
            for kernel in (_coin, _heads_biased, _sum_kernel)
        }
        assert len(keys) == 3

    def test_backends_get_distinct_fingerprints(self):
        from repro.core.manifestation import (
            _disjointness_batch_trial,
            _disjointness_scalar_trial,
        )
        assert (kernel_fingerprint(_disjointness_batch_trial)
                != kernel_fingerprint(_disjointness_scalar_trial))


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_cold_warm_uncached_are_bit_identical(self, tmp_path, workers):
        store = ShardStore(tmp_path / "cache")
        kwargs = dict(trials=8_000, seed=42, shards=8, workers=workers)
        uncached = run_bernoulli_trials(_coin, **kwargs)
        cold = run_bernoulli_trials(_coin, cache=store, **kwargs)
        assert store.stats().hits == 0
        assert store.stats().stored == 8
        warm = run_bernoulli_trials(_coin, cache=store, **kwargs)
        assert store.stats().hits == 8
        assert cold == uncached
        assert warm == uncached     # bit-identical, not statistically close

    def test_overlapping_runs_share_entries_but_kernels_do_not(self, tmp_path):
        store = ShardStore(tmp_path)
        run_bernoulli_trials(_coin, 4_000, seed=7, shards=8, cache=store)
        run_bernoulli_trials(_heads_biased, 4_000, seed=7, shards=8, cache=store)
        assert store.stats().hits == 0      # different fingerprints, no reuse
        assert store.stats().entries == 16

    def test_cache_hits_are_journaled_back_into_the_checkpoint(self, tmp_path):
        store = ShardStore(tmp_path / "cache")
        plan = ShardPlan(trials=4_000, shards=8, seed=5)
        first = run_sharded(_sum_kernel, plan, cache=store)
        journal_path = tmp_path / "run.jsonl"
        second = run_sharded(_sum_kernel, plan, cache=store,
                             checkpoint=journal_path)
        assert second == first
        journal = ShardCheckpoint.for_plan(
            journal_path, plan, fingerprint=kernel_fingerprint(_sum_kernel))
        assert len(journal.load()) == plan.shards   # hits written through

    def test_manifest_and_metrics_record_cache_traffic(self, tmp_path):
        store = ShardStore(tmp_path / "cache")
        kwargs = dict(trials=4_000, seed=3, shards=8, cache=store)
        run_bernoulli_trials(_coin, manifest=tmp_path / "cold.json", **kwargs)
        run_bernoulli_trials(_coin, manifest=tmp_path / "warm.json", **kwargs)
        cold = json.loads((tmp_path / "cold.json").read_text())["runs"][0]
        warm = json.loads((tmp_path / "warm.json").read_text())["runs"][0]
        assert cold["metrics"]["run.cache_stored"]["value"] == 8
        assert cold["metrics"]["run.cache_hits"]["value"] == 0
        assert warm["metrics"]["run.cache_hits"]["value"] == 8
        assert all(s["cached"] and s["resumed"] for s in warm["shards"])
        assert all(not s["cached"] for s in cold["shards"])
        assert warm["result"] == cold["result"]

    def test_torn_journal_lines_are_surfaced(self, tmp_path, capsys):
        kwargs = dict(trials=4_000, seed=11, shards=8)
        path = tmp_path / "run.jsonl"
        baseline = run_bernoulli_trials(_coin, checkpoint=path, **kwargs)
        lines = path.read_text().splitlines()
        torn = lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]
        path.write_text("\n".join(torn) + "\n")
        capsys.readouterr()
        resumed = run_bernoulli_trials(_coin, checkpoint=path,
                                       manifest=tmp_path / "m.json", **kwargs)
        assert resumed == baseline      # torn shard re-executed
        assert "skipp" in capsys.readouterr().err
        record = json.loads((tmp_path / "m.json").read_text())["runs"][0]
        assert record["metrics"]["run.journal_skipped"]["value"] == 1
