"""Tests for repro.litmus.atomicity: non-atomic store propagation."""

from __future__ import annotations

import pytest

from repro.core import SC, TSO, WO
from repro.errors import LitmusError
from repro.litmus import enumerate_outcomes, enumerate_outcomes_non_atomic, get_test
from repro.sim import Load, Store, ThreadProgram


def project(outcomes, reference):
    keys = {key for key, _ in reference}
    return {
        tuple(sorted((key, value) for key, value in outcome if key in keys))
        for outcome in outcomes
    }


def relaxed_reachable(test, model) -> bool:
    outcomes = enumerate_outcomes_non_atomic(list(test.programs), model)
    return test.relaxed_outcome in project(outcomes, test.relaxed_outcome)


class TestBasics:
    def test_single_thread_sees_own_writes(self, source):
        program = ThreadProgram("T0", (Store("x", value=4), Load("r1", "x")))
        outcomes = enumerate_outcomes_non_atomic([program], SC)
        assert outcomes == {(("T0:r1", 4),)}

    def test_initial_memory(self):
        program = ThreadProgram("T0", (Load("r1", "flag"),))
        outcomes = enumerate_outcomes_non_atomic([program], SC, initial_memory={"flag": 2})
        assert outcomes == {(("T0:r1", 2),)}

    def test_remote_write_may_or_may_not_be_seen(self):
        programs = [
            ThreadProgram("T0", (Store("x", value=1),)),
            ThreadProgram("T1", (Load("r1", "x"),)),
        ]
        outcomes = enumerate_outcomes_non_atomic(programs, SC)
        assert outcomes == {(("T1:r1", 0),), (("T1:r1", 1),)}

    def test_per_writer_fifo(self):
        """A reader never sees a writer's second store before its first."""
        programs = [
            ThreadProgram("T0", (Store("x", value=1), Store("y", value=1))),
            ThreadProgram("T1", (Load("r1", "y"), Load("r2", "x"))),
        ]
        outcomes = enumerate_outcomes_non_atomic(programs, SC)
        assert (("T1:r1", 1), ("T1:r2", 0)) not in outcomes

    def test_empty_program_list_rejected(self):
        with pytest.raises(LitmusError):
            enumerate_outcomes_non_atomic([], SC)


class TestScopingCheck:
    """E15: non-atomicity is an orthogonal risk axis."""

    def test_sb_allowed_without_any_reordering(self):
        assert relaxed_reachable(get_test("SB"), SC)

    def test_iriw_allowed_without_any_reordering(self):
        assert relaxed_reachable(get_test("IRIW"), SC)

    def test_wrc_allowed_without_any_reordering(self):
        """Causality is also a multi-copy property: independent channels
        let T2 see the republished flag before the original write."""
        assert relaxed_reachable(get_test("WRC"), SC)

    def test_mp_stays_forbidden_under_sc(self):
        """Per-writer FIFO preserves the message-passing idiom."""
        assert not relaxed_reachable(get_test("MP"), SC)

    def test_lb_stays_forbidden_under_sc(self):
        assert not relaxed_reachable(get_test("LB"), SC)

    def test_corr_stays_forbidden_under_sc(self):
        assert not relaxed_reachable(get_test("CoRR"), SC)

    def test_mp_allowed_once_reordering_added(self):
        """Composition: WO's reordering reopens MP even with FIFO channels."""
        assert relaxed_reachable(get_test("MP"), WO)

    def test_non_atomic_superset_of_atomic(self):
        """Every atomic-memory outcome is reachable non-atomically too
        (propagate every store immediately)."""
        for name in ("SB", "MP", "LB"):
            test = get_test(name)
            atomic = enumerate_outcomes(list(test.programs), TSO)
            non_atomic = enumerate_outcomes_non_atomic(list(test.programs), TSO)
            keys = {key for key, _ in next(iter(atomic))}
            assert project(atomic, tuple((key, 0) for key in keys)) <= project(
                non_atomic, tuple((key, 0) for key in keys)
            ), name


class TestFenceDrain:
    """A full fence drains the thread's *outgoing* propagation channels:
    it may only execute once every other thread has received all of this
    thread's earlier stores.  (It always ordered the thread's own view;
    without the drain it was a no-op toward other threads, and fully
    fenced SB stayed reachable under SC — fences could not restore SC on
    non-atomic memory.)
    """

    def test_fully_fenced_sb_forbidden_without_reordering(self):
        assert not relaxed_reachable(get_test("SB+FF"), SC)

    def test_unfenced_sb_still_reachable(self):
        """The drain must not over-restrict: without fences, delayed
        propagation still exposes the relaxed SB outcome under SC."""
        assert relaxed_reachable(get_test("SB"), SC)

    def test_fully_fenced_mp_stays_forbidden(self):
        assert not relaxed_reachable(get_test("MP+FF"), SC)

    def test_fences_only_restrict(self):
        """Fencing never adds outcomes: fenced SB's outcome set is a
        subset of unfenced SB's (projected onto the observed registers)."""
        sb, fenced = get_test("SB"), get_test("SB+FF")
        reference = sb.relaxed_outcome
        unfenced = project(
            enumerate_outcomes_non_atomic(list(sb.programs), SC), reference)
        drained = project(
            enumerate_outcomes_non_atomic(list(fenced.programs), SC),
            reference)
        assert drained <= unfenced
        assert drained < unfenced  # the relaxed outcome is gone
