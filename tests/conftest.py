"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import PAPER_MODELS, PSO, SC, TSO, WO
from repro.stats import RandomSource


@pytest.fixture
def source() -> RandomSource:
    """A fresh deterministic randomness source per test."""
    return RandomSource(2011)


@pytest.fixture(params=PAPER_MODELS, ids=lambda model: model.name)
def paper_model(request):
    """Parametrises a test over SC, TSO, PSO, WO."""
    return request.param


@pytest.fixture(params=(TSO, PSO), ids=lambda model: model.name)
def store_buffer_model(request):
    """Parametrises over the models with the trailing-run structure."""
    return request.param


@pytest.fixture(params=(SC, TSO, WO), ids=lambda model: model.name)
def theorem_41_model(request):
    """The three models Theorem 4.1 covers explicitly."""
    return request.param
