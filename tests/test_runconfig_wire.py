"""The ``RunConfig`` JSON wire format (``to_json_dict``/``from_json_dict``).

The service serialises configs across the HTTP boundary, so the wire
format carries the same guarantees as the record itself: every field
survives the round trip byte-identically, unknown fields fail loudly
(the "flag parsed but silently dropped" bug class must not reappear one
layer up), live objects and the ``UNSET`` sentinel can never leak onto
the wire, and partial payloads fold over a ``base`` config exactly the
way the service folds a request over the server default.
"""

from __future__ import annotations

import json
from dataclasses import fields, replace
from pathlib import Path

import pytest

from repro import RunConfig, UNSET
from repro.cache import ShardStore
from repro.stats.checkpoint import ShardCheckpoint

DISTINCT = RunConfig(
    workers=3,
    shards=7,
    retries=2,
    timeout=12.5,
    checkpoint="run.jsonl",
    fingerprint="deadbeef",
    cache="cache-dir",
    manifest="manifest.json",
    trace="trace.jsonl",
    progress=True,
    backend="vectorized",
    rng_plan="philox",
    transport="shm",
)


class TestRoundTrip:
    def test_every_field_survives_byte_identically(self):
        wire = DISTINCT.to_json_dict()
        rebuilt = RunConfig.from_json_dict(json.loads(json.dumps(wire)))
        assert rebuilt == DISTINCT
        # Byte-identity of the wire form itself, not just record equality.
        assert (json.dumps(rebuilt.to_json_dict(), sort_keys=True)
                == json.dumps(wire, sort_keys=True))

    def test_distinct_config_exercises_every_field(self):
        """The fixture must keep no field at its default, or the
        round-trip test silently weakens when a field is added."""
        defaults = RunConfig()
        for spec in fields(RunConfig):
            assert getattr(DISTINCT, spec.name) != getattr(defaults, spec.name)

    def test_default_config_round_trips(self):
        config = RunConfig()
        assert RunConfig.from_json_dict(config.to_json_dict()) == config

    def test_wire_dict_is_json_native(self):
        wire = DISTINCT.to_json_dict()
        assert set(wire) == {spec.name for spec in fields(RunConfig)}
        json.dumps(wire)  # every value JSON-serialisable

    def test_paths_become_strings(self):
        config = RunConfig(checkpoint=Path("a/run.jsonl"),
                           manifest=Path("m.json"), trace=Path("t.jsonl"))
        wire = config.to_json_dict()
        assert wire["checkpoint"] == str(Path("a/run.jsonl"))
        assert isinstance(wire["manifest"], str)
        assert isinstance(wire["trace"], str)


class TestRejection:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig.from_json_dict({"workerz": 4})

    def test_unknown_field_error_names_known_fields(self):
        with pytest.raises(ValueError, match="workers"):
            RunConfig.from_json_dict({"nope": 1})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="workers"):
            RunConfig.from_json_dict({"workers": "four"})

    def test_bool_rejected_where_int_expected(self):
        # bool subclasses int; the wire must not let True mean 1 worker.
        with pytest.raises(TypeError, match="workers"):
            RunConfig.from_json_dict({"workers": True})
        with pytest.raises(TypeError, match="retries"):
            RunConfig.from_json_dict({"retries": False})

    def test_invalid_knob_value_rejected_via_resolve(self):
        with pytest.raises(ValueError):
            RunConfig.from_json_dict({"shards": -1})
        with pytest.raises(ValueError):
            RunConfig.from_json_dict({"rng_plan": "mersenne"})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(TypeError, match="object"):
            RunConfig.from_json_dict(["workers", 4])


class TestUnsetAndLiveObjects:
    def test_unset_never_leaks_to_wire(self):
        # UNSET is not a constructible field value, but defend in depth:
        # a config smuggling the sentinel must fail to serialise.
        broken = replace(RunConfig(), fingerprint=UNSET)
        with pytest.raises(ValueError, match="UNSET"):
            broken.to_json_dict()

    def test_unset_not_accepted_from_wire(self):
        with pytest.raises(TypeError):
            RunConfig.from_json_dict({"fingerprint": UNSET})

    def test_live_checkpoint_not_wire_representable(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path / "run.jsonl", key="k" * 16)
        with pytest.raises(TypeError, match="checkpoint"):
            RunConfig(checkpoint=checkpoint).to_json_dict()

    def test_live_store_not_wire_representable(self, tmp_path):
        store = ShardStore(tmp_path)
        with pytest.raises(TypeError, match="cache"):
            RunConfig(cache=store).to_json_dict()

    def test_progress_callback_not_wire_representable(self):
        with pytest.raises(TypeError, match="progress"):
            RunConfig(progress=lambda snapshot: None).to_json_dict()


class TestBaseFolding:
    def test_omitted_keys_keep_base_values(self):
        base = RunConfig(workers=4, retries=3, rng_plan="philox")
        merged = RunConfig.from_json_dict({"workers": 2}, base=base)
        assert merged.workers == 2
        assert merged.retries == 3
        assert merged.rng_plan == "philox"

    def test_empty_payload_returns_base(self):
        base = RunConfig(workers=4)
        assert RunConfig.from_json_dict({}, base=base) == base

    def test_explicit_none_overrides_base(self):
        base = RunConfig(timeout=30.0)
        merged = RunConfig.from_json_dict({"timeout": None}, base=base)
        assert merged.timeout is None

    def test_default_base_is_default_config(self):
        assert RunConfig.from_json_dict({}) == RunConfig()
