"""Tests for the observability layer (:mod:`repro.obs`).

The contract under test is two-sided: observation must be *complete*
(every shard, retry, timeout and resume shows up in the metrics, the
manifest, and the trace) and *inert* (enabling any knob changes no
estimate — the engine's seed discipline is untouched).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    METRICS_CATALOGUE,
    ManifestError,
    MetricsRegistry,
    ProgressSnapshot,
    RunObserver,
    ShardEvent,
    Tracer,
    estimate_eta,
    format_progress,
    load_manifest,
    merge_registries,
    trimmed_mean,
    validate_manifest,
    write_manifest,
)
from repro.parallel import ScriptedFaults, ShardPlan, run_sharded
from repro.stats.montecarlo import run_bernoulli_trials


def _sum_kernel(source, shard_trials):
    """Module-level (picklable) shard kernel: sum of uniforms."""
    return sum(source.generator.random() for _ in range(shard_trials))


def _trial(source) -> bool:
    return source.generator.random() < 0.25


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("run.shard_retries", "attempts").inc(3)
        registry.gauge("run.trials_total", "trials").set(1000)
        histogram = registry.histogram("run.shard_seconds", "seconds")
        histogram.observe(0.5)
        histogram.observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["run.shard_retries"]["value"] == 3
        assert snapshot["run.trials_total"]["value"] == 1000
        assert snapshot["run.shard_seconds"]["count"] == 2
        assert snapshot["run.shard_seconds"]["sum"] == pytest.approx(2.0)

    def test_merge_is_deterministic_and_additive(self):
        # Two registries built in different orders — the merge of per-process
        # registries must not depend on which process reported first.
        left = MetricsRegistry()
        left.counter("run.shard_retries", "attempts").inc(2)
        left.histogram("run.shard_seconds", "seconds").observe(1.0)
        right = MetricsRegistry()
        right.histogram("run.shard_seconds", "seconds").observe(2.0)
        right.counter("run.shard_retries", "attempts").inc(1)

        ab = merge_registries([left, right]).snapshot()
        ba = merge_registries([right, left]).snapshot()
        assert ab["run.shard_retries"]["value"] == 3
        assert ba["run.shard_retries"]["value"] == 3
        assert ab["run.shard_seconds"]["count"] == ba["run.shard_seconds"]["count"] == 2
        assert list(ab) == list(ba)  # sorted snapshot order

    def test_catalogue_covers_observer_metrics(self):
        observer = RunObserver(progress=lambda s: None)
        observer.run_started(trials=10, shards=2, seed=0, workers=1)
        observer.shard_finished(ShardEvent(shard=0, trials=5, seconds=0.1,
                                           attempts=1, worker=1))
        observer.shard_finished(ShardEvent(shard=1, trials=5, seconds=0.1,
                                           attempts=1, worker=1))
        for name in observer.final_metrics().snapshot():
            assert name in METRICS_CATALOGUE, f"{name} missing from catalogue"

    def test_trimmed_mean(self):
        assert trimmed_mean([1.0]) == 1.0
        # Outlier on each end is dropped at trim=0.2 with 5+ samples.
        assert trimmed_mean([100.0, 1.0, 1.0, 1.0, 0.0]) == 1.0


class TestTrace:
    def test_span_nesting_depths(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("run"):
                with tracer.span("shards"):
                    with tracer.span("shard", shard=3):
                        pass
                with tracer.span("merge"):
                    pass
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert by_name["run"]["depth"] == 0
        assert by_name["shards"]["depth"] == by_name["merge"]["depth"] == 1
        assert by_name["shard"]["depth"] == 2
        assert by_name["shard"]["parent"] == "shards"
        assert by_name["shard"]["attributes"] == {"shard": 3}
        # Children close before parents; durations nest accordingly.
        assert by_name["shard"]["duration"] <= by_name["run"]["duration"]

    def test_close_ends_open_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(path)
        tracer.start_span("run")
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["name"] for record in records] == ["run"]


class TestProgress:
    def test_eta_uses_trimmed_mean_over_workers(self):
        eta = estimate_eta([1.0, 1.0, 1.0, 1.0, 100.0], remaining_shards=4,
                           workers=2)
        assert eta == pytest.approx(2.0)

    def test_eta_none_before_first_shard(self):
        assert estimate_eta([], remaining_shards=8) is None

    def test_format_progress_line(self):
        snapshot = ProgressSnapshot(
            done_shards=5, total_shards=16, done_trials=93_750,
            total_trials=300_000, elapsed_seconds=2.05,
            trials_per_second=45_678.0, eta_seconds=3.21,
        )
        line = format_progress(snapshot)
        assert "shards 5/16" in line
        assert "93,750/300,000" in line
        assert "45,678 trials/s" in line
        assert "ETA 3.2s" in line


class TestManifest:
    def _observed_record(self, tmp_path, **options):
        observer = RunObserver(manifest=tmp_path / "m.json")
        run_sharded(_sum_kernel, ShardPlan(1000, 8, 11), workers=1,
                    observer=observer, **options)
        return observer.finish()

    def test_round_trip_write_validate_load(self, tmp_path):
        record = self._observed_record(tmp_path)
        document = load_manifest(tmp_path / "m.json")  # validates internally
        assert document["runs"][0]["plan"] == record["plan"]
        assert len(document["runs"][0]["shards"]) == 8
        assert sum(shard["trials"] for shard in document["runs"][0]["shards"]) == 1000

    def test_appends_runs_atomically(self, tmp_path):
        self._observed_record(tmp_path)
        self._observed_record(tmp_path)
        document = load_manifest(tmp_path / "m.json")
        assert len(document["runs"]) == 2
        assert not list(tmp_path.glob("*.tmp*"))  # no temp droppings

    def test_rejects_torn_or_foreign_files(self, tmp_path):
        target = tmp_path / "m.json"
        target.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestError):
            load_manifest(target)
        with pytest.raises(ManifestError):
            write_manifest(target, {})  # refuses to clobber the broken file

    def test_validation_catches_trial_drift(self, tmp_path):
        record = self._observed_record(tmp_path)
        document = load_manifest(tmp_path / "m.json")
        document["runs"][0]["shards"][0]["trials"] += 1
        with pytest.raises(ManifestError, match="sum"):
            validate_manifest(document)
        assert record["plan"]["trials"] == 1000

    def test_injected_retries_land_in_ledger(self, tmp_path):
        """Regression: ScriptedFaults retries must appear in the manifest."""
        observer = RunObserver(manifest=tmp_path / "m.json")
        faults = ScriptedFaults(failures={2: 1, 5: 1})
        run_sharded(_sum_kernel, ShardPlan(1000, 8, 11), workers=1,
                    retries=2, fault_injector=faults, observer=observer)
        record = observer.finish()
        ledger = record["retry_ledger"]
        assert [(entry["shard"], entry["kind"]) for entry in ledger] == [
            (2, "error"), (5, "error"),
        ]
        assert record["metrics"]["run.shard_retries"]["value"] == 2
        retried = {shard["shard"]: shard["attempts"]
                   for shard in record["shards"]}
        assert retried[2] == 2 and retried[5] == 2 and retried[0] == 1

    def test_checkpoint_resume_recorded_as_lineage(self, tmp_path):
        journal = tmp_path / "ckpt.jsonl"
        run_sharded(_sum_kernel, ShardPlan(1000, 8, 11), workers=1,
                    checkpoint=journal)
        # Keep half the journal, resume under observation.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n")
        record = self._observed_record(tmp_path, checkpoint=journal)
        assert record["execution"]["resumed_shards"] == 4
        assert record["execution"]["executed_shards"] == 4
        assert record["checkpoint"]["path"] == str(journal)
        resumed = [shard["shard"] for shard in record["shards"] if shard["resumed"]]
        assert len(resumed) == 4
        assert record["metrics"]["run.shards_resumed"]["value"] == 4


class TestObservationIsInert:
    def test_sharded_results_identical_under_observation(self, tmp_path):
        plain = run_sharded(_sum_kernel, ShardPlan(2000, 8, 3), workers=1)
        observer = RunObserver(manifest=tmp_path / "m.json",
                               trace=tmp_path / "t.jsonl",
                               progress=lambda snapshot: None)
        observed = run_sharded(_sum_kernel, ShardPlan(2000, 8, 3), workers=1,
                               observer=observer)
        observer.finish()
        assert observed == plain

    def test_estimator_knobs_do_not_change_numbers(self, tmp_path):
        plain = run_bernoulli_trials(_trial, 4000, seed=9, shards=8)
        observed = run_bernoulli_trials(
            _trial, 4000, seed=9, shards=8,
            manifest=tmp_path / "m.json", trace=tmp_path / "t.jsonl",
        )
        assert observed == plain
        document = load_manifest(tmp_path / "m.json")
        assert document["runs"][0]["result"]["successes"] == plain.successes

    def test_worker_invariance_with_observer(self, tmp_path):
        serial = run_sharded(_sum_kernel, ShardPlan(2000, 8, 3), workers=1)
        observer = RunObserver(manifest=tmp_path / "m.json")
        pooled = run_sharded(_sum_kernel, ShardPlan(2000, 8, 3), workers=2,
                             observer=observer)
        record = observer.finish()
        assert pooled == serial
        workers_seen = {shard["worker"] for shard in record["shards"]}
        assert all(pid != os.getpid() for pid in workers_seen)  # ran pooled


class TestLegacySerialPath:
    def test_legacy_run_manifest(self, tmp_path):
        result = run_bernoulli_trials(_trial, 3000, seed=5,
                                      manifest=tmp_path / "m.json")
        plain = run_bernoulli_trials(_trial, 3000, seed=5)
        assert result == plain  # the legacy stream derivation is untouched
        document = load_manifest(tmp_path / "m.json")
        run = document["runs"][0]
        assert run["mode"] == "serial-legacy"
        assert len(run["shards"]) == 1
        assert run["shards"][0]["trials"] == 3000
        assert run["shards"][0]["worker"] == os.getpid()


class TestObserverLifecycle:
    def test_from_options_returns_none_when_all_off(self):
        assert RunObserver.from_options() is None
        assert RunObserver.from_options(progress=False) is None
        assert RunObserver.from_options(progress=True) is not None

    def test_progress_sink_sees_every_shard(self):
        snapshots: list[ProgressSnapshot] = []
        observer = RunObserver(progress=snapshots.append)
        run_sharded(_sum_kernel, ShardPlan(1000, 8, 11), workers=1,
                    observer=observer)
        observer.finish()
        assert [snapshot.done_shards for snapshot in snapshots] == list(range(1, 9))
        assert snapshots[-1].done_trials == 1000
        assert snapshots[-1].eta_seconds == pytest.approx(0.0)
