"""Tests for repro.litmus.explore and repro.litmus.robustness.

The exploration engine's contracts: exhaustive mode reproduces the
enumerator bit for bit (and E11's allowed/forbidden matrix with it),
pseudorandom tables depend only on ``(seed, shards, rng_plan)``, the
content-addressed cache serves warm grids without executing anything,
and the robustness analyzer's SC-diff matches the literature pins.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import ALL_PAIRS, PAPER_MODELS, PSO, SC, TSO, WO, MemoryModel
from repro.core.instructions import LD, ST
from repro.errors import LitmusError
from repro.litmus import (
    ALL_TESTS,
    LitmusTest,
    OutcomeFrequencies,
    assert_convergence,
    assert_frequencies_equivalent,
    check_convergence,
    classify_robustness,
    enumerate_outcomes,
    enumerator_fingerprint,
    explore_entry_key,
    explore_exhaustive,
    explore_random,
    get_test,
    program_digest,
    robustness_report,
)
from repro.runconfig import RunConfig
from repro.sim import Load, Store, ThreadProgram

CLASSICS = ("SB", "MP", "LB", "IRIW")

#: SB with renamed threads: semantics identical, labels different.
RELABELED_SB = LitmusTest(
    name="SB-relabeled",
    description="Store buffering with renamed threads.",
    programs=(
        ThreadProgram("A", (Store("x", value=1), Load("r1", "y"))),
        ThreadProgram("B", (Store("y", value=1), Load("r2", "x"))),
    ),
    relaxed_outcome=(("A:r1", 0), ("B:r2", 0)),
    allowed={"SC": False, "TSO": True, "PSO": True, "WO": True},
)


def _rename(outcome, mapping):
    return tuple(sorted(
        (mapping.get(key.split(":")[0], key.split(":")[0])
         + ":" + key.split(":", 1)[1], value)
        for key, value in outcome
    ))


class TestExhaustive:
    def test_reproduces_enumerator_bit_identically(self):
        """E11 at engine level: the grid equals direct enumeration."""
        report = explore_exhaustive()
        for test in ALL_TESTS:
            for model in PAPER_MODELS:
                direct = frozenset(enumerate_outcomes(
                    list(test.programs), model, dict(test.initial_memory),
                    test.observed_locations))
                assert report.outcome_set(test.name, model.name) == direct

    def test_e11_matrix_via_exploration(self):
        report = explore_exhaustive()
        for test in ALL_TESTS:
            for model in PAPER_MODELS:
                reachable = test.relaxed_outcome in report.outcome_set(
                    test.name, model.name)
                assert reachable == test.allowed[model.name], (
                    test.name, model.name)

    def test_accepts_names_and_instances(self):
        by_name = explore_exhaustive(["SB"], ["TSO"])
        by_instance = explore_exhaustive([get_test("SB")], [TSO])
        assert by_name.to_json_dict() == by_instance.to_json_dict()

    def test_empty_grid_rejected(self):
        with pytest.raises(LitmusError):
            explore_exhaustive([], ["TSO"])
        with pytest.raises(LitmusError):
            explore_exhaustive(["SB"], [])

    def test_duplicate_grid_point_rejected(self):
        with pytest.raises(LitmusError):
            explore_exhaustive(["SB", "SB"], ["TSO"])

    def test_unknown_grid_point_raises(self):
        report = explore_exhaustive(["SB"], ["TSO"])
        with pytest.raises(KeyError):
            report.outcome_set("SB", "WO")

    def test_outcome_sets_invariant_under_thread_relabeling(self):
        report = explore_exhaustive([get_test("SB"), RELABELED_SB],
                                    models=None)
        mapping = {"T0": "A", "T1": "B"}
        for model in PAPER_MODELS:
            original = report.outcome_set("SB", model.name)
            relabeled = report.outcome_set("SB-relabeled", model.name)
            assert {_rename(outcome, mapping) for outcome in original} \
                == set(relabeled)

    def test_outcome_sets_invariant_under_thread_order(self):
        sb = get_test("SB")
        swapped = dataclasses.replace(
            sb, name="SB-swapped", programs=tuple(reversed(sb.programs)))
        report = explore_exhaustive([sb, swapped], ["TSO"])
        assert report.outcome_set("SB", "TSO") \
            == report.outcome_set("SB-swapped", "TSO")


class TestExhaustiveCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        config = RunConfig(cache=str(tmp_path / "store"))
        cold = explore_exhaustive(CLASSICS, config=config)
        assert (cold.cache_hits, cold.cache_misses) == (0, 16)
        assert cold.cache_stored == 16
        warm = explore_exhaustive(CLASSICS, config=config)
        assert (warm.cache_hits, warm.cache_misses) == (16, 0)
        assert warm.cache_stored == 0
        assert all(result.cached for result in warm.results)
        assert warm.to_json_dict() == cold.to_json_dict()

    def test_warm_manifest_zero_executed_shards(self, tmp_path):
        from repro.obs import load_manifest

        manifest = tmp_path / "m.json"
        config = RunConfig(cache=str(tmp_path / "store"),
                           manifest=str(manifest))
        explore_exhaustive(CLASSICS, config=config)
        explore_exhaustive(CLASSICS, config=config)
        runs = load_manifest(str(manifest))["runs"]
        assert len(runs) == 2
        assert runs[1]["execution"]["executed_shards"] == 0
        assert runs[1]["metrics"]["run.cache_hits"]["value"] == 16
        assert runs[0]["result"] == runs[1]["result"]
        assert runs[1]["metrics"]["explore.grid_points"]["value"] == 16

    def test_key_ignores_registry_name_and_description(self):
        sb = get_test("SB")
        renamed = dataclasses.replace(sb, name="SB-renamed",
                                      description="same program, new prose")
        assert program_digest(renamed) == program_digest(sb)

    def test_digest_tracks_program_content(self):
        sb = get_test("SB")
        shifted = dataclasses.replace(sb, initial_memory={"x": 7})
        assert program_digest(shifted) != program_digest(sb)
        assert program_digest(RELABELED_SB) != program_digest(sb)

    def test_entry_key_splits_models_and_fingerprint(self):
        digest = program_digest(get_test("SB"))
        fingerprint = enumerator_fingerprint()
        tso = explore_entry_key(digest, "TSO", fingerprint)
        assert tso == explore_entry_key(digest, "TSO", fingerprint)
        assert tso == explore_entry_key(digest, TSO, fingerprint)
        assert tso != explore_entry_key(digest, "PSO", fingerprint)
        assert tso != explore_entry_key(digest, "TSO", "0" * 16)

    def test_entry_key_is_semantic_not_nominal(self):
        """Two same-named models with different semantics never collide;
        two models with the same semantics share a key whatever they are
        called (the v2 key folds :func:`model_digest`, not the name)."""
        digest = program_digest(get_test("SB"))
        fingerprint = enumerator_fingerprint()
        fake_tso = MemoryModel("TSO", ALL_PAIRS)
        assert explore_entry_key(digest, fake_tso, fingerprint) \
            != explore_entry_key(digest, TSO, fingerprint)
        renamed_tso = MemoryModel("house-model", [(ST, LD)],
                                  description="TSO wearing another name")
        assert explore_entry_key(digest, renamed_tso, fingerprint) \
            == explore_entry_key(digest, TSO, fingerprint)


class TestModelIdentityRegression:
    """The model-identity bug: models used to travel to workers by *name*
    (workers re-resolved ``get_model(model_name)``), so an ad-hoc
    :class:`MemoryModel` either crashed in child processes or — when it
    shadowed a registry name — silently ran with the registry model's
    semantics and shared its cache entries.  Models now ship by value
    and cache keys fold the semantic :func:`model_digest`.
    """

    def test_adhoc_model_shadowing_tso_keeps_its_own_semantics(self):
        # A WO-relaxation model wearing TSO's name: LB's relaxed outcome
        # is unreachable under real TSO but must be sampled here, and
        # every sampled outcome must stay inside the *ad-hoc* model's
        # enumerated set.  Pre-fix, workers resolved "TSO" from the
        # registry and the relaxed outcome never appeared.
        fake_tso = MemoryModel("TSO", ALL_PAIRS,
                               description="WO wearing TSO's name")
        lb = get_test("LB")
        table = explore_random(lb, fake_tso, 4_000, seed=11,
                               config=RunConfig(workers=2, shards=4))
        assert table.frequency(lb.relaxed_outcome) > 0
        report = check_convergence(table, test=lb, model=fake_tso)
        assert report.contained

    def test_unregistered_model_runs_in_worker_processes(self):
        # Pre-fix this crashed: child processes looked the name up in
        # the registry and "custom-wo" is not there.
        custom = MemoryModel("custom-wo", ALL_PAIRS)
        table = explore_random("SB", custom, 1_000, seed=3,
                               config=RunConfig(workers=2, shards=4))
        assert sum(count for _, count in table.counts) == 1_000
        assert check_convergence(table, test="SB", model=custom).contained

    def test_same_named_models_do_not_share_cache_entries(self, tmp_path):
        config = RunConfig(workers=2, cache=str(tmp_path / "store"))
        real = explore_exhaustive(["LB"], [TSO], config=config)
        assert real.cache_stored == 1
        fake = explore_exhaustive(
            [get_test("LB")], [MemoryModel("TSO", ALL_PAIRS)], config=config)
        # A warm store holding real TSO's outcome set must NOT serve the
        # same-named impostor; pre-fix the name-keyed entry matched.
        assert (fake.cache_hits, fake.cache_misses) == (0, 1)
        assert fake.outcome_set("LB", "TSO") != real.outcome_set("LB", "TSO")
        assert get_test("LB").relaxed_outcome in fake.outcome_set("LB", "TSO")

    def test_random_mode_splits_same_named_models(self, tmp_path):
        fake_tso = MemoryModel("TSO", ALL_PAIRS)
        config = RunConfig(shards=4, cache=str(tmp_path / "store"))
        real = explore_random("LB", "TSO", 2_000, seed=11, config=config)
        impostor = explore_random("LB", fake_tso, 2_000, seed=11,
                                  config=config)
        assert real.counts != impostor.counts
        lb = get_test("LB")
        assert real.frequency(lb.relaxed_outcome) == 0
        assert impostor.frequency(lb.relaxed_outcome) > 0


class TestRandomDeterminism:
    @pytest.mark.parametrize("rng_plan", ["spawn", "philox"])
    def test_identical_across_worker_counts(self, rng_plan):
        tables = [
            explore_random("SB", "TSO", 2_000, seed=11,
                           config=RunConfig(workers=workers, shards=4,
                                            rng_plan=rng_plan))
            for workers in (1, 2, 4)
        ]
        assert tables[0] == tables[1] == tables[2]
        assert sum(count for _, count in tables[0].counts) == 2_000

    def test_identical_across_transports(self):
        base = dict(workers=2, shards=4)
        auto = explore_random("MP", "PSO", 2_000, seed=5,
                              config=RunConfig(transport="auto", **base))
        pickled = explore_random("MP", "PSO", 2_000, seed=5,
                                 config=RunConfig(transport="pickle", **base))
        assert auto == pickled

    def test_rerun_reproducible(self):
        first = explore_random("LB", "WO", 1_500, seed=3,
                               config=RunConfig(shards=4))
        second = explore_random("LB", "WO", 1_500, seed=3,
                                config=RunConfig(shards=4))
        assert first == second

    def test_seed_and_plan_enter_identity(self):
        base = RunConfig(shards=4)
        table = explore_random("SB", "TSO", 1_500, seed=3, config=base)
        other_seed = explore_random("SB", "TSO", 1_500, seed=4, config=base)
        assert table.counts != other_seed.counts
        philox = explore_random("SB", "TSO", 1_500, seed=3,
                                config=RunConfig(shards=4,
                                                 rng_plan="philox"))
        assert philox.rng_plan == "philox"
        assert philox != table

    def test_cross_plan_tables_z_equivalent(self):
        spawn = explore_random("SB", "TSO", 6_000, seed=9,
                               config=RunConfig(shards=4))
        philox = explore_random("SB", "TSO", 6_000, seed=9,
                                config=RunConfig(shards=4,
                                                 rng_plan="philox"))
        assert_frequencies_equivalent(spawn, philox, confidence=0.9999)

    def test_shard_cache_serves_warm_run(self, tmp_path):
        config = RunConfig(shards=4, cache=str(tmp_path / "store"))
        cold = explore_random("SB", "TSO", 2_000, seed=7, config=config)
        warm = explore_random("SB", "TSO", 2_000, seed=7, config=config)
        assert cold == warm

    def test_rejects_non_positive_trials(self):
        with pytest.raises(LitmusError):
            explore_random("SB", "TSO", 0)


class TestConvergence:
    def test_sampled_frequencies_land_in_enumerated_set(self):
        for name in CLASSICS:
            table = explore_random(name, "TSO", 2_000, seed=1,
                                   config=RunConfig(shards=4))
            report = assert_convergence(table, require_full_support=True)
            assert report.converged
            assert report.coverage == 1.0

    def test_escaped_outcome_raises(self):
        bogus = (("T0:r1", 99), ("T1:r2", 99))
        table = OutcomeFrequencies(
            test="SB", model="TSO", trials=10, seed=0, shards=1,
            rng_plan="spawn", counts=((bogus, 10),))
        report = check_convergence(table)
        assert not report.contained
        assert bogus in report.escaped
        with pytest.raises(LitmusError):
            assert_convergence(table)

    def test_partial_support_reported_not_fatal(self):
        enumerated = frozenset(enumerate_outcomes(
            list(get_test("SB").programs), TSO, {}, ()))
        seen = next(iter(enumerated))
        table = OutcomeFrequencies(
            test="SB", model="TSO", trials=10, seed=0, shards=1,
            rng_plan="spawn", counts=((seen, 10),))
        report = assert_convergence(table, enumerated)
        assert report.contained and not report.converged
        assert report.coverage == pytest.approx(1 / len(enumerated))
        with pytest.raises(LitmusError):
            assert_convergence(table, enumerated, require_full_support=True)

    def test_frequency_table_helpers(self):
        table = explore_random("SB", "SC", 1_000, seed=2,
                               config=RunConfig(shards=4))
        assert sum(count for _, count in table.counts) == 1_000
        assert sum(table.frequency(outcome) for outcome in table.support) \
            == pytest.approx(1.0)
        payload = table.to_json_dict()
        assert payload["trials"] == 1_000
        assert sum(payload["counts"].values()) == 1_000

    def test_replace_rebuilds_count_cache(self):
        """``count()`` answers from a mapping built once in
        ``__post_init__``; a ``dataclasses.replace`` with new counts must
        rebuild it rather than alias the donor's cache."""
        outcome = (("T0:r1", 0), ("T1:r2", 0))
        table = OutcomeFrequencies(
            test="SB", model="TSO", trials=10, seed=0, shards=1,
            rng_plan="spawn", counts=((outcome, 10),))
        assert table.count(outcome) == 10
        other = (("T0:r1", 1), ("T1:r2", 1))
        replaced = dataclasses.replace(table, counts=((other, 10),))
        assert replaced.count(other) == 10
        assert replaced.count(outcome) == 0
        assert table.count(outcome) == 10


class TestRobustness:
    def test_classic_pins(self):
        assert not classify_robustness("SB", "TSO").robust
        assert classify_robustness("MP", "TSO").robust
        assert not classify_robustness("MP", "PSO").robust
        for model in (TSO, PSO, WO):
            assert classify_robustness("CoRR", model).robust

    def test_allowed_relaxed_outcome_witnesses_non_robustness(self):
        report = robustness_report()
        for test in ALL_TESTS:
            for model in (TSO, PSO, WO):
                verdict = next(v for v in report.verdicts
                               if v.test == test.name
                               and v.model == model.name)
                if test.allowed[model.name]:
                    assert not verdict.robust, (test.name, model.name)
                    assert test.relaxed_outcome in verdict.extra_outcomes
                if verdict.robust:
                    assert not test.allowed[model.name], (test.name,
                                                          model.name)

    def test_extra_outcomes_are_exactly_the_sc_diff(self):
        report = explore_exhaustive(["SB"], ["SC", "TSO"])
        verdict = classify_robustness("SB", "TSO")
        expected = (report.outcome_set("SB", "TSO")
                    - report.outcome_set("SB", "SC"))
        assert set(verdict.extra_outcomes) == expected
        assert "NON-ROBUST" in robustness_report(["SB"], ["TSO"]).rows()[0][
            "TSO"]

    def test_sc_filtered_from_model_list(self):
        report = robustness_report(["SB"], [SC, TSO])
        assert [v.model for v in report.verdicts] == ["TSO"]
        with pytest.raises(KeyError):
            report.robust("SB", "SC")

    def test_report_shares_exploration_cache(self, tmp_path):
        config = RunConfig(cache=str(tmp_path / "store"))
        robustness_report(CLASSICS, config=config)
        warm = explore_exhaustive(CLASSICS, config=config)
        assert warm.cache_misses == 0

    def test_json_round_trip(self):
        report = robustness_report(["SB", "MP"], ["TSO", "PSO"])
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["baseline"] == "SC"
        assert payload["verdicts"]["SB"]["TSO"]["robust"] is False
        assert payload["verdicts"]["MP"]["TSO"]["robust"] is True
        assert payload["verdicts"]["MP"]["PSO"]["extra_outcomes"]


class TestGoldenFile:
    def test_committed_golden_outcome_sets(self):
        """The file the CI smoke diffs against is itself pinned here."""
        from pathlib import Path

        path = Path(__file__).parent / "data" / "litmus_classic_outcomes.json"
        want = json.loads(path.read_text(encoding="utf-8"))
        got = explore_exhaustive(CLASSICS).to_json_dict()
        assert got == want


class TestServiceEstimator:
    def test_params_default_and_run(self):
        from repro.service.estimators import run_estimator, validate_params

        params = validate_params("litmus_explore", {"test": "SB",
                                                    "model": "TSO"})
        assert params == {"test": "SB", "model": "TSO", "mode": "exhaustive",
                          "trials": 100_000, "seed": 0}
        result = run_estimator("litmus_explore", params, RunConfig())
        assert list(result["tests"]) == ["SB"]
        assert list(result["tests"]["SB"]) == ["TSO"]
        assert len(result["tests"]["SB"]["TSO"]) == 4

    def test_random_mode_runs(self):
        from repro.service.estimators import run_estimator, validate_params

        params = validate_params(
            "litmus_explore",
            {"test": "MP", "model": "PSO", "mode": "random", "trials": 500})
        result = run_estimator("litmus_explore", params,
                               RunConfig(shards=4))
        assert result["trials"] == 500
        assert sum(result["counts"].values()) == 500

    def test_bad_mode_rejected(self):
        from repro.service.estimators import run_estimator, validate_params
        from repro.service.schemas import ServiceError

        params = validate_params(
            "litmus_explore",
            {"test": "SB", "model": "TSO", "mode": "frobnicate"})
        with pytest.raises(ServiceError):
            run_estimator("litmus_explore", params, RunConfig())


class TestCli:
    def test_explore_exhaustive_table(self, capsys):
        from repro.cli import main

        assert main(["litmus", "explore", "--tests", "SB", "MP",
                     "--models", "SC", "TSO"]) == 0
        out = capsys.readouterr().out
        assert "Exhaustive exploration" in out
        assert "SB" in out and "MP" in out

    def test_explore_json_and_robustness(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "explore.json"
        assert main(["litmus", "explore", "--tests", "SB",
                     "--robustness", "--json", str(path)]) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert sorted(payload["tests"]["SB"]) == ["PSO", "SC", "TSO", "WO"]
        assert payload["robustness"]["verdicts"]["SB"]["TSO"][
            "robust"] is False

    def test_explore_random_mode(self, capsys):
        from repro.cli import main

        assert main(["--shards", "4", "litmus", "explore", "--tests", "SB",
                     "--models", "TSO", "--mode", "random",
                     "--trials", "1000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pseudorandom exploration" in out
        assert "SB" in out

    def test_legacy_litmus_still_works(self, capsys):
        from repro.cli import main

        assert main(["litmus"]) == 0
        assert "SB" in capsys.readouterr().out
