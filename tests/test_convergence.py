"""Tests for repro.stats.convergence."""

from __future__ import annotations

import pytest

from repro.stats import (
    RandomSource,
    required_trials,
    standard_error,
    summarise_batches,
)


class TestStandardError:
    def test_half_probability(self):
        assert standard_error(0.5, 100) == pytest.approx(0.05)

    def test_scales_with_sqrt_trials(self):
        assert standard_error(0.5, 400) == pytest.approx(standard_error(0.5, 100) / 2)

    def test_degenerate_probability(self):
        assert standard_error(0.0, 100) == 0.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            standard_error(0.5, 0)


class TestRequiredTrials:
    def test_more_precision_needs_more_trials(self):
        assert required_trials(0.5, 0.001) > required_trials(0.5, 0.01)

    def test_worst_case_variance_for_unknown_probability(self):
        assert required_trials(0.0, 0.01) == required_trials(0.5, 0.01)

    def test_known_magnitude(self):
        # z(99%) ~ 2.576; n = z^2 * 0.25 / 0.01^2 ~ 16587
        n = required_trials(0.5, 0.01, confidence=0.99)
        assert 16_000 < n < 17_000

    def test_validation(self):
        with pytest.raises(ValueError):
            required_trials(0.5, 0.0)
        with pytest.raises(ValueError):
            required_trials(0.5, 0.01, confidence=1.0)


class TestBatchSummary:
    def test_identical_batches_converged(self):
        summary = summarise_batches([0.5, 0.5, 0.5], batch_trials=1000)
        assert summary.converged
        assert summary.max_deviation == 0.0

    def test_wild_batches_flagged(self):
        summary = summarise_batches([0.1, 0.9], batch_trials=10_000)
        assert not summary.converged

    def test_real_batches_converge(self):
        source = RandomSource(5)
        batches = []
        for _ in range(8):
            child = source.child()
            batches.append(float(child.bernoulli_array(0.3, 5000).mean()))
        summary = summarise_batches(batches, batch_trials=5000, confidence=0.999)
        assert summary.converged

    def test_validation(self):
        with pytest.raises(ValueError):
            summarise_batches([], batch_trials=10)
        with pytest.raises(ValueError):
            summarise_batches([0.5], batch_trials=0)
