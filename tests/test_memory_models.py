"""Tests for repro.core.memory_models: Table 1 and the model algebra."""

from __future__ import annotations

import pytest

from repro.core import ALL_PAIRS, LD, PAPER_MODELS, PSO, SC, ST, TSO, WO, MemoryModel
from repro.core import get_model, model_digest, table1_rows
from repro.errors import ModelDefinitionError


class TestTable1:
    """Experiment E1: the relaxation matrix of the paper's Table 1."""

    def test_sc_relaxes_nothing(self):
        assert not SC.relaxed_pairs

    def test_tso_relaxes_exactly_st_ld(self):
        assert TSO.relaxed_pairs == {(ST, LD)}

    def test_pso_relaxes_st_ld_and_st_st(self):
        assert PSO.relaxed_pairs == {(ST, LD), (ST, ST)}

    def test_wo_relaxes_everything(self):
        assert WO.relaxed_pairs == set(ALL_PAIRS)

    def test_table_rows_match_paper(self):
        rows = {row["Name"]: row for row in table1_rows()}
        assert rows["SC"] == {
            "Name": "SC", "ST/ST": False, "ST/LD": False, "LD/ST": False, "LD/LD": False,
        }
        assert rows["TSO"] == {
            "Name": "TSO", "ST/ST": False, "ST/LD": True, "LD/ST": False, "LD/LD": False,
        }
        assert rows["PSO"] == {
            "Name": "PSO", "ST/ST": True, "ST/LD": True, "LD/ST": False, "LD/LD": False,
        }
        assert rows["WO"] == {
            "Name": "WO", "ST/ST": True, "ST/LD": True, "LD/ST": True, "LD/LD": True,
        }


class TestStrictnessOrder:
    def test_paper_chain(self):
        assert SC.is_at_least_as_strong_as(TSO)
        assert TSO.is_at_least_as_strong_as(PSO)
        assert PSO.is_at_least_as_strong_as(WO)

    def test_not_reflexively_weaker(self):
        assert not WO.is_at_least_as_strong_as(SC)

    def test_reflexive(self, paper_model):
        assert paper_model.is_at_least_as_strong_as(paper_model)

    def test_incomparable_models(self):
        left = MemoryModel("L", [(ST, LD)])
        right = MemoryModel("R", [(LD, LD)])
        assert not left.is_at_least_as_strong_as(right)
        assert not right.is_at_least_as_strong_as(left)


class TestSettleProbabilities:
    def test_default_is_half(self):
        assert TSO.settle_probability(ST, LD) == 0.5

    def test_non_relaxed_pair_is_zero(self):
        assert TSO.settle_probability(LD, ST) == 0.0
        assert SC.settle_probability(ST, LD) == 0.0

    def test_uniform_settle_probability(self):
        assert TSO.uniform_settle_probability == 0.5
        assert SC.uniform_settle_probability is None  # no relaxed pairs

    def test_per_pair_probabilities(self):
        model = MemoryModel("custom", [(ST, LD), (ST, ST)], {(ST, LD): 0.3, (ST, ST): 0.7})
        assert model.settle_probability(ST, LD) == 0.3
        assert model.settle_probability(ST, ST) == 0.7
        assert model.uniform_settle_probability is None

    def test_partial_mapping_defaults_remaining_pairs(self):
        model = MemoryModel("custom", [(ST, LD), (ST, ST)], {(ST, LD): 0.3})
        assert model.settle_probability(ST, ST) == 0.5

    def test_probability_for_unrelaxed_pair_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MemoryModel("bad", [(ST, LD)], {(LD, LD): 0.5})

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MemoryModel("bad", [(ST, LD)], 1.5)

    def test_with_settle_probability_copies(self):
        slow = WO.with_settle_probability(0.25)
        assert slow.settle_probability(LD, LD) == 0.25
        assert WO.settle_probability(LD, LD) == 0.5  # original untouched
        assert slow.relaxed_pairs == WO.relaxed_pairs


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MemoryModel("", [])

    def test_unknown_pair_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MemoryModel("bad", [("FOO", "BAR")])  # type: ignore[list-item]


class TestRegistry:
    @pytest.mark.parametrize("name,expected", [
        ("SC", SC), ("tso", TSO), ("Pso", PSO), ("WO", WO),
        ("sequential consistency", SC), ("Total Store Order", TSO),
        ("partial store order", PSO), ("weak ordering", WO),
    ])
    def test_lookup(self, name, expected):
        assert get_model(name) == expected

    def test_unknown_rejected(self):
        with pytest.raises(ModelDefinitionError):
            get_model("RC")

    def test_paper_models_ordering(self):
        assert [model.name for model in PAPER_MODELS] == ["SC", "TSO", "PSO", "WO"]


class TestDunder:
    def test_equality(self):
        assert MemoryModel("TSO", [(ST, LD)]) == TSO
        assert MemoryModel("TSO", [(ST, LD)], 0.3) != TSO

    def test_hashable(self):
        assert len({SC, TSO, PSO, WO, TSO}) == 4

    def test_str_is_name(self, paper_model):
        assert str(paper_model) == paper_model.name


class TestAtomicity:
    def test_default_is_atomic(self, paper_model):
        assert paper_model.atomicity == "atomic"

    def test_non_atomic_flavor(self):
        model = MemoryModel("SC-nmca", (), atomicity="non_atomic")
        assert model.atomicity == "non_atomic"

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MemoryModel("bad", (), atomicity="telepathic")

    def test_flavor_enters_equality_and_hash(self):
        atomic = MemoryModel("SC", ())
        non_atomic = MemoryModel("SC", (), atomicity="non_atomic")
        assert atomic != non_atomic
        assert len({atomic, non_atomic}) == 2

    def test_with_settle_probability_preserves_flavor(self):
        model = MemoryModel("wo-nmca", ALL_PAIRS, atomicity="non_atomic")
        assert model.with_settle_probability(0.3).atomicity == "non_atomic"

    def test_atomic_models_carry_no_extra_state(self, paper_model):
        """Plan-key stability pin: the flavor attribute is stored only
        when non-default, so the ``__dict__``-derived state (pickle, the
        kernel-fingerprint canonical form) of every pre-existing atomic
        model — and with it every estimator's v2 plan key — is exactly
        what it was before the flavor existed."""
        assert "_atomicity" not in vars(paper_model)
        non_atomic = MemoryModel("x", (), atomicity="non_atomic")
        assert vars(non_atomic)["_atomicity"] == "non_atomic"

    def test_pickle_round_trip(self):
        import pickle

        for model in (TSO, MemoryModel("x", ALL_PAIRS,
                                       atomicity="non_atomic")):
            clone = pickle.loads(pickle.dumps(model))
            assert clone == model
            assert clone.atomicity == model.atomicity


class TestModelDigest:
    def test_name_and_description_excluded(self):
        renamed = MemoryModel("house-model", [(ST, LD)],
                              description="TSO in disguise")
        assert model_digest(renamed) == model_digest(TSO)

    def test_distinct_for_same_named_models(self):
        fake_tso = MemoryModel("TSO", ALL_PAIRS)
        assert model_digest(fake_tso) != model_digest(TSO)
        assert model_digest(fake_tso) == model_digest(WO)

    def test_sensitive_to_relaxations(self):
        digests = {model_digest(model) for model in PAPER_MODELS}
        assert len(digests) == len(PAPER_MODELS)

    def test_sensitive_to_settle_probabilities(self):
        assert model_digest(TSO.with_settle_probability(0.3)) \
            != model_digest(TSO)

    def test_sensitive_to_atomicity(self):
        atomic = MemoryModel("SC", ())
        non_atomic = MemoryModel("SC", (), atomicity="non_atomic")
        assert model_digest(atomic) != model_digest(non_atomic)

    def test_stable_hex16(self, paper_model):
        digest = model_digest(paper_model)
        assert len(digest) == 16
        assert digest == model_digest(paper_model)
