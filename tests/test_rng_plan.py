"""The counter-based Philox RNG plan (``rng_plan="philox"``).

The plan's contract has three independent clauses, each pinned here:

* **Counter addressing** — the stream at ``(seed, shard, batch)`` is a
  pure function of those counters: :func:`repro.stats.rng.philox_stream`
  reproduces any shard's or batch's draws after the fact, with no
  spawning history and no dependence on plan geometry or worker count.
* **Worker/geometry invariance** — like the spawn plan, merged Philox
  numbers at fixed ``(seed, shards)`` are bit-identical for any number
  of workers, because workers only decide *where* shards run.
* **Statistical equivalence, never silent mixing** — Philox streams
  sample the same laws as spawn streams (validated by the two-sample z
  harness at 0.999), but their fixed-seed numbers differ, so the plans
  are distinct cache/checkpoint identities (see ``tests/test_cache.py``
  for the key-injectivity property).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.manifestation import estimate_non_manifestation
from repro.core.memory_models import TSO
from repro.kernels import assert_equivalent_proportions
from repro.stats.montecarlo import run_event_trials
from repro.stats.parallel import ShardPlan
from repro.stats.rng import (
    RNG_PLANS,
    PhiloxSource,
    RandomSource,
    philox_stream,
    resolve_rng_plan,
)


def _event_batch(source, batch):
    return int((source.generator.random(batch) < 0.25).sum())


class TestResolveRngPlan:
    def test_known_plans_pass_through(self):
        for plan in RNG_PLANS:
            assert resolve_rng_plan(plan) == plan

    def test_unknown_plan_raises_with_choices(self):
        with pytest.raises(ValueError, match="spawn"):
            resolve_rng_plan("mersenne")


class TestPhiloxSource:
    def test_same_address_same_stream(self):
        draws_a = PhiloxSource(42, (3,)).generator.random(8)
        draws_b = PhiloxSource(42, (3,)).generator.random(8)
        np.testing.assert_array_equal(draws_a, draws_b)

    def test_distinct_addresses_distinct_streams(self):
        base = PhiloxSource(42, (3,)).generator.random(8)
        assert not np.array_equal(PhiloxSource(42, (4,)).generator.random(8), base)
        assert not np.array_equal(PhiloxSource(43, (3,)).generator.random(8), base)
        assert not np.array_equal(
            PhiloxSource(42, (3, 0)).generator.random(8), base)

    def test_children_are_counter_addressed(self):
        # The b-th child of the shard-s source IS the (s, b) address —
        # derivable directly, with no spawning history.
        shard = PhiloxSource(7, (5,))
        children = [shard.child() for _ in range(3)]
        for batch, child in enumerate(children):
            assert child.path == (5, batch)
            np.testing.assert_array_equal(
                child.generator.random(4),
                philox_stream(7, 5, batch).generator.random(4),
            )

    def test_philox_stream_matches_shard_source(self):
        plan = ShardPlan(1000, 8, seed=21, rng_plan="philox")
        sources = plan.shard_sources()
        for shard, source in enumerate(sources):
            assert isinstance(source, PhiloxSource)
            np.testing.assert_array_equal(
                source.generator.random(4),
                philox_stream(21, shard).generator.random(4),
            )

    def test_pickle_ships_counters_only(self):
        source = PhiloxSource(9, (2,))
        source.generator.random(100)  # consumed state must not be carried
        source.child()
        payload = pickle.dumps(source)
        assert len(payload) < 120  # (seed, path), not generator state
        clone = pickle.loads(payload)
        assert (clone.seed, clone.path) == (9, (2,))
        np.testing.assert_array_equal(clone.generator.random(4),
                                      PhiloxSource(9, (2,)).generator.random(4))

    def test_seed_sequence_collapses_to_entropy(self):
        sequence = np.random.SeedSequence(31)
        assert PhiloxSource(sequence, (1,)).seed == 31

    def test_none_seed_resolves_to_fresh_entropy(self):
        source = PhiloxSource(None, (0,))
        assert isinstance(source.seed, int)

    def test_samplers_share_the_law_machinery(self):
        # PhiloxSource is a RandomSource: every engine primitive works on it.
        source = PhiloxSource(3, (0,))
        assert isinstance(source, RandomSource)
        shifts = source.geometric_array(0.5, 1000)
        assert shifts.min() >= 0
        assert source.bernoulli_array(0.5, 10).dtype == bool


class TestPhiloxPlan:
    def test_plan_resolves_none_seed_at_construction(self):
        plan = ShardPlan(100, 4, seed=None, rng_plan="philox")
        assert plan.seed is not None
        # All shards share the one resolved seed.
        seeds = {source.seed for source in plan.shard_sources()}
        assert seeds == {plan.seed}

    def test_spawn_plan_keeps_none_seed(self):
        assert ShardPlan(100, 4, seed=None).seed is None

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_merged_numbers_are_worker_invariant(self, workers):
        baseline = run_event_trials(_event_batch, 4_000, seed=17, shards=6,
                                    workers=1, rng_plan="philox")
        result = run_event_trials(_event_batch, 4_000, seed=17, shards=6,
                                  workers=workers, rng_plan="philox")
        assert (result.successes, result.trials) == (baseline.successes,
                                                     baseline.trials)

    def test_plans_draw_different_streams_same_law(self):
        spawn = run_event_trials(_event_batch, 40_000, seed=17, shards=8)
        philox = run_event_trials(_event_batch, 40_000, seed=17, shards=8,
                                  rng_plan="philox")
        assert (spawn.successes, spawn.trials) != (philox.successes,
                                                   philox.trials)
        assert_equivalent_proportions(
            spawn.successes, spawn.trials,
            philox.successes, philox.trials,
            confidence=0.999, context="philox vs spawn event trials",
        )

    def test_philox_joined_model_agrees_with_spawn(self):
        spawn = estimate_non_manifestation(TSO, 2, 30_000, seed=5, shards=8)
        philox = estimate_non_manifestation(TSO, 2, 30_000, seed=5, shards=8,
                                            rng_plan="philox")
        assert_equivalent_proportions(
            spawn.successes, spawn.trials,
            philox.successes, philox.trials,
            confidence=0.999, context="philox vs spawn TSO n=2",
        )

    def test_philox_runs_are_deterministic(self):
        first = estimate_non_manifestation(TSO, 2, 5_000, seed=5, shards=4,
                                           rng_plan="philox")
        second = estimate_non_manifestation(TSO, 2, 5_000, seed=5, shards=4,
                                            rng_plan="philox")
        assert (first.successes, first.trials) == (second.successes,
                                                   second.trials)

    def test_philox_always_builds_a_plan(self):
        # The legacy no-plan serial path is spawn-only: philox must shard
        # (with shards=1 for workers=1) so its numbers are plan-keyed.
        result = run_event_trials(_event_batch, 2_000, seed=3,
                                  rng_plan="philox")
        expected = run_event_trials(_event_batch, 2_000, seed=3, shards=1,
                                    workers=1, rng_plan="philox")
        assert (result.successes, result.trials) == (expected.successes,
                                                     expected.trials)
