"""Tests for the atomic fetch-and-add extension (the canonical bug's fix)."""

from __future__ import annotations

import pytest

from repro.sim import (
    FetchAdd,
    Load,
    Machine,
    SharedMemory,
    Store,
    ThreadProgram,
    TSOCore,
    canonical_increment_atomic,
    is_memory_operation,
    run_canonical_bug,
)
from repro.stats import RandomSource


class TestFetchAddOperation:
    def test_metadata(self):
        op = FetchAdd("r1", "x", 5)
        assert op.is_atomic
        assert not op.is_load and not op.is_store
        assert op.address == "x"
        assert op.writes() == ("r1",)
        assert is_memory_operation(op)

    def test_default_increment(self):
        assert FetchAdd("r1", "x").value == 1

    def test_str(self):
        assert "FETCH_ADD" in str(FetchAdd("r1", "x"))


class TestCoreSemantics:
    def test_sc_core_atomicity(self, source):
        program = ThreadProgram("T0", (FetchAdd("r1", "x", 3), FetchAdd("r2", "x", 3)))
        result = Machine("SC", [program], initial_memory={"x": 10}).run(source)
        assert result.register("T0", "r1") == 10
        assert result.register("T0", "r2") == 13
        assert result.location("x") == 16

    def test_tso_atomic_drains_buffer_first(self):
        """Lock semantics: the buffered store must be visible before the RMW."""
        memory = SharedMemory()
        program = ThreadProgram("T0", (Store("x", value=7), FetchAdd("r1", "x", 1)))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0)
        cycle = 0
        while not core.retired:
            core.step(cycle)
            cycle += 1
        assert core.registers["r1"] == 7  # saw the drained store, not stale 0
        assert memory.peek("x") == 8
        assert core.pending_stores() == 0

    def test_wo_atomic_is_a_barrier(self):
        """No younger operation issues before the atomic, none after precede it."""
        for seed in range(30):
            memory = SharedMemory(log_accesses=True)
            program = ThreadProgram(
                "T0",
                (Store("a", value=1), FetchAdd("r1", "x", 1), Store("b", value=1)),
            )
            machine = Machine("WO", [program], log_accesses=True)
            result = machine.run(RandomSource(seed))
            locations = [record.location for record in result.log
                         if record.kind == "COMMIT"]
            assert locations.index("a") < locations.index("x") < locations.index("b")


class TestAtomicCanonicalBug:
    @pytest.mark.parametrize("model", ["SC", "TSO", "PSO", "WO"])
    def test_never_manifests(self, model):
        result = run_canonical_bug(model, threads=3, trials=400, seed=7,
                                   body_length=4, atomic=True)
        assert result.manifestations == 0
        assert result.final_values == {3: 400}

    def test_racy_variant_still_manifests(self):
        """Negative control: without the atomic, the bug is alive."""
        result = run_canonical_bug("TSO", threads=2, trials=400, seed=7,
                                   body_length=4, atomic=False)
        assert result.manifestations > 0

    def test_fenced_and_atomic_exclusive(self):
        with pytest.raises(ValueError):
            run_canonical_bug("SC", threads=2, trials=10, fenced=True, atomic=True)

    def test_program_shape(self):
        program = canonical_increment_atomic(0, [True, False])
        atomics = [op for op in program if op.is_atomic]
        assert len(atomics) == 1
        assert len(program) == 3
