"""Tests for repro.core.fences: the §7 acquire/release extension."""

from __future__ import annotations

import pytest

from repro.core import (
    LD,
    PSO,
    SC,
    ST,
    TSO,
    WO,
    Barrier,
    FencedItem,
    InstructionType,
    build_fenced_sequence,
    fenced_non_manifestation,
    fenced_window_distribution,
    finite_run_distribution,
    non_manifestation_probability,
    run_length_distribution,
    sample_fenced_window_growth,
    settle_fenced_window,
    window_distribution,
)
from repro.errors import ModelDefinitionError, ProgramError
from repro.stats import RandomSource, run_categorical_trials


class TestFencedItem:
    def test_operation_item(self):
        item = FencedItem(type=LD)
        assert not item.is_barrier
        assert str(item) == "LD"

    def test_barrier_item(self):
        item = FencedItem(barrier=Barrier.ACQUIRE)
        assert item.is_barrier
        assert str(item) == "ACQ"

    def test_critical_marker(self):
        assert str(FencedItem(type=ST, critical=True)) == "ST*"

    def test_exactly_one_of_type_or_barrier(self):
        with pytest.raises(ProgramError):
            FencedItem()
        with pytest.raises(ProgramError):
            FencedItem(type=LD, barrier=Barrier.FULL)


class TestBuildFencedSequence:
    def test_structure(self):
        body = [ST, LD, ST]
        items = build_fenced_sequence(body, fence_distance=1)
        rendered = [str(item) for item in items]
        assert rendered == ["ST", "LD", "ACQ", "ST", "LD*", "ST*", "REL"]

    def test_zero_distance_puts_fence_adjacent_to_load(self):
        items = build_fenced_sequence([ST, ST], fence_distance=0)
        assert [str(item) for item in items] == ["ST", "ST", "ACQ", "LD*", "ST*", "REL"]

    def test_no_release(self):
        items = build_fenced_sequence([LD], 0, add_release=False)
        assert all(item.barrier is not Barrier.RELEASE for item in items)

    def test_validation(self):
        with pytest.raises(ProgramError):
            build_fenced_sequence([ST], fence_distance=-1)
        with pytest.raises(ProgramError):
            build_fenced_sequence([ST], fence_distance=2)


class TestFencedSettling:
    def test_acquire_blocks_critical_load(self):
        """With the fence adjacent to the load, the window never grows."""
        items = build_fenced_sequence([ST] * 6, fence_distance=0)
        source = RandomSource(1)
        for _ in range(50):
            assert settle_fenced_window(items, TSO, source) == 0

    def test_full_barrier_blocks_too(self):
        items = build_fenced_sequence([ST] * 6, fence_distance=0, kind=Barrier.FULL)
        source = RandomSource(2)
        for _ in range(50):
            assert settle_fenced_window(items, WO, source) == 0

    def test_window_bounded_by_fence_distance(self):
        items = build_fenced_sequence([ST] * 8, fence_distance=3)
        source = RandomSource(3)
        for _ in range(100):
            assert 0 <= settle_fenced_window(items, TSO, source) <= 3

    def test_release_is_permeable_upward(self):
        """A load can settle above a RELEASE (into the section from below).

        Sequence: ST, REL-as-distance-0 … simplest: put the release where
        an acquire would be and observe the window *can* grow under TSO.
        """
        body = [ST] * 6
        split = len(body)
        items = [FencedItem(type=t) for t in body]
        items.append(FencedItem(barrier=Barrier.RELEASE))
        items.append(FencedItem(type=InstructionType.LOAD, critical=True))
        items.append(FencedItem(type=InstructionType.STORE, critical=True))
        source = RandomSource(4)
        growths = {settle_fenced_window(items, TSO, source) for _ in range(300)}
        assert max(growths) > 0  # the load crossed the release

    def test_sc_never_grows(self, source):
        items = build_fenced_sequence([ST] * 4, fence_distance=4)
        assert all(settle_fenced_window(items, SC, source) == 0 for _ in range(30))

    def test_requires_critical_pair(self, source):
        with pytest.raises(ProgramError):
            settle_fenced_window([FencedItem(type=ST)], TSO, source)


class TestFiniteRunDistribution:
    def test_zero_rounds(self):
        assert finite_run_distribution(0).pmf(0) == 1.0

    def test_one_round(self):
        dist = finite_run_distribution(1)
        assert dist.pmf(0) == pytest.approx(0.5)
        assert dist.pmf(1) == pytest.approx(0.5)

    def test_mass_exact(self):
        dist = finite_run_distribution(12)
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-12)
        assert dist.tail_bound == 0.0

    def test_converges_to_stationary(self):
        finite = finite_run_distribution(200)
        stationary = run_length_distribution()
        for mu in range(8):
            assert finite.pmf(mu) == pytest.approx(stationary.pmf(mu), abs=1e-9)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            finite_run_distribution(-1)


class TestFencedWindowLaw:
    def test_distance_zero_is_sc(self, paper_model):
        dist = fenced_window_distribution(paper_model, 0)
        assert dist.pmf(0) == 1.0

    def test_support_bounded_by_distance(self, paper_model):
        dist = fenced_window_distribution(paper_model, 4)
        mass_within = sum(dist.pmf(gamma) for gamma in range(5))
        assert mass_within == pytest.approx(1.0, abs=1e-9)

    def test_tso_distance_one(self):
        """k = 1: run is 0/1 each w.p. 1/2; γ = 1 needs run 1 and a climb."""
        dist = fenced_window_distribution(TSO, 1)
        assert dist.pmf(0) == pytest.approx(0.75)
        assert dist.pmf(1) == pytest.approx(0.25)

    def test_wo_distance_one(self):
        """k = 1: climb i'∈{0,1} w.p. 1/2 each; γ=1 iff i'=1 and chase fails."""
        dist = fenced_window_distribution(WO, 1)
        assert dist.pmf(0) == pytest.approx(0.75)
        assert dist.pmf(1) == pytest.approx(0.25)

    def test_large_distance_recovers_unfenced(self, paper_model):
        fenced = fenced_window_distribution(paper_model, 48)
        unfenced = window_distribution(paper_model)
        assert fenced.total_variation_distance(unfenced).value < 1e-9

    def test_monotone_in_distance(self):
        """Looser fences -> stochastically larger windows."""
        previous_tail = 0.0
        for distance in (1, 2, 4, 8, 16):
            dist = fenced_window_distribution(TSO, distance)
            tail = 1.0 - dist.pmf(0)
            assert tail >= previous_tail - 1e-12
            previous_tail = tail

    def test_matches_reference_simulator(self, store_buffer_model):
        exact = fenced_window_distribution(store_buffer_model, 3)
        simulated = run_categorical_trials(
            lambda source: sample_fenced_window_growth(
                store_buffer_model, source, 3, body_length=32
            ),
            trials=30_000,
            seed=43,
        )
        for gamma in range(4):
            assert simulated.probability(gamma).contains(exact.pmf(gamma)), gamma

    def test_wo_matches_reference_simulator(self):
        exact = fenced_window_distribution(WO, 3)
        simulated = run_categorical_trials(
            lambda source: sample_fenced_window_growth(WO, source, 3, body_length=32),
            trials=30_000,
            seed=47,
        )
        for gamma in range(4):
            assert simulated.probability(gamma).contains(exact.pmf(gamma)), gamma

    def test_non_uniform_rejected(self):
        from repro.core import MemoryModel

        lopsided = MemoryModel("lop", [(ST, LD), (LD, LD)], {(ST, LD): 0.2, (LD, LD): 0.8})
        with pytest.raises(ModelDefinitionError):
            fenced_window_distribution(lopsided, 3)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            fenced_window_distribution(TSO, -1)


class TestFencedManifestation:
    def test_distance_zero_collapses_all_models_to_sc(self, paper_model):
        value = fenced_non_manifestation(paper_model, 0).value
        assert value == pytest.approx(1 / 6)

    def test_fences_never_hurt(self, paper_model):
        """§7: fewer legal reorderings -> survival at least the unfenced one."""
        fenced = fenced_non_manifestation(paper_model, 4).value
        unfenced = non_manifestation_probability(paper_model).value
        assert fenced >= unfenced - 1e-12

    def test_large_distance_recovers_unfenced_value(self, paper_model):
        fenced = fenced_non_manifestation(paper_model, 48).value
        unfenced = non_manifestation_probability(paper_model).value
        assert fenced == pytest.approx(unfenced, abs=1e-6)

    def test_ordering_preserved_at_every_distance(self):
        """The §7 conjecture: conclusions unchanged by fences."""
        for distance in (1, 2, 4, 8, 16):
            values = {
                model.name: fenced_non_manifestation(model, distance).value
                for model in (SC, TSO, PSO, WO)
            }
            assert values["WO"] <= values["TSO"] <= values["PSO"] <= values["SC"] + 1e-12
