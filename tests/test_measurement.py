"""Tests for machine-side window measurement and the bootstrap utility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    Machine,
    canonical_increment,
    extract_windows,
    measure_critical_windows,
)
from repro.sim.scheduler import LockStepScheduler
from repro.stats import BootstrapInterval, RandomSource, bootstrap_mean_interval


class TestBootstrap:
    def test_mean_in_interval(self):
        interval = bootstrap_mean_interval([1.0, 2.0, 3.0, 4.0], seed=1)
        assert interval.low <= interval.mean <= interval.high
        assert interval.mean == 2.5

    def test_constant_data_degenerates(self):
        interval = bootstrap_mean_interval([5.0] * 20, seed=2)
        assert interval.low == interval.high == 5.0

    def test_interval_shrinks_with_samples(self):
        source = RandomSource(3)
        small = bootstrap_mean_interval(source.generator.normal(0, 1, 50), seed=4)
        large = bootstrap_mean_interval(source.generator.normal(0, 1, 5000), seed=4)
        assert (large.high - large.low) < (small.high - small.low)

    def test_coverage_of_known_mean(self):
        source = RandomSource(5)
        data = source.generator.normal(10.0, 2.0, 2000)
        interval = bootstrap_mean_interval(data, confidence=0.99, seed=6)
        assert interval.contains(10.0)

    def test_overlaps(self):
        a = BootstrapInterval(1.0, 0.5, 1.5, 0.99, 10, 100)
        b = BootstrapInterval(1.4, 1.2, 1.8, 0.99, 10, 100)
        c = BootstrapInterval(3.0, 2.5, 3.5, 0.99, 10, 100)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_interval([])
        with pytest.raises(ValueError):
            bootstrap_mean_interval([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_mean_interval([1.0], resamples=0)


class TestExtractWindows:
    def test_reads_and_commits_paired(self, source):
        programs = [canonical_increment(thread) for thread in range(2)]
        result = Machine("SC", programs, log_accesses=True,
                         scheduler=LockStepScheduler()).run(source)
        windows = extract_windows(result, threads=2)
        assert len(windows) == 2
        for start, end in windows:
            assert end > start

    def test_requires_logging(self, source):
        programs = [canonical_increment(thread) for thread in range(2)]
        result = Machine("SC", programs).run(source)
        with pytest.raises(SimulationError):
            extract_windows(result, threads=2)


class TestMeasurement:
    def test_sc_window_is_deterministic_two_cycles(self):
        """In-order core: read, add, commit — the machine's point mass."""
        measurement = measure_critical_windows("SC", threads=2, trials=100, seed=1,
                                               body_length=4)
        assert measurement.deterministic
        assert measurement.duration_fraction(2) == 1.0

    def test_store_buffer_models_have_tails(self):
        for model in ("TSO", "PSO"):
            measurement = measure_critical_windows(model, threads=2, trials=300,
                                                   seed=2, body_length=4)
            assert not measurement.deterministic
            assert measurement.mean_duration.mean > 2.0

    def test_mean_ordering_matches_abstract_model(self):
        """SC < PSO < TSO < WO in mean window — including the PSO twist."""
        means = {
            model: measure_critical_windows(model, threads=2, trials=1200, seed=3,
                                            body_length=6).mean_duration
            for model in ("SC", "TSO", "PSO", "WO")
        }
        assert means["SC"].mean < means["PSO"].mean
        assert means["PSO"].mean < means["TSO"].mean
        assert means["TSO"].mean < means["WO"].mean

    def test_manifestation_implies_overlap(self):
        """§3.2's necessity argument, checked trial by trial."""
        for model in ("SC", "TSO", "WO"):
            measurement = measure_critical_windows(model, threads=3, trials=300,
                                                   seed=4, body_length=4)
            assert measurement.manifest_without_overlap == 0, model

    def test_duration_count_matches_threads_and_trials(self):
        measurement = measure_critical_windows("SC", threads=3, trials=50, seed=5,
                                               body_length=2)
        assert measurement.durations.size == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_critical_windows("SC", threads=1, trials=10)
        with pytest.raises(ValueError):
            measure_critical_windows("SC", threads=2, trials=0)

    def test_str(self):
        measurement = measure_critical_windows("SC", threads=2, trials=20, seed=6,
                                               body_length=2)
        assert "SC" in str(measurement)
        assert "mean window" in str(measurement)
