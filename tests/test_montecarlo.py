"""Tests for repro.stats.montecarlo: the trial harness."""

from __future__ import annotations

import pytest

from repro.stats import (
    estimate_event,
    merge_bernoulli,
    run_bernoulli_trials,
    run_categorical_trials,
)


class TestBernoulliTrials:
    def test_deterministic_events(self):
        always = run_bernoulli_trials(lambda source: True, trials=100, seed=0)
        never = run_bernoulli_trials(lambda source: False, trials=100, seed=0)
        assert always.successes == 100
        assert never.successes == 0

    def test_reproducible_across_runs(self):
        first = run_bernoulli_trials(lambda s: s.bernoulli(0.5), trials=500, seed=3)
        second = run_bernoulli_trials(lambda s: s.bernoulli(0.5), trials=500, seed=3)
        assert first.successes == second.successes

    def test_seed_changes_outcome(self):
        first = run_bernoulli_trials(lambda s: s.bernoulli(0.5), trials=2000, seed=1)
        second = run_bernoulli_trials(lambda s: s.bernoulli(0.5), trials=2000, seed=2)
        assert first.successes != second.successes

    def test_interval_covers_truth(self):
        result = run_bernoulli_trials(lambda s: s.bernoulli(0.25), trials=10_000, seed=5)
        assert result.agrees_with(0.25)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_bernoulli_trials(lambda s: True, trials=0)

    def test_str_is_informative(self):
        result = run_bernoulli_trials(lambda s: True, trials=10, seed=0)
        assert "10/10" in str(result)


class TestCategoricalTrials:
    def test_counts_sum_to_trials(self):
        result = run_categorical_trials(lambda s: s.geometric(0.5), trials=1000, seed=1)
        assert sum(result.counts.values()) == 1000

    def test_support_sorted(self):
        result = run_categorical_trials(lambda s: s.geometric(0.5), trials=1000, seed=1)
        assert result.support == sorted(result.support)

    def test_probability_of_unseen_category_is_zero(self):
        result = run_categorical_trials(lambda s: 0, trials=100, seed=0)
        assert result.estimate(99) == 0.0
        assert result.probability(99).low == 0.0

    def test_geometric_pmf_recovered(self):
        result = run_categorical_trials(lambda s: s.geometric(0.5), trials=30_000, seed=7)
        assert result.probability(0).contains(0.5)
        assert result.probability(1).contains(0.25)
        assert result.probability(2).contains(0.125)

    def test_tail_probability(self):
        result = run_categorical_trials(lambda s: s.geometric(0.5), trials=30_000, seed=9)
        assert result.tail_probability(1).contains(0.5)

    def test_mean(self):
        result = run_categorical_trials(lambda s: 3, trials=50, seed=0)
        assert result.mean() == 3.0


class TestEstimateEvent:
    def test_vectorised_counting(self):
        result = estimate_event(
            lambda source, batch: int(source.bernoulli_array(0.5, batch).sum()),
            trials=20_000,
            seed=11,
        )
        assert result.trials == 20_000
        assert result.agrees_with(0.5)

    def test_batch_sizes_cover_total(self):
        sizes = []

        def batch_trial(source, batch):
            sizes.append(batch)
            return 0

        estimate_event(batch_trial, trials=10_000, seed=0, batch_size=3000)
        assert sum(sizes) == 10_000
        assert max(sizes) <= 3000

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            estimate_event(lambda s, b: 0, trials=10, batch_size=0)


class TestMerge:
    def test_merge_pools_counts(self):
        results = [
            run_bernoulli_trials(lambda s: s.bernoulli(0.5), trials=100, seed=seed)
            for seed in range(3)
        ]
        merged = merge_bernoulli(results)
        assert merged.trials == 300
        assert merged.successes == sum(result.successes for result in results)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_bernoulli([])

    def test_merge_mixed_confidence_rejected(self):
        a = run_bernoulli_trials(lambda s: True, trials=10, seed=0, confidence=0.9)
        b = run_bernoulli_trials(lambda s: True, trials=10, seed=0, confidence=0.99)
        with pytest.raises(ValueError):
            merge_bernoulli([a, b])
