"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    DistributionError,
    LitmusError,
    ModelDefinitionError,
    ProgramError,
    ReproError,
    SimulationError,
    TruncationError,
)


@pytest.mark.parametrize(
    "exception",
    [
        DistributionError,
        LitmusError,
        ModelDefinitionError,
        ProgramError,
        SimulationError,
        TruncationError,
    ],
)
def test_all_derive_from_repro_error(exception):
    assert issubclass(exception, ReproError)
    with pytest.raises(ReproError):
        raise exception("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)


def test_library_raises_catchable_base(source):
    """A representative library failure is catchable as ReproError."""
    from repro.core import generate_program

    with pytest.raises(ReproError):
        generate_program(-5, source)
