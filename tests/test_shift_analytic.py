"""Tests for repro.core.shift_analytic: Theorem 5.1, Corollary 5.2, Theorem 6.1."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    c_constant,
    disjointness_exchangeable,
    disjointness_iid,
    disjointness_probability,
    log_disjointness_iid,
    ordered_disjointness,
    point_mass,
    prefactor,
    wo_window_distribution,
)
from repro.core.shift_analytic import MAX_EXACT_SEGMENTS, log_prefactor


class TestOrderedDisjointness:
    def test_single_segment(self):
        assert ordered_disjointness([5]) == 1.0

    def test_two_equal_segments_paper_value(self):
        """For γ = (2, 2): each order contributes 1/12 (SC case -> 1/6 total)."""
        assert ordered_disjointness([2, 2]) == pytest.approx(1 / 12)

    def test_order_matters(self):
        assert ordered_disjointness([5, 0]) != ordered_disjointness([0, 5])

    def test_last_segment_length_is_irrelevant(self):
        """Only the n-1 larger-shift segments contribute factors."""
        assert ordered_disjointness([2, 0]) == ordered_disjointness([2, 99])

    def test_validation(self):
        with pytest.raises(ValueError):
            ordered_disjointness([])
        with pytest.raises(ValueError):
            ordered_disjointness([-1, 2])
        with pytest.raises(ValueError):
            ordered_disjointness([1, 2], beta=0.0)


class TestTheorem51:
    def test_sc_two_threads(self):
        assert disjointness_probability([2, 2]) == pytest.approx(1 / 6)

    def test_single_segment_certain(self):
        assert disjointness_probability([7]) == 1.0

    def test_two_zero_segments(self):
        """Points [s, s] disjoint iff |s1 - s2| >= 1: Pr = 1 - Pr[tie] = 2/3."""
        assert disjointness_probability([0, 0]) == pytest.approx(2 / 3)

    def test_matches_direct_summation_n2(self):
        """Independent check: direct double sum over both shifts."""
        for lengths in ([1, 3], [2, 2], [0, 4]):
            direct = 0.0
            for s1 in range(80):
                for s2 in range(80):
                    if s2 > s1 + lengths[0] or s1 > s2 + lengths[1]:
                        direct += 2.0 ** -(s1 + 1) * 2.0 ** -(s2 + 1)
            assert disjointness_probability(lengths) == pytest.approx(direct, abs=1e-9)

    def test_matches_direct_summation_n3(self):
        lengths = [1, 2, 0]
        direct = 0.0
        limit = 40
        for s1 in range(limit):
            for s2 in range(limit):
                for s3 in range(limit):
                    shifts = (s1, s2, s3)
                    segments = sorted(zip(shifts, lengths))
                    ok = all(
                        segments[i + 1][0] > segments[i][0] + segments[i][1]
                        for i in range(2)
                    )
                    if ok:
                        direct += math.prod(2.0 ** -(s + 1) for s in shifts)
        assert disjointness_probability(lengths) == pytest.approx(direct, abs=1e-6)

    def test_monotone_in_lengths(self):
        assert disjointness_probability([1, 1]) > disjointness_probability([3, 3])

    def test_permutation_invariant(self):
        assert disjointness_probability([0, 2, 5]) == pytest.approx(
            disjointness_probability([5, 0, 2])
        )

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError):
            disjointness_probability([0] * (MAX_EXACT_SEGMENTS + 1))

    def test_general_beta(self):
        """Direct summation cross-check at β = 0.3."""
        beta = 0.3
        lengths = [2, 1]
        direct = 0.0
        for s1 in range(60):
            for s2 in range(60):
                if s2 > s1 + lengths[0] or s1 > s2 + lengths[1]:
                    direct += (1 - beta) ** 2 * beta ** (s1 + s2)
        assert disjointness_probability(lengths, beta) == pytest.approx(direct, abs=1e-9)


class TestCorollary52:
    def test_c2_is_eight_thirds(self):
        assert c_constant(2) == pytest.approx(8 / 3)

    def test_c_in_two_four(self):
        """Corollary 5.2: c(n) ∈ [2, 4] for all n."""
        for n in range(1, 40):
            assert 2.0 <= c_constant(n) <= 4.0, f"n={n}"

    def test_c_monotone_increasing(self):
        values = [c_constant(n) for n in range(2, 20)]
        assert values == sorted(values)

    def test_c_consistent_with_theorem(self):
        """Pr[A] = c(n) 2^{-binom(n+1,2)} Σ_σ Π 2^{-(n-i)γ_σ(i)}."""
        lengths = [2, 1, 3]
        n = 3
        from itertools import permutations

        sigma_sum = sum(
            math.prod(2.0 ** (-(n - i) * order[i - 1]) for i in range(1, n))
            for order in permutations(lengths)
        )
        packaged = c_constant(n) * 2.0 ** -(n * (n + 1) // 2) * sigma_sum
        assert packaged == pytest.approx(disjointness_probability(lengths))


class TestPrefactor:
    def test_matches_log_form(self):
        for n in (2, 5, 9):
            assert math.log(prefactor(n)) == pytest.approx(log_prefactor(n))

    def test_n1_is_one(self):
        assert prefactor(1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            prefactor(0)
        with pytest.raises(ValueError):
            log_prefactor(2, beta=1.0)


class TestTheorem61:
    def test_iid_matches_exact_for_point_mass(self):
        """Degenerate windows: Theorem 6.1 must equal Theorem 5.1."""
        growth = point_mass(0)  # window length 2
        for n in (2, 3, 4, 5):
            via_61 = disjointness_iid(growth, n).value
            via_51 = disjointness_probability([2] * n)
            assert via_61 == pytest.approx(via_51, rel=1e-9), f"n={n}"

    def test_iid_matches_exact_for_wo(self):
        """WO windows are iid: Theorem 6.1 vs explicit expectation over Thm 5.1.

        For n = 2: Pr[A] = (2/3) E[2^{-Γ}], summed directly over the PMF.
        """
        growth = wo_window_distribution()
        expectation = sum(
            growth.pmf(gamma) * 2.0 ** -(gamma + 2) for gamma in range(40)
        )
        assert disjointness_iid(growth, 2).value == pytest.approx(
            (2 / 3) * expectation, abs=1e-9
        )

    def test_log_form_consistent(self):
        growth = wo_window_distribution()
        for n in (2, 4, 8):
            assert math.exp(log_disjointness_iid(growth, n)) == pytest.approx(
                disjointness_iid(growth, n).value, rel=1e-9
            )

    def test_log_form_handles_large_n(self):
        growth = point_mass(0)
        value = log_disjointness_iid(growth, 200)
        assert math.isfinite(value)
        assert value < -1000

    def test_one_thread_is_certain(self):
        assert disjointness_iid(point_mass(0), 1).value == pytest.approx(1.0)
        assert log_disjointness_iid(point_mass(0), 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            disjointness_iid(point_mass(0), 0)

    def test_exchangeable_wrapper(self):
        """disjointness_exchangeable(E) = prefactor · n! · E."""
        growth = point_mass(0)
        n = 3
        # E[Π 2^{-(n-i)(Γ+1)}] for Γ ≡ 2: 2^{-3·(2+1)} = 2^-9.
        expectation = 2.0**-9
        assert disjointness_exchangeable(expectation, n) == pytest.approx(
            disjointness_iid(growth, n).value, rel=1e-9
        )
        with pytest.raises(ValueError):
            disjointness_exchangeable(-0.1, 2)
