"""Docs-consistency checks (tier 2, ``-m docs``).

The observability layer is only useful if its surface is documented: a
metric name you cannot look up, or a CLI flag missing from the API
reference, is operationally invisible.  These checks pin the public
``repro.obs`` surface, the metrics catalogue, and the engine CLI flags
to ``docs/API.md`` / ``docs/OBSERVABILITY.md`` so the docs cannot drift
from the code.  CI runs them as a dedicated step.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.obs as obs
from repro.cli import build_parser
from repro.obs import METRICS_CATALOGUE

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = Path(__file__).resolve().parent.parent / "README.md"

pytestmark = pytest.mark.docs


@pytest.fixture(scope="module")
def api_text() -> str:
    return (DOCS / "API.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def obs_text() -> str:
    return (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")


def test_every_obs_export_is_documented(api_text, obs_text):
    documented = api_text + obs_text
    missing = [name for name in obs.__all__ if name not in documented]
    assert not missing, (
        f"public repro.obs exports missing from docs/API.md and "
        f"docs/OBSERVABILITY.md: {missing}"
    )


def test_every_metric_is_catalogued_in_docs(obs_text):
    missing = [name for name in METRICS_CATALOGUE if name not in obs_text]
    assert not missing, (
        f"metrics missing from the docs/OBSERVABILITY.md catalogue: {missing}"
    )


def test_engine_cli_flags_are_documented(api_text, obs_text):
    documented = api_text + obs_text
    parser = build_parser()
    flags = [option
             for action in parser._actions
             for option in action.option_strings
             # argparse's automatic --help needs no documentation
             if option.startswith("--") and option != "--help"]
    missing = [flag for flag in flags if flag not in documented]
    assert not missing, f"root CLI flags missing from the docs: {missing}"


def test_observability_flags_in_readme():
    readme = README.read_text(encoding="utf-8")
    for flag in ("--manifest", "--progress"):
        assert flag in readme, f"README lacks the {flag} observe-a-run example"


def test_docs_cross_link_each_other(api_text, obs_text):
    assert "OBSERVABILITY.md" in api_text
    assert "API.md" in obs_text
    readme = README.read_text(encoding="utf-8")
    assert "docs/OBSERVABILITY.md" in readme
