"""Docs-consistency checks (tier 2, ``-m docs``).

The observability layer is only useful if its surface is documented: a
metric name you cannot look up, or a CLI flag missing from the API
reference, is operationally invisible.  These checks pin the public
``repro.obs`` surface, the metrics catalogue, and the engine CLI flags
to ``docs/API.md`` / ``docs/OBSERVABILITY.md`` so the docs cannot drift
from the code.  CI runs them as a dedicated step.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.obs as obs
from repro.cli import build_parser
from repro.obs import METRICS_CATALOGUE

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = Path(__file__).resolve().parent.parent / "README.md"

pytestmark = pytest.mark.docs


@pytest.fixture(scope="module")
def api_text() -> str:
    return (DOCS / "API.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def obs_text() -> str:
    return (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def kernels_text() -> str:
    return (DOCS / "KERNELS.md").read_text(encoding="utf-8")


def test_every_obs_export_is_documented(api_text, obs_text):
    documented = api_text + obs_text
    missing = [name for name in obs.__all__ if name not in documented]
    assert not missing, (
        f"public repro.obs exports missing from docs/API.md and "
        f"docs/OBSERVABILITY.md: {missing}"
    )


def test_every_metric_is_catalogued_in_docs(obs_text):
    missing = [name for name in METRICS_CATALOGUE if name not in obs_text]
    assert not missing, (
        f"metrics missing from the docs/OBSERVABILITY.md catalogue: {missing}"
    )


def test_engine_cli_flags_are_documented(api_text, obs_text):
    documented = api_text + obs_text
    parser = build_parser()
    flags = [option
             for action in parser._actions
             for option in action.option_strings
             # argparse's automatic --help needs no documentation
             if option.startswith("--") and option != "--help"]
    missing = [flag for flag in flags if flag not in documented]
    assert not missing, f"root CLI flags missing from the docs: {missing}"


def test_observability_flags_in_readme():
    readme = README.read_text(encoding="utf-8")
    for flag in ("--manifest", "--progress"):
        assert flag in readme, f"README lacks the {flag} observe-a-run example"


def test_docs_cross_link_each_other(api_text, obs_text):
    assert "OBSERVABILITY.md" in api_text
    assert "API.md" in obs_text
    readme = README.read_text(encoding="utf-8")
    assert "docs/OBSERVABILITY.md" in readme


def test_every_kernel_export_is_documented(api_text, kernels_text):
    import repro.kernels as kernels

    documented = api_text + kernels_text
    missing = [name for name in kernels.__all__ if name not in documented]
    assert not missing, (
        f"public repro.kernels exports missing from docs/API.md and "
        f"docs/KERNELS.md: {missing}"
    )


def test_kernel_catalogue_matches_kernels_doc(kernels_text):
    from repro.kernels import KERNEL_CATALOGUE

    for kernel, (artifact, _summary) in KERNEL_CATALOGUE.items():
        assert kernel in kernels_text, (
            f"kernel {kernel} missing from docs/KERNELS.md catalogue"
        )
        assert artifact in kernels_text, (
            f"paper artifact {artifact!r} ({kernel}) missing from "
            f"docs/KERNELS.md"
        )


def test_backend_flag_and_e20_documented(api_text, kernels_text):
    from repro.reporting import get_experiment

    e20 = get_experiment("E20")
    assert e20.modules == ("repro.kernels",)
    experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "## E20" in experiments, "EXPERIMENTS.md lacks the E20 section"
    assert e20.bench in experiments
    for text, where in ((api_text, "docs/API.md"),
                        (kernels_text, "docs/KERNELS.md")):
        assert "--backend" in text, f"{where} lacks the --backend flag"
    readme = README.read_text(encoding="utf-8")
    assert "--backend" in readme, "README lacks a --backend example"
    assert "docs/KERNELS.md" in readme


def test_run_event_trials_documented(api_text):
    assert "run_event_trials" in api_text
    assert "estimate_event" in api_text, (
        "the historical estimate_event alias should stay documented"
    )


def test_estimate_event_only_ever_described_as_alias():
    """Prose may mention ``estimate_event`` only *as* the historical alias.

    The rename to ``run_event_trials`` is done; any line presenting the
    old name as current API (as docs/OBSERVABILITY.md once did) is a
    regression.  Qualifier words: "alias", "historical", "renamed",
    "old name".
    """
    qualifiers = ("alias", "historical", "renamed", "old name")
    offenders = []
    for path in sorted(DOCS.glob("*.md")) + [README]:
        for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if "estimate_event" in line and not any(
                    q in line.lower() for q in qualifiers):
                offenders.append(f"{path.name}:{number}: {line.strip()}")
    assert not offenders, (
        "estimate_event mentioned as if it were current API "
        f"(say 'alias'/'historical' on the same line): {offenders}"
    )


@pytest.fixture(scope="module")
def caching_text() -> str:
    return (DOCS / "CACHING.md").read_text(encoding="utf-8")


def test_cache_surface_is_documented(api_text, caching_text):
    import repro.cache as cache

    documented = api_text + caching_text
    missing = [name for name in cache.__all__ if name not in documented]
    assert not missing, (
        f"public repro.cache exports missing from docs/API.md and "
        f"docs/CACHING.md: {missing}"
    )
    for needle in ("--cache", "repro cache", "kernel_fingerprint",
                   "v2", "v1"):
        assert needle in caching_text, f"docs/CACHING.md lacks {needle!r}"
    # The three maintenance actions of the `repro cache` subcommand.
    for action in ("stats", "clear", "verify"):
        assert f"cache {action}" in caching_text


def test_caching_doc_is_cross_linked(api_text, obs_text, kernels_text,
                                     caching_text):
    for text, where in ((api_text, "docs/API.md"),
                        (obs_text, "docs/OBSERVABILITY.md"),
                        (kernels_text, "docs/KERNELS.md")):
        assert "CACHING.md" in text, f"{where} does not link docs/CACHING.md"
    for target in ("API.md", "KERNELS.md", "OBSERVABILITY.md"):
        assert target in caching_text
    readme = README.read_text(encoding="utf-8")
    assert "docs/CACHING.md" in readme
    assert "--cache" in readme, "README lacks a --cache example"


def test_runconfig_fields_in_api_table_and_cli(api_text):
    """Every RunConfig knob must appear in the docs/API.md "RunConfig"
    table and (unless API-only) carry a live CLI flag.

    ``RunConfig.cli_bindings()`` is the source of truth: adding a field
    without documenting it, or binding it to a flag the parser does not
    actually declare, fails here.
    """
    from repro.runconfig import RunConfig

    assert "## RunConfig" in api_text, "docs/API.md lacks a RunConfig section"
    table = api_text[api_text.index("## RunConfig"):]
    parser_flags = {option
                    for action in build_parser()._actions
                    for option in action.option_strings
                    if option.startswith("--")}
    problems = []
    for name, flag in RunConfig.cli_bindings().items():
        if f"`{name}`" not in table:
            problems.append(f"field {name!r} missing from the RunConfig table")
        if flag is None:
            # API-only knobs must say so instead of having a flag.
            if "API-only" not in table:
                problems.append(f"API-only field {name!r} not labelled as such")
        else:
            if flag not in parser_flags:
                problems.append(f"field {name!r} bound to {flag} but the CLI "
                                "parser does not declare that flag")
            if flag not in table:
                problems.append(f"flag {flag} ({name!r}) missing from the "
                                "RunConfig table")
    assert not problems, "; ".join(problems)


def test_runconfig_examples_migrated(api_text, obs_text, caching_text):
    """The canonical docs teach the config style, not just the aliases."""
    readme = README.read_text(encoding="utf-8")
    for text, where in ((readme, "README.md"),
                        (api_text, "docs/API.md"),
                        (obs_text, "docs/OBSERVABILITY.md"),
                        (caching_text, "docs/CACHING.md")):
        assert "RunConfig" in text, f"{where} never mentions RunConfig"
    assert "deprecated alias" in api_text, (
        "docs/API.md must state the keyword-alias deprecation policy"
    )
    assert "config=" in readme, "README lacks a config= example"


@pytest.fixture(scope="module")
def litmus_text() -> str:
    return (DOCS / "LITMUS.md").read_text(encoding="utf-8")


def test_litmus_doc_and_e23_documented(litmus_text):
    from repro.reporting import get_experiment

    e23 = get_experiment("E23")
    assert e23.modules == ("repro.litmus.explore", "repro.litmus.robustness")
    experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "## E23" in experiments, "EXPERIMENTS.md lacks the E23 section"
    assert e23.bench in experiments
    # The engine surface a reader must be able to look up.
    for needle in ("explore_exhaustive", "explore_random",
                   "robustness_report", "program_digest",
                   "enumerator_fingerprint", "explore_entry_key",
                   "check_convergence", "assert_frequencies_equivalent",
                   "litmus explore", "--robustness", "--mode", "--trials",
                   "explore.grid_points", "explore.outcomes_total",
                   "litmus_explore", "BENCH_litmus_explore.json"):
        assert needle in litmus_text, f"docs/LITMUS.md lacks {needle!r}"
    readme = README.read_text(encoding="utf-8")
    assert "litmus explore" in readme, "README lacks a litmus explore example"


def test_family_doc_and_e24_documented(litmus_text, api_text):
    from repro.reporting import get_experiment

    e24 = get_experiment("E24")
    assert e24.modules == ("repro.litmus.generate", "repro.litmus.zoo")
    experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "## E24" in experiments, "EXPERIMENTS.md lacks the E24 section"
    assert e24.bench in experiments
    # The generator/zoo surface a reader must be able to look up.
    for needle in ("FamilySpec", "family_member", "generate_family",
                   "family_digests", "sweep_family", "get_zoo_model",
                   "PSO-WB", "SC-NMCA", "WO-NMCA", "model_digest",
                   "GENERATOR_LANE", "enumerate_outcomes_buffered",
                   "litmus generate", "--spacing", "--fence-density",
                   "litmus_family", "--family-trials",
                   "BENCH_litmus_family.json"):
        assert needle in litmus_text, f"docs/LITMUS.md lacks {needle!r}"
    # The exports land in the API reference too.
    for needle in ("FamilySpec", "sweep_family", "get_zoo_model",
                   "enumerate_outcomes_buffered", "model_digest",
                   "ATOMICITY_FLAVORS", "litmus generate"):
        assert needle in api_text, f"docs/API.md lacks {needle!r}"
    readme = README.read_text(encoding="utf-8")
    assert "litmus generate" in readme, "README lacks a litmus generate example"
    assert "BENCH_litmus_family.json" in readme


def test_litmus_doc_is_cross_linked(litmus_text, api_text, caching_text,
                                    obs_text):
    for target in ("API.md", "CACHING.md", "OBSERVABILITY.md"):
        assert target in litmus_text
    assert "LITMUS.md" in caching_text or "LITMUS.md" in api_text, (
        "neither docs/API.md nor docs/CACHING.md links docs/LITMUS.md"
    )


def test_cache_flag_and_e21_documented(api_text):
    from repro.reporting import get_experiment

    e21 = get_experiment("E21")
    assert e21.modules == ("repro.cache", "repro.stats.checkpoint")
    experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "## E21" in experiments, "EXPERIMENTS.md lacks the E21 section"
    assert e21.bench in experiments
    assert "--cache" in api_text, "docs/API.md lacks the --cache flag"


# ---------------------------------------------------------------------------
# The estimation service (docs/SERVICE.md) and the generated flag surfaces.


@pytest.fixture(scope="module")
def service_text() -> str:
    return (DOCS / "SERVICE.md").read_text(encoding="utf-8")


def test_service_routes_match_docs_both_ways(service_text):
    """docs/SERVICE.md's route table IS the live route table.

    Every route the server dispatches must appear in SERVICE.md as
    `` `METHOD /v1/path` ``, and every such route string in SERVICE.md
    must exist in ``repro.service.server.ROUTES`` — documenting a
    phantom endpoint fails just like shipping an undocumented one.
    """
    import re

    from repro.service.server import ROUTES

    live = {f"{method} {path}" for method, path, _purpose in ROUTES}
    documented = set(re.findall(r"`((?:GET|POST|PUT|DELETE|PATCH) /v1/[^`]*)`",
                                service_text))
    undocumented = live - documented
    phantom = documented - live
    assert not undocumented, (
        f"routes served but missing from docs/SERVICE.md: {sorted(undocumented)}"
    )
    assert not phantom, (
        f"routes documented in docs/SERVICE.md but not served: {sorted(phantom)}"
    )


def test_every_service_export_is_documented(api_text, service_text):
    import repro.service as service

    documented = api_text + service_text
    missing = [name for name in service.__all__ if name not in documented]
    assert not missing, (
        f"public repro.service exports missing from docs/API.md and "
        f"docs/SERVICE.md: {missing}"
    )


def test_service_metrics_and_states_documented(service_text, obs_text):
    from repro.service import JOB_STATES

    service_metrics = [name for name in METRICS_CATALOGUE
                       if name.startswith("service.")]
    assert service_metrics, "the service.* metrics left the catalogue"
    for name in service_metrics:
        assert name in service_text, f"docs/SERVICE.md lacks metric {name}"
        assert name in obs_text, f"docs/OBSERVABILITY.md lacks metric {name}"
    for state in JOB_STATES:
        assert state in service_text, f"docs/SERVICE.md lacks job state {state!r}"


def test_serve_cli_flags_documented(service_text):
    """Every serve-specific flag appears in docs/SERVICE.md.

    The ``serve`` subparser also inherits the shared engine flags
    (``--workers``, ``--cache``, ...); those are documented centrally
    (README table, docs/API.md) and excluded here.
    """
    import argparse

    from repro.runconfig import RunConfig

    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    serve = subparsers.choices["serve"]
    engine_flags = {flag for flag in RunConfig.cli_bindings().values() if flag}
    flags = [option
             for action in serve._actions
             for option in action.option_strings
             if option.startswith("--") and option != "--help"
             and option not in engine_flags]
    assert "--state-dir" in flags, "serve lost its --state-dir flag"
    missing = [flag for flag in flags if flag not in service_text]
    assert not missing, f"serve flags missing from docs/SERVICE.md: {missing}"


def test_service_doc_is_cross_linked(api_text, obs_text, caching_text,
                                     service_text):
    for text, where in ((api_text, "docs/API.md"),
                        (obs_text, "docs/OBSERVABILITY.md"),
                        (caching_text, "docs/CACHING.md")):
        assert "SERVICE.md" in text, f"{where} does not link docs/SERVICE.md"
    for target in ("API.md", "CACHING.md", "OBSERVABILITY.md"):
        assert target in service_text
    readme = README.read_text(encoding="utf-8")
    assert "docs/SERVICE.md" in readme
    assert "repro serve" in readme, "README lacks a repro serve example"


def test_caching_doc_covers_cross_request_dedup(caching_text):
    assert "## Cross-request dedup" in caching_text, (
        "docs/CACHING.md lost the cross-request dedup section"
    )
    section = caching_text[caching_text.index("## Cross-request dedup"):]
    for needle in ("job_key", "plan_key_inputs", "rng_plan", "backend",
                   "fingerprint", "false merge", "dedup"):
        assert needle in section, (
            f"the CACHING.md dedup section lacks {needle!r}"
        )


def test_readme_flag_table_is_generated(service_text):
    """The README engine-flag table is the exact output of
    ``RunConfig.flag_table_markdown()`` — regenerating is the only way
    to edit it, so it cannot lag the code."""
    from repro.runconfig import RunConfig

    readme = README.read_text(encoding="utf-8")
    begin = "<!-- engine-flags:begin"
    end = "<!-- engine-flags:end -->"
    assert begin in readme and end in readme, (
        "README lost its engine-flags markers"
    )
    start = readme.index(begin)
    start = readme.index("\n", start) + 1
    block = readme[start:readme.index(end)].strip()
    assert block == RunConfig.flag_table_markdown().strip(), (
        "README engine-flag table drifted from "
        "RunConfig.flag_table_markdown() — regenerate the block"
    )


def test_help_epilog_is_generated_from_cli_bindings():
    """``repro --help`` ends with every bound engine flag and its doc
    line, straight from the RunConfig field metadata."""
    from repro.runconfig import RunConfig

    epilog = build_parser().epilog
    assert epilog, "the root parser lost its engine-flags epilog"
    for name, flag in RunConfig.cli_bindings().items():
        if flag is None:
            continue
        assert flag in epilog, (
            f"--help epilog lacks {flag} (RunConfig field {name!r})"
        )


def test_readme_documentation_map_links_every_doc():
    readme = README.read_text(encoding="utf-8")
    assert "## Documentation map" in readme, (
        "README lacks the Documentation map section"
    )
    section = readme[readme.index("## Documentation map"):]
    for doc in sorted(path.name for path in DOCS.glob("*.md")):
        assert f"docs/{doc}" in section, (
            f"README Documentation map does not link docs/{doc}"
        )
