"""Tests for repro.sim.isa."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Add,
    AddImmediate,
    Fence,
    Load,
    LoadImmediate,
    Nop,
    Store,
    ThreadProgram,
    is_memory_operation,
)


class TestOperations:
    def test_load_metadata(self):
        load = Load("r1", "x")
        assert load.is_load and not load.is_store
        assert load.address == "x"
        assert load.writes() == ("r1",)
        assert load.reads() == ()

    def test_store_with_register(self):
        store = Store("x", src="r1")
        assert store.is_store
        assert store.reads() == ("r1",)
        assert store.address == "x"

    def test_store_with_immediate(self):
        store = Store("x", value=7)
        assert store.reads() == ()

    def test_store_needs_exactly_one_source(self):
        with pytest.raises(SimulationError):
            Store("x")
        with pytest.raises(SimulationError):
            Store("x", src="r1", value=3)

    def test_local_operations_have_no_address(self):
        assert LoadImmediate("r1", 3).address is None
        assert Add("r3", "r1", "r2").address is None
        assert AddImmediate("r2", "r1", 1).address is None
        assert Nop().address is None

    def test_add_dependencies(self):
        add = Add("r3", "r1", "r2")
        assert set(add.reads()) == {"r1", "r2"}
        assert add.writes() == ("r3",)

    def test_fence_flags(self):
        fence = Fence()
        assert fence.is_fence
        assert not is_memory_operation(fence)

    def test_memory_operation_predicate(self):
        assert is_memory_operation(Load("r1", "x"))
        assert is_memory_operation(Store("x", value=1))
        assert not is_memory_operation(Nop())

    def test_str_forms(self):
        assert str(Load("r1", "x")) == "r1 = LD x"
        assert str(Store("x", value=2)) == "ST x = 2"
        assert str(Fence()) == "FENCE"


class TestThreadProgram:
    def test_len_and_iteration(self):
        program = ThreadProgram("T0", (Load("r1", "x"), Store("y", value=1)))
        assert len(program) == 2
        assert [op.address for op in program] == ["x", "y"]

    def test_memory_operations_filter(self):
        program = ThreadProgram(
            "T0", (Load("r1", "x"), AddImmediate("r1", "r1", 1), Store("x", src="r1"))
        )
        assert len(program.memory_operations()) == 2

    def test_registers_collected(self):
        program = ThreadProgram(
            "T0", (Load("loc", "x"), AddImmediate("loc", "loc", 1), Store("x", src="loc"))
        )
        assert program.registers() == {"loc"}

    def test_str_contains_name(self):
        program = ThreadProgram("T7", (Nop(),))
        assert "T7" in str(program)

    def test_operations_coerced_to_tuple(self):
        program = ThreadProgram("T0", [Nop()])
        assert isinstance(program.operations, tuple)
