"""Property-based tests (hypothesis) for the extension subsystems.

Covers fences, heterogeneous fleets, the machine substrate, and the
non-atomic litmus enumerator with invariants over arbitrary parameters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    fenced_non_manifestation,
    fenced_window_distribution,
    finite_run_distribution,
    heterogeneous_disjointness,
    heterogeneous_non_manifestation,
    point_mass,
)
from repro.sim import Load, Machine, Store, ThreadProgram, canonical_increment
from repro.stats import RandomSource, bootstrap_mean_interval

model_indices = st.integers(min_value=0, max_value=3)
seeds = st.integers(min_value=0, max_value=2**31)


class TestFenceProperties:
    @given(distance=st.integers(min_value=0, max_value=24), index=model_indices)
    @settings(max_examples=60, deadline=None)
    def test_fenced_law_is_distribution_with_bounded_support(self, distance, index):
        model = PAPER_MODELS[index]
        dist = fenced_window_distribution(model, distance)
        mass = sum(dist.pmf(gamma) for gamma in range(distance + 1))
        assert mass == pytest.approx(1.0, abs=1e-7)

    @given(distance=st.integers(min_value=0, max_value=20), index=model_indices)
    @settings(max_examples=60, deadline=None)
    def test_fences_never_reduce_survival(self, distance, index):
        model = PAPER_MODELS[index]
        shorter = fenced_non_manifestation(model, distance).value
        longer = fenced_non_manifestation(model, distance + 4).value
        assert shorter >= longer - 1e-12

    @given(
        rounds=st.integers(min_value=0, max_value=40),
        p=st.floats(min_value=0.05, max_value=0.95),
        s=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=80, deadline=None)
    def test_finite_run_distribution_is_exact(self, rounds, p, s):
        dist = finite_run_distribution(rounds, p, s)
        assert dist.tail_bound == 0.0
        assert float(dist.prefix.sum()) == pytest.approx(1.0, abs=1e-10)
        # The run cannot exceed the number of rounds.
        assert dist.truncation_point <= rounds + 1


class TestHeterogeneousProperties:
    fleets = st.lists(model_indices, min_size=2, max_size=5)

    @given(fleet=fleets)
    @settings(max_examples=60, deadline=None)
    def test_probability_in_unit_interval(self, fleet):
        models = [PAPER_MODELS[index] for index in fleet]
        value = heterogeneous_non_manifestation(
            models, allow_independent_approximation=True
        ).value
        assert 0.0 < value < 1.0

    @given(fleet=fleets, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_order_invariance(self, fleet, seed):
        import random

        models = [PAPER_MODELS[index] for index in fleet]
        shuffled = list(models)
        random.Random(seed).shuffle(shuffled)
        a = heterogeneous_non_manifestation(models, allow_independent_approximation=True)
        b = heterogeneous_non_manifestation(shuffled, allow_independent_approximation=True)
        assert a.value == pytest.approx(b.value, rel=1e-9)

    @given(fleet=fleets)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_homogeneous_extremes(self, fleet):
        """A mixed fleet is never safer than all-SC nor riskier than all-WO."""
        models = [PAPER_MODELS[index] for index in fleet]
        n = len(models)
        mixed = heterogeneous_non_manifestation(
            models, allow_independent_approximation=True
        ).value
        strongest = heterogeneous_non_manifestation(
            [SC] * n, allow_independent_approximation=True
        ).value
        weakest = heterogeneous_non_manifestation(
            [WO] * n, allow_independent_approximation=True
        ).value
        assert weakest - 1e-12 <= mixed <= strongest + 1e-12

    @given(lengths=st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_degenerate_laws_match_theorem51(self, lengths):
        from repro.core import disjointness_probability

        laws = [point_mass(length) for length in lengths]
        value = heterogeneous_disjointness(laws).value
        expected = disjointness_probability([length + 2 for length in lengths])
        assert value == pytest.approx(expected, rel=1e-9)


class TestMachineProperties:
    @given(seed=seeds, model_index=model_indices)
    @settings(max_examples=40, deadline=None)
    def test_counter_final_value_bounded(self, seed, model_index):
        model = PAPER_MODELS[model_index]
        programs = [canonical_increment(thread) for thread in range(3)]
        result = Machine(model.name, programs).run(RandomSource(seed))
        assert 1 <= result.location("x") <= 3

    @given(seed=seeds, model_index=model_indices)
    @settings(max_examples=40, deadline=None)
    def test_machine_deterministic_given_seed(self, seed, model_index):
        model = PAPER_MODELS[model_index]
        programs = [
            ThreadProgram("T0", (Store("x", value=1), Load("r1", "y"))),
            ThreadProgram("T1", (Store("y", value=1), Load("r2", "x"))),
        ]
        a = Machine(model.name, programs).run(RandomSource(seed))
        b = Machine(model.name, programs).run(RandomSource(seed))
        assert a.registers == b.registers
        assert a.memory == b.memory

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_single_writer_value_survives(self, seed):
        """Whatever the model and interleaving, a sole store is never lost."""
        programs = [
            ThreadProgram("T0", (Store("x", value=7),)),
            ThreadProgram("T1", (Load("r1", "x"),)),
        ]
        for model in PAPER_MODELS:
            result = Machine(model.name, programs).run(RandomSource(seed))
            assert result.location("x") == 7
            assert result.register("T1", "r1") in (0, 7)


class TestBootstrapProperties:
    @given(
        values=st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40),
        seed=seeds,
    )
    @settings(max_examples=80)
    def test_interval_brackets_sample_mean(self, values, seed):
        interval = bootstrap_mean_interval(values, seed=seed)
        assert interval.low <= interval.mean + 1e-9
        assert interval.mean <= interval.high + 1e-9

    @given(value=st.floats(min_value=-50, max_value=50), seed=seeds)
    @settings(max_examples=40)
    def test_constant_sample_collapses(self, value, seed):
        interval = bootstrap_mean_interval([value] * 10, seed=seed)
        assert interval.low == pytest.approx(interval.high)
