"""Property-based tests (hypothesis) on the core data structures and processes.

These complement the example-based suites with invariants that must hold
for *arbitrary* parameters: permutation validity of settling, mass
conservation of distributions, symmetry/monotonicity of the shift
formulas, and the combinatorial identities behind Claim 4.4.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DiscreteDistribution,
    MemoryModel,
    SettlingProcess,
    bounded_partitions,
    c_constant,
    disjointness_probability,
    ordered_disjointness,
    program_from_types,
    segments_disjoint,
    window_from_run_distribution,
)
from repro.core.memory_models import ALL_PAIRS
from repro.core.partitions import delta_support
from repro.stats import RandomSource, wilson_interval

body_strings = st.text(alphabet="SL", min_size=0, max_size=12)
relaxation_sets = st.lists(st.sampled_from(ALL_PAIRS), unique=True, max_size=4)
settle_probabilities = st.floats(min_value=0.0, max_value=1.0)
seeds = st.integers(min_value=0, max_value=2**31)


class TestSettlingProperties:
    @given(body=body_strings, relaxed=relaxation_sets, seed=seeds,
           settle=settle_probabilities)
    @settings(max_examples=150, deadline=None)
    def test_settling_always_yields_valid_permutation(self, body, relaxed, seed, settle):
        model = MemoryModel("fuzz", relaxed, settle)
        program = program_from_types(body)
        result = SettlingProcess(model).settle(program, RandomSource(seed))
        assert sorted(result.order) == list(range(1, program.length + 1))
        assert result.critical_load_position < result.critical_store_position

    @given(body=body_strings, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_settling_never_violates_model_constraints(self, body, seed):
        """Every inversion in a TSO-settled order is a legal (ST, LD) swap."""
        from repro.core import TSO

        program = program_from_types(body)
        result = SettlingProcess(TSO).settle(program, RandomSource(seed))
        for position, index in enumerate(result.order, start=1):
            for later_position in range(position + 1, program.length + 1):
                later_index = result.order[later_position - 1]
                if later_index < index:
                    # Inverted pair: the earlier instruction (later_index)
                    # ended below the later one (index): index passed it.
                    earlier_type = program.type_of(later_index)
                    later_type = program.type_of(index)
                    assert TSO.relaxes(earlier_type, later_type), (
                        body, seed, later_index, index
                    )

    @given(body=body_strings, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_trace_is_consistent_prefix_history(self, body, seed):
        from repro.core import WO

        program = program_from_types(body)
        result = SettlingProcess(WO).settle(program, RandomSource(seed), record_trace=True)
        for round_number, step in enumerate(result.trace, start=1):
            assert sorted(step.order) == list(range(1, round_number + 1))
        assert result.trace[-1].order == result.order


class TestDistributionProperties:
    @given(
        masses=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12)
    )
    @settings(max_examples=150)
    def test_normalised_pmfs_accepted_and_queryable(self, masses):
        total = sum(masses)
        if total <= 0:
            return
        values = [mass / total for mass in masses]
        dist = DiscreteDistribution(values)
        assert abs(sum(dist.pmf(k) for k in range(len(values))) - 1.0) < 1e-9
        transform = dist.power_transform(0.5)
        assert 0.0 <= transform.value <= 1.0

    @given(
        masses=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8),
        base=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=150)
    def test_power_transform_bounded_by_mass(self, masses, base):
        total = sum(masses)
        dist = DiscreteDistribution([mass / total for mass in masses])
        transform = dist.power_transform(base)
        assert -1e-12 <= transform.value <= 1.0 + 1e-12

    @given(
        masses=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8)
    )
    @settings(max_examples=100)
    def test_tvd_is_a_metric_distance_to_self(self, masses):
        total = sum(masses)
        dist = DiscreteDistribution([mass / total for mass in masses])
        assert dist.total_variation_distance(dist).value == 0.0

    @given(
        masses=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8),
        settle=st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=100)
    def test_window_fold_preserves_mass(self, masses, settle):
        """Folding any run law into a window law stays a distribution."""
        total = sum(masses)
        runs = DiscreteDistribution([mass / total for mass in masses])
        window = window_from_run_distribution(runs, settle)
        mass = float(window.prefix.sum())
        assert mass <= 1.0 + 1e-9
        assert mass + window.tail_bound >= 1.0 - 1e-9


class TestShiftProperties:
    lengths_lists = st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=5)

    @given(lengths=lengths_lists)
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, lengths):
        value = disjointness_probability(lengths)
        assert 0.0 <= value <= 1.0

    @given(lengths=lengths_lists, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, lengths, seed):
        import random

        shuffled = list(lengths)
        random.Random(seed).shuffle(shuffled)
        assert disjointness_probability(lengths) == pytest.approx(
            disjointness_probability(shuffled), rel=1e-12
        )

    @given(lengths=lengths_lists, index=st.integers(min_value=0, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing_in_each_length(self, lengths, index):
        index %= len(lengths)
        longer = list(lengths)
        longer[index] += 1
        assert disjointness_probability(longer) <= disjointness_probability(lengths) + 1e-12

    @given(lengths=lengths_lists)
    @settings(max_examples=60, deadline=None)
    def test_ordered_terms_sum_to_total(self, lengths):
        from itertools import permutations

        total = sum(ordered_disjointness(list(order)) for order in permutations(lengths))
        assert total == disjointness_probability(lengths)

    @given(
        shifts=st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=5),
        lengths=st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=5),
    )
    @settings(max_examples=150)
    def test_closed_disjoint_implies_half_open_disjoint(self, shifts, lengths):
        size = min(len(shifts), len(lengths))
        shifts, lengths = shifts[:size], lengths[:size]
        if segments_disjoint(shifts, lengths, closed=True):
            assert segments_disjoint(shifts, lengths, closed=False)

    @given(n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30)
    def test_c_constant_bounds(self, n):
        assert 2.0 <= c_constant(n) <= 4.0


class TestPartitionProperties:
    @given(
        parts=st.integers(min_value=1, max_value=7),
        max_part=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60)
    def test_row_sum_identity(self, parts, max_part):
        total = sum(
            bounded_partitions(delta, parts, max_part)
            for delta in delta_support(parts, max_part)
        )
        assert total == math.comb(max_part + parts - 1, parts)

    @given(
        parts=st.integers(min_value=1, max_value=7),
        max_part=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60)
    def test_phi_positive_on_support(self, parts, max_part):
        for delta in delta_support(parts, max_part):
            assert bounded_partitions(delta, parts, max_part) >= 1

    @given(
        total=st.integers(min_value=0, max_value=30),
        parts=st.integers(min_value=1, max_value=6),
        max_part=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100)
    def test_phi_zero_off_support(self, total, parts, max_part):
        if not parts <= total <= parts * max_part:
            assert bounded_partitions(total, parts, max_part) == 0


class TestEndToEndProperty:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_monte_carlo_tracks_exact_sc_value(self, seed):
        """Whatever the seed, the SC estimate's CI covers 1/6."""
        from repro.core import SC, estimate_non_manifestation

        result = estimate_non_manifestation(SC, n=2, trials=40_000, seed=seed)
        interval = wilson_interval(result.successes, result.trials, 0.9999)
        assert interval.contains(1 / 6)
