"""Tests for repro.sim.executor: the canonical-bug machine experiment (E10)."""

from __future__ import annotations

import pytest

from repro.sim import run_canonical_bug
from repro.sim.scheduler import LockStepScheduler


class TestRunCanonicalBug:
    def test_final_values_bounded_by_threads(self):
        result = run_canonical_bug("SC", threads=2, trials=200, seed=1, body_length=4)
        assert sum(result.final_values.values()) == 200
        assert all(1 <= value <= 2 for value in result.final_values)

    def test_manifestation_counts_short_counters(self):
        result = run_canonical_bug("TSO", threads=2, trials=200, seed=2, body_length=4)
        expected = sum(count for value, count in result.final_values.items() if value < 2)
        assert result.manifestations == expected

    def test_survival_complements_manifestation(self):
        result = run_canonical_bug("WO", threads=2, trials=150, seed=3, body_length=4)
        assert result.survival.estimate + result.manifestation.estimate == pytest.approx(1.0)

    def test_reproducible(self):
        a = run_canonical_bug("TSO", threads=2, trials=100, seed=7, body_length=4)
        b = run_canonical_bug("TSO", threads=2, trials=100, seed=7, body_length=4)
        assert a.final_values == b.final_values

    def test_weak_models_manifest_more_than_sc(self):
        """The paper's qualitative claim on the machine substrate."""
        sc = run_canonical_bug("SC", threads=2, trials=1500, seed=11, body_length=6)
        wo = run_canonical_bug("WO", threads=2, trials=1500, seed=11, body_length=6)
        tso = run_canonical_bug("TSO", threads=2, trials=1500, seed=11, body_length=6)
        assert sc.manifestation.high < tso.manifestation.low
        assert sc.manifestation.high < wo.manifestation.low

    def test_more_threads_manifest_more(self):
        two = run_canonical_bug("SC", threads=2, trials=1000, seed=13, body_length=4)
        four = run_canonical_bug("SC", threads=4, trials=1000, seed=13, body_length=4)
        assert four.manifestation.estimate > two.manifestation.estimate

    def test_fences_reduce_manifestation_under_wo(self):
        """§7: fences pin the critical pair, shrinking the window under WO."""
        loose = run_canonical_bug("WO", threads=2, trials=2500, seed=17, body_length=6)
        fenced = run_canonical_bug(
            "WO", threads=2, trials=2500, seed=17, body_length=6, fenced=True
        )
        assert fenced.manifestation.estimate <= loose.manifestation.estimate

    def test_custom_scheduler(self):
        result = run_canonical_bug(
            "SC", threads=2, trials=100, seed=19, body_length=2,
            scheduler=LockStepScheduler(),
        )
        # Lock-step identical threads race deterministically: all trials agree.
        assert len(result.final_values) == 1

    def test_core_options_forwarded(self):
        slow_drain = run_canonical_bug(
            "TSO", threads=2, trials=400, seed=23, body_length=4, drain_probability=0.05
        )
        fast_drain = run_canonical_bug(
            "TSO", threads=2, trials=400, seed=23, body_length=4, drain_probability=0.95
        )
        # Slow drains keep the critical store invisible longer: more bugs.
        assert slow_drain.manifestation.estimate >= fast_drain.manifestation.estimate

    def test_validation(self):
        with pytest.raises(ValueError):
            run_canonical_bug("SC", threads=1, trials=10)
        with pytest.raises(ValueError):
            run_canonical_bug("SC", threads=2, trials=0)

    def test_str_summary(self):
        result = run_canonical_bug("SC", threads=2, trials=50, seed=29, body_length=2)
        text = str(result)
        assert "SC" in text and "n=2" in text
