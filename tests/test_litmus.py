"""Tests for repro.litmus: legal reorderings, enumeration, verdicts (E11)."""

from __future__ import annotations

import pytest

from repro.core import PAPER_MODELS, PSO, SC, TSO, WO
from repro.errors import LitmusError
from repro.litmus import (
    ALL_TESTS,
    LitmusTest,
    check_all,
    check_test,
    enumerate_outcomes,
    get_test,
    legal_reorderings,
    outcome_to_string,
)
from repro.sim import AddImmediate, Load, Store, ThreadProgram


class TestLegalReorderings:
    def test_sc_only_identity(self):
        program = ThreadProgram("T0", (Store("x", value=1), Load("r1", "y")))
        orders = legal_reorderings(program, SC)
        assert len(orders) == 1
        assert orders[0] == program.operations

    def test_tso_allows_load_before_store(self):
        program = ThreadProgram("T0", (Store("x", value=1), Load("r1", "y")))
        orders = legal_reorderings(program, TSO)
        assert len(orders) == 2

    def test_tso_forbids_store_past_load(self):
        program = ThreadProgram("T0", (Load("r1", "y"), Store("x", value=1)))
        assert len(legal_reorderings(program, TSO)) == 1

    def test_same_address_never_reorders(self):
        program = ThreadProgram("T0", (Store("x", value=1), Load("r1", "x")))
        for model in PAPER_MODELS:
            assert len(legal_reorderings(program, model)) == 1

    def test_register_dependency_blocks_reordering(self):
        program = ThreadProgram("T0", (Load("r1", "x"), Store("y", src="r1")))
        assert len(legal_reorderings(program, WO)) == 1

    def test_wo_allows_all_independent_permutations(self):
        program = ThreadProgram(
            "T0", (Load("r1", "x"), Load("r2", "y"), Store("z", value=1))
        )
        assert len(legal_reorderings(program, WO)) == 6

    def test_pso_store_store(self):
        program = ThreadProgram("T0", (Store("x", value=1), Store("y", value=2)))
        assert len(legal_reorderings(program, TSO)) == 1
        assert len(legal_reorderings(program, PSO)) == 2

    def test_local_operations_rejected(self):
        program = ThreadProgram("T0", (AddImmediate("r1", "r1", 1),))
        with pytest.raises(LitmusError):
            legal_reorderings(program, SC)

    def test_identity_always_present(self, paper_model):
        program = ThreadProgram(
            "T0", (Store("a", value=1), Load("r1", "b"), Store("c", value=2))
        )
        orders = legal_reorderings(program, paper_model)
        assert program.operations in orders


class TestEnumerateOutcomes:
    def test_single_thread_single_outcome(self):
        program = ThreadProgram("T0", (Store("x", value=1), Load("r1", "x")))
        outcomes = enumerate_outcomes([program], SC)
        assert outcomes == {(("T0:r1", 1),)}

    def test_initial_memory_respected(self):
        program = ThreadProgram("T0", (Load("r1", "x"),))
        outcomes = enumerate_outcomes([program], SC, initial_memory={"x": 5})
        assert outcomes == {(("T0:r1", 5),)}

    def test_observed_locations_included(self):
        program = ThreadProgram("T0", (Store("x", value=3),))
        outcomes = enumerate_outcomes([program], SC, observed_locations=("x", "y"))
        assert outcomes == {(("mem:x", 3), ("mem:y", 0))}

    def test_outcomes_monotone_in_model_weakness(self):
        """A weaker model reaches a superset of outcomes for every test."""
        for test in ALL_TESTS:
            previous: set | None = None
            for model in PAPER_MODELS:  # strongest first
                outcomes = enumerate_outcomes(
                    list(test.programs), model,
                    initial_memory=test.initial_memory,
                    observed_locations=test.observed_locations,
                )
                if previous is not None:
                    assert previous <= outcomes, f"{test.name} under {model.name}"
                previous = outcomes

    def test_empty_program_list_rejected(self):
        with pytest.raises(LitmusError):
            enumerate_outcomes([], SC)

    def test_store_from_register(self):
        programs = [
            ThreadProgram("T0", (Load("r1", "x"), Store("y", src="r1"))),
        ]
        outcomes = enumerate_outcomes(programs, SC, initial_memory={"x": 9},
                                      observed_locations=("y",))
        assert outcomes == {(("T0:r1", 9), ("mem:y", 9))}


class TestVerdicts:
    def test_every_pair_matches_literature(self):
        """The headline E11 assertion: 24/24 verdicts agree."""
        for verdict in check_all():
            assert verdict.matches_literature, str(verdict)

    @pytest.mark.parametrize("name,model,expected", [
        ("SB", SC, False), ("SB", TSO, True),
        ("MP", TSO, False), ("MP", PSO, True),
        ("LB", PSO, False), ("LB", WO, True),
        ("CoRR", WO, False),
        ("2+2W", TSO, False), ("2+2W", PSO, True),
        ("IRIW", PSO, False), ("IRIW", WO, True),
        ("S", TSO, False), ("S", PSO, True),
        ("R", SC, False), ("R", TSO, True),
        ("WRC", PSO, False), ("WRC", WO, True),
    ])
    def test_selected_verdicts(self, name, model, expected):
        verdict = check_test(get_test(name), model)
        assert verdict.relaxed_reachable == expected

    def test_verdict_str(self):
        verdict = check_test(get_test("SB"), SC)
        assert "SB" in str(verdict) and "forbidden" in str(verdict)

    def test_get_test_unknown(self):
        with pytest.raises(KeyError):
            get_test("nonsense")

    def test_get_test_case_insensitive(self):
        assert get_test("sb").name == "SB"

    def test_outcome_to_string(self):
        assert outcome_to_string((("T0:r1", 0), ("T1:r2", 1))) == "T0:r1=0 T1:r2=1"

    def test_check_all_subset(self):
        verdicts = check_all(tests=[get_test("SB")], models=(SC, TSO))
        assert len(verdicts) == 2
