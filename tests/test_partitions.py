"""Tests for repro.core.partitions: the φ(x, y, z) combinatorics."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    balanced_partition,
    bounded_partitions,
    partitions_in_box,
    phi_positive_range,
)
from repro.core.partitions import delta_support


class TestPartitionsInBox:
    def test_empty_partition(self):
        assert partitions_in_box(0, 0, 0) == 1
        assert partitions_in_box(0, 5, 5) == 1

    def test_impossible(self):
        assert partitions_in_box(1, 0, 5) == 0
        assert partitions_in_box(1, 5, 0) == 0
        assert partitions_in_box(-1, 2, 2) == 0

    def test_small_values(self):
        # Partitions of 4 into at most 2 parts each at most 3: 3+1, 2+2 -> 2.
        assert partitions_in_box(4, 2, 3) == 2
        # Partitions of 3 into at most 3 parts each at most 3: 3, 2+1, 1+1+1.
        assert partitions_in_box(3, 3, 3) == 3

    def test_unbounded_box_matches_partition_function(self):
        # p(n) for n = 0..9: classic values.
        classic = [1, 1, 2, 3, 5, 7, 11, 15, 22, 30]
        for n, expected in enumerate(classic):
            assert partitions_in_box(n, n, n) == expected

    def test_box_symmetry(self):
        """Conjugation symmetry: an a×b box equals a b×a box."""
        for total in range(12):
            assert partitions_in_box(total, 3, 5) == partitions_in_box(total, 5, 3)

    def test_gaussian_binomial_total(self):
        """Σ_n p(n | k×z box) = C(k+z, k) (Gaussian binomial at q=1)."""
        k, z = 4, 3
        total = sum(partitions_in_box(n, k, z) for n in range(k * z + 1))
        assert total == math.comb(k + z, k)


class TestBoundedPartitions:
    def test_paper_examples(self):
        assert bounded_partitions(5, 2, 4) == 2  # 1+4, 2+3
        assert bounded_partitions(6, 2, 3) == 1  # 3+3

    def test_zero_parts(self):
        assert bounded_partitions(0, 0, 5) == 1
        assert bounded_partitions(3, 0, 5) == 0

    def test_out_of_range_is_zero(self):
        assert bounded_partitions(1, 2, 5) == 0  # below q
        assert bounded_partitions(11, 2, 5) == 0  # above qz

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            bounded_partitions(5, -1, 3)

    def test_brute_force_cross_check(self):
        """Exhaustive multiset enumeration for small parameters."""
        from itertools import combinations_with_replacement

        for parts in range(1, 5):
            for max_part in range(1, 5):
                counts: dict[int, int] = {}
                for combo in combinations_with_replacement(range(1, max_part + 1), parts):
                    total = sum(combo)
                    counts[total] = counts.get(total, 0) + 1
                for total in range(0, parts * max_part + 2):
                    assert bounded_partitions(total, parts, max_part) == counts.get(total, 0), (
                        f"phi({total}, {parts}, {max_part})"
                    )

    def test_row_sums_to_arrangements(self):
        """Σ_δ φ(δ, q, µ) = C(µ+q-1, q): every LD/ST arrangement has one ∆."""
        for q in range(1, 6):
            for mu in range(1, 6):
                total = sum(bounded_partitions(delta, q, mu) for delta in delta_support(q, mu))
                assert total == math.comb(mu + q - 1, q)


class TestClaim44Bound:
    def test_phi_at_least_one_in_range(self):
        """The paper's Claim 4.4 bound: φ ≥ 1 for q ≤ δ ≤ µq."""
        for q in range(1, 7):
            for mu in range(1, 7):
                for delta in delta_support(q, mu):
                    assert bounded_partitions(delta, q, mu) >= 1

    def test_phi_positive_range_predicate(self):
        assert phi_positive_range(5, 2, 4)
        assert not phi_positive_range(1, 2, 4)
        assert not phi_positive_range(9, 2, 4)
        assert phi_positive_range(0, 0, 4)

    def test_balanced_partition_is_valid_witness(self):
        for q in range(1, 7):
            for mu in range(1, 7):
                for delta in delta_support(q, mu):
                    witness = balanced_partition(delta, q, mu)
                    assert len(witness) == q
                    assert sum(witness) == delta
                    assert all(1 <= part <= mu for part in witness)

    def test_balanced_partition_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            balanced_partition(100, 2, 3)
        with pytest.raises(ValueError):
            balanced_partition(1, 0, 3)

    def test_balanced_partition_zero_case(self):
        assert balanced_partition(0, 0, 3) == []
