"""The vectorized machine backend: §2.2 race equivalence and guard rails.

The whole-array machine kernel replays the store-buffer timeline of the
scalar :class:`repro.sim.Machine` with per-(trial, core) state arrays.
The backends draw different stream shapes, so the contract is
*statistical* equivalence (two-sample z at 0.999) — plus the structural
invariants both must share: worker-invariant numbers for a fixed
``(seed, shards)``, manifestation only ever with window overlap, and the
documented restrictions (SC/TSO/PSO, racy variant, geometric launches)
raising :class:`~repro.errors.SimulationError` rather than silently
computing something else.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels.validation import assert_equivalent_proportions
from repro.sim import run_canonical_bug
from repro.sim.measurement import measure_critical_windows
from repro.sim.scheduler import GeometricLaunchScheduler, LockStepScheduler

SCALAR_TRIALS = 1_500
VECTOR_TRIALS = 12_000


def _manifestations(result) -> int:
    return result.manifestations


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("model", ["SC", "TSO", "PSO"])
    def test_canonical_bug_backends_agree(self, model):
        scalar = run_canonical_bug(model, 2, SCALAR_TRIALS, seed=101,
                                   backend="scalar")
        vectorized = run_canonical_bug(model, 2, VECTOR_TRIALS, seed=102,
                                       backend="vectorized")
        assert_equivalent_proportions(
            _manifestations(scalar), SCALAR_TRIALS,
            _manifestations(vectorized), VECTOR_TRIALS,
            context=f"{model} canonical-bug manifestation",
        )

    @pytest.mark.parametrize("model", ["TSO", "PSO"])
    def test_window_overlap_rates_agree(self, model):
        scalar = measure_critical_windows(model, 2, SCALAR_TRIALS, seed=103,
                                          backend="scalar")
        vectorized = measure_critical_windows(model, 2, VECTOR_TRIALS,
                                              seed=104, backend="vectorized")
        assert_equivalent_proportions(
            scalar.overlap_trials, scalar.trials,
            vectorized.overlap_trials, vectorized.trials,
            context=f"{model} window-overlap rate",
        )
        # Mean window durations must agree to a few percent as well.
        assert np.isclose(np.mean(scalar.durations),
                          np.mean(vectorized.durations), rtol=0.1)

    def test_sc_windows_are_deterministic_on_both_backends(self):
        for backend in ("scalar", "vectorized"):
            measurement = measure_critical_windows("SC", 2, 400, seed=105,
                                                   backend=backend)
            assert measurement.deterministic, backend

    def test_custom_core_options_accepted(self):
        scalar = run_canonical_bug("PSO", 3, 600, seed=106, body_length=12,
                                   backend="scalar", drain_probability=0.3,
                                   buffer_capacity=2)
        vectorized = run_canonical_bug("PSO", 3, 6_000, seed=107,
                                       body_length=12, backend="vectorized",
                                       drain_probability=0.3,
                                       buffer_capacity=2)
        assert_equivalent_proportions(
            _manifestations(scalar), 600,
            _manifestations(vectorized), 6_000,
            context="PSO stress (3 threads, capacity 2, drain 0.3)",
        )


class TestStructuralInvariants:
    def test_vectorized_is_worker_invariant(self):
        serial = run_canonical_bug("TSO", 2, 4_000, seed=21, shards=4,
                                   workers=1, backend="vectorized")
        parallel = run_canonical_bug("TSO", 2, 4_000, seed=21, shards=4,
                                     workers=2, backend="vectorized")
        assert serial.final_values == parallel.final_values

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_manifestation_implies_overlap(self, backend):
        measurement = measure_critical_windows("TSO", 2, 3_000, seed=22,
                                               backend=backend)
        assert measurement.manifest_without_overlap == 0

    def test_backend_distinguished_by_fingerprint_not_label(self, tmp_path):
        # Since the v2 checkpoint keys, the backend is carried by the
        # kernel fingerprint (the two backends are different callables),
        # not by a label salt — the label stays backend-free while the
        # two backends' run keys differ.
        path = tmp_path / "manifest.json"
        run_canonical_bug("TSO", 2, 400, seed=23, backend="vectorized",
                          manifest=path)
        run_canonical_bug("TSO", 2, 400, seed=23, backend="scalar",
                          manifest=path)
        runs = json.loads(path.read_text())["runs"]
        labels = [run["label"] for run in runs]
        assert all(":backend=" not in label for label in labels)
        assert labels[0] == labels[1]
        assert runs[0]["plan"]["key"] != runs[1]["plan"]["key"]


class TestGuardRails:
    def test_wo_is_not_vectorizable(self):
        with pytest.raises(SimulationError, match="WO"):
            run_canonical_bug("WO", 2, 100, backend="vectorized")

    @pytest.mark.parametrize("variant", ["fenced", "atomic"])
    def test_protected_variants_refuse_vectorized(self, variant):
        with pytest.raises(SimulationError):
            run_canonical_bug("TSO", 2, 100, backend="vectorized",
                              **{variant: True})

    def test_non_geometric_scheduler_refused(self):
        with pytest.raises(SimulationError):
            run_canonical_bug("TSO", 2, 100, backend="vectorized",
                              scheduler=LockStepScheduler())

    def test_unknown_core_options_refused(self):
        with pytest.raises(SimulationError):
            run_canonical_bug("TSO", 2, 100, backend="vectorized",
                              exotic_knob=1)

    def test_scheduler_beta_is_honoured(self):
        """A non-default launch spread changes the vectorized numbers."""
        default = run_canonical_bug("TSO", 2, 4_000, seed=31,
                                    backend="vectorized")
        spread = run_canonical_bug("TSO", 2, 4_000, seed=31,
                                   backend="vectorized",
                                   scheduler=GeometricLaunchScheduler(0.9))
        assert default.final_values != spread.final_values
