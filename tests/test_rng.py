"""Tests for repro.stats.rng: seeding, splitting, and samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import RandomSource, iter_batches, spawn_sources


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = RandomSource(123)
        b = RandomSource(123)
        assert [a.geometric(0.5) for _ in range(20)] == [b.geometric(0.5) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.geometric(0.5) for _ in range(50)] != [b.geometric(0.5) for _ in range(50)]

    def test_spawn_children_are_independent_of_parent_order(self):
        children_first = RandomSource(9).spawn(3)
        values_first = [child.uniform_int(0, 10**9) for child in children_first]
        parent = RandomSource(9)
        parent.uniform_int(0, 10**9)  # consuming parent randomness...
        children_second = parent.spawn(3)
        values_second = [child.uniform_int(0, 10**9) for child in children_second]
        assert values_first == values_second  # ...does not perturb children

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            RandomSource(0).spawn(-1)

    def test_spawn_zero_is_empty(self):
        assert RandomSource(0).spawn(0) == []

    def test_child_differs_from_next_child(self):
        parent = RandomSource(4)
        first = parent.child()
        second = parent.child()
        assert [first.geometric(0.5) for _ in range(20)] != [
            second.geometric(0.5) for _ in range(20)
        ]

    def test_spawn_sources_helper(self):
        sources = spawn_sources(42, 4)
        assert len(sources) == 4
        assert all(isinstance(source, RandomSource) for source in sources)


class TestBernoulli:
    def test_degenerate_zero(self, source):
        assert not any(source.bernoulli(0.0) for _ in range(50))

    def test_degenerate_one(self, source):
        assert all(source.bernoulli(1.0) for _ in range(50))

    def test_degenerate_probabilities_consume_no_randomness(self):
        a = RandomSource(7)
        b = RandomSource(7)
        for _ in range(10):
            a.bernoulli(0.0)
            a.bernoulli(1.0)
        assert a.geometric(0.5) == b.geometric(0.5)

    def test_mean_close_to_probability(self, source):
        count = sum(source.bernoulli(0.3) for _ in range(20_000))
        assert abs(count / 20_000 - 0.3) < 0.02

    def test_array_shape_and_dtype(self, source):
        flips = source.bernoulli_array(0.5, (3, 4))
        assert flips.shape == (3, 4)
        assert flips.dtype == bool

    def test_array_degenerate(self, source):
        assert not source.bernoulli_array(0.0, 10).any()
        assert source.bernoulli_array(1.0, 10).all()


class TestGeometric:
    def test_zero_beta_is_constant_zero(self, source):
        assert all(source.geometric(0.0) == 0 for _ in range(20))

    def test_values_non_negative(self, source):
        assert all(source.geometric(0.7) >= 0 for _ in range(200))

    def test_pmf_matches_definition(self, source):
        """Pr[k] = (1-beta) beta^k: check k = 0 and k = 1 frequencies."""
        draws = source.geometric_array(0.5, 40_000)
        zero_fraction = float((draws == 0).mean())
        one_fraction = float((draws == 1).mean())
        assert abs(zero_fraction - 0.5) < 0.01
        assert abs(one_fraction - 0.25) < 0.01

    def test_mean_matches_beta_over_one_minus_beta(self, source):
        draws = source.geometric_array(0.5, 40_000)
        assert abs(float(draws.mean()) - 1.0) < 0.05  # E = beta/(1-beta) = 1

    def test_invalid_beta_rejected(self, source):
        with pytest.raises(ValueError):
            source.geometric(1.0)
        with pytest.raises(ValueError):
            source.geometric(-0.1)
        with pytest.raises(ValueError):
            source.geometric_array(1.5, 4)

    def test_array_dtype(self, source):
        assert source.geometric_array(0.5, 8).dtype == np.int64


class TestUniformInt:
    def test_bounds_inclusive(self, source):
        draws = {source.uniform_int(2, 4) for _ in range(200)}
        assert draws == {2, 3, 4}

    def test_single_point(self, source):
        assert source.uniform_int(5, 5) == 5

    def test_empty_range_rejected(self, source):
        with pytest.raises(ValueError):
            source.uniform_int(3, 2)


class TestTypeArray:
    def test_shape_and_bias(self, source):
        types = source.type_array(0.8, 20_000)
        assert types.shape == (20_000,)
        assert abs(float(types.mean()) - 0.8) < 0.02


class TestIterBatches:
    def test_exact_cover(self):
        assert list(iter_batches(10, 4)) == [4, 4, 2]

    def test_single_batch(self):
        assert list(iter_batches(3, 100)) == [3]

    def test_zero_total(self):
        assert list(iter_batches(0, 5)) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(iter_batches(-1, 5))
        with pytest.raises(ValueError):
            list(iter_batches(5, 0))
