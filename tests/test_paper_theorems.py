"""Integration suite: every numbered claim of the paper, asserted end to end.

This is the reproduction's contract.  Each test cites the paper artifact it
checks; together they cover Table 1, Figures 1–2 (structurally), Claims 4.3
and B.2, Lemma 4.2, Claim 4.4, Theorems 4.1, 5.1, 6.1, 6.2, 6.3 and
Corollary 5.2.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    SettlingProcess,
    c_constant,
    disjointness_iid,
    disjointness_probability,
    estimate_disjointness,
    estimate_non_manifestation,
    l_lower_bound_paper,
    log_non_manifestation,
    non_manifestation_probability,
    program_from_types,
    run_length_distribution,
    steady_state_store_fraction,
    table1_rows,
    tso_two_thread_bounds,
    tso_window_distribution,
    tso_window_lower_bound,
    tso_window_upper_bound,
    window_distribution,
    wo_window_distribution,
)
from repro.litmus import check_all
from repro.stats import RandomSource


class TestTable1:
    def test_relaxation_matrix(self):
        """Table 1 verbatim."""
        expected = {
            "SC": (False, False, False, False),
            "TSO": (False, True, False, False),
            "PSO": (True, True, False, False),
            "WO": (True, True, True, True),
        }
        for row in table1_rows():
            name = row["Name"]
            assert (
                row["ST/ST"], row["ST/LD"], row["LD/ST"], row["LD/LD"]
            ) == expected[name], name


class TestFigure1:
    def test_settling_under_tso_reproduces_trace_structure(self):
        """Figure 1's mechanics: loads settle upward past stores, one round
        per instruction, critical store pinned below the critical load."""
        program = program_from_types("SLSSS")
        result = SettlingProcess(TSO).settle(program, RandomSource(11), record_trace=True)
        assert len(result.trace) == 7
        # Stores never moved: their relative order is program order.
        stores = [i for i in range(1, 8) if program.type_of(i).mnemonic == "ST"
                  and not program.instruction(i).is_critical]
        positions = [result.position_of(i) for i in stores]
        assert positions == sorted(positions)


class TestFigure2:
    def test_instance_probability(self):
        from repro.viz import shift_outcome_probability

        assert shift_outcome_probability([8, 0, 2]) == pytest.approx(2.0**-13)


class TestTheorem41:
    def test_sc(self):
        dist = window_distribution(SC)
        assert dist.pmf(0) == 1.0

    def test_wo_closed_form(self):
        dist = wo_window_distribution()
        assert dist.pmf(0) == pytest.approx(2 / 3)
        for gamma in range(1, 12):
            assert dist.pmf(gamma) == pytest.approx(2.0**-gamma / 3)

    def test_tso_bounds(self):
        dist = tso_window_distribution()
        assert dist.pmf(0) == pytest.approx(2 / 3, abs=1e-9)
        for gamma in range(1, 12):
            assert (
                tso_window_lower_bound(gamma) - 1e-12
                <= dist.pmf(gamma)
                <= tso_window_upper_bound(gamma) + 1e-12
            )

    def test_decay_rates(self):
        """'2^-γ in WO, (2^-γ)² in TSO, 0 in SC' — the stated shape."""
        wo = window_distribution(WO)
        tso = window_distribution(TSO)
        tso_ratios = []
        for gamma in range(2, 10):
            assert wo.pmf(gamma) / wo.pmf(gamma - 1) == pytest.approx(0.5, abs=0.01)
            tso_ratios.append(tso.pmf(gamma) / tso.pmf(gamma - 1))
        # TSO's ratio approaches 1/4 from above (the R(γ)·2^{-γ} slack decays).
        assert tso_ratios == sorted(tso_ratios, reverse=True)
        assert tso_ratios[-1] == pytest.approx(0.25, abs=0.01)
        assert all(0.24 < ratio < 0.30 for ratio in tso_ratios)


class TestClaim43:
    def test_steady_state(self):
        assert steady_state_store_fraction() == pytest.approx(2 / 3)


class TestLemma42:
    def test_l0_exact(self):
        assert run_length_distribution().pmf(0) == pytest.approx(1 / 3, abs=1e-9)

    def test_lower_bound(self):
        runs = run_length_distribution()
        for mu in range(1, 24):
            assert runs.pmf(mu) >= (4 / 7) * 2.0**-mu - 1e-12

    def test_missing_probability_r(self):
        """Claim B.1: the slack R = Σ(Pr[L_µ] − bound) equals 2/21."""
        runs = run_length_distribution()
        slack = sum(
            runs.pmf(mu) - l_lower_bound_paper(mu) for mu in range(1, 60)
        )
        assert slack == pytest.approx(2 / 21, abs=1e-6)


class TestTheorem51:
    def test_exact_matches_simulation(self):
        lengths = [3, 2, 5]
        exact = disjointness_probability(lengths)
        empirical = estimate_disjointness(lengths, trials=80_000, seed=101)
        assert empirical.agrees_with(exact)


class TestCorollary52:
    def test_c2(self):
        assert c_constant(2) == pytest.approx(8 / 3)

    def test_range(self):
        for n in range(1, 25):
            assert 2.0 <= c_constant(n) <= 4.0


class TestTheorem61:
    def test_collapses_permutation_sum(self):
        """For degenerate identical marginals the n!-fold sum collapses."""
        from repro.core import point_mass

        for n in (2, 3, 4):
            assert disjointness_iid(point_mass(1), n).value == pytest.approx(
                disjointness_probability([3] * n)
            )


class TestTheorem62:
    def test_sc(self):
        assert non_manifestation_probability(SC).value == pytest.approx(1 / 6)
        assert 1 / 6 == pytest.approx(0.1666, abs=1e-4)  # the paper truncates

    def test_tso(self):
        lower, upper = tso_two_thread_bounds()
        assert (lower, upper) == pytest.approx((0.13152, 0.13681), abs=5e-5)
        assert lower < non_manifestation_probability(TSO).value < upper

    def test_wo(self):
        assert non_manifestation_probability(WO).value == pytest.approx(7 / 54)
        assert 7 / 54 == pytest.approx(0.1296, abs=5e-5)

    def test_monte_carlo_agreement(self, paper_model):
        empirical = estimate_non_manifestation(paper_model, n=2, trials=100_000, seed=103)
        exact = non_manifestation_probability(paper_model).value
        assert empirical.agrees_with(exact)


class TestTheorem63:
    def test_universal_exponent(self):
        """Pr[A] = e^{-n²(1+o(1))}: normalised exponents approach a common
        constant and the SC/WO ratio approaches 1."""
        ns = (8, 32, 128)
        for model in PAPER_MODELS:
            exponents = [
                -log_non_manifestation(model, n, allow_independent_approximation=True)
                / n**2
                for n in ns
            ]
            # Converging, and within 10% of the limit by n = 128.
            assert abs(exponents[-1] - 1.5 * math.log(2)) < 0.15 * 1.5 * math.log(2)

    def test_gap_vanishes_relative_to_risk(self):
        ratio_small = log_non_manifestation(SC, 2) / log_non_manifestation(WO, 2)
        ratio_large = log_non_manifestation(SC, 128) / log_non_manifestation(WO, 128)
        assert ratio_small < 0.9
        assert ratio_large > 0.99

    def test_claim_b2(self, paper_model):
        """Claim B.2: Pr[B_0] ≥ 1/2 in every memory model."""
        assert window_distribution(paper_model).pmf(0) >= 0.5


class TestSectionTwoSemantics:
    def test_litmus_matrix(self):
        assert all(verdict.matches_literature for verdict in check_all())

    def test_bug_manifests_even_under_sc(self):
        """§2.2: 'such bugs can manifest in any memory model, even SC.'"""
        assert non_manifestation_probability(SC).value < 1.0


class TestFootnote4:
    def test_pso_result_similar_to_tso(self):
        """Footnote 4: PSO admits 'a similar result' — its Pr[A] sits between
        TSO's and SC's, far closer to the weak cluster than to SC."""
        pso = non_manifestation_probability(PSO).value
        tso = non_manifestation_probability(TSO).value
        sc = non_manifestation_probability(SC).value
        assert tso < pso < sc
