"""Property-based checks of the shift kernel against Theorem 5.1 / Cor 5.2.

Hypothesis drives the *parameters* (segment-length vectors γ̄, up to the
paper's n = 4 regime); each example's Monte-Carlo randomness comes from a
``RandomSource`` seeded deterministically by those parameters, so a
failing example is exactly reproducible and the suite cannot flake on a
re-draw.  Two laws are pinned:

* **Theorem 5.1** — the kernel's disjointness estimate must contain the
  exact order-sum probability within its 0.9999 Wilson interval;
* **Corollary 5.2** — at n = 2 and β = 1/2 the exact probability is
  ``(8/3) · 2^-3 · (2^-γ₁ + 2^-γ₂)`` (the c(2) = 8/3 closed form), which
  the analytic routine must hit *exactly* and the kernel in expectation.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.shift_analytic import disjointness_probability
from repro.kernels import shift_disjoint_batch
from repro.stats import RandomSource
from repro.stats.intervals import wilson_interval

TRIALS = 30_000
#: Per-example coverage: with ~15 examples per property a spurious
#: failure occurs once per ~650 full runs even at the Wilson nominal.
CONFIDENCE = 0.9999

PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _kernel_estimate(lengths: tuple[int, ...], beta: float):
    """Deterministic per-parameters estimate (seeded by the example)."""
    source = RandomSource((len(lengths), *lengths, int(beta * 100)))
    successes = shift_disjoint_batch(source, TRIALS, lengths, beta)
    return wilson_interval(successes, TRIALS, CONFIDENCE)


@PROPERTY_SETTINGS
@given(lengths=st.lists(st.integers(min_value=0, max_value=6),
                        min_size=2, max_size=4).map(tuple))
def test_kernel_matches_theorem_51(lengths):
    exact = disjointness_probability(list(lengths), 0.5)
    interval = _kernel_estimate(lengths, 0.5)
    assert interval.contains(exact), (
        f"γ̄={lengths}: kernel CI [{interval.low:.5f}, {interval.high:.5f}] "
        f"misses the Theorem 5.1 value {exact:.5f}"
    )


@PROPERTY_SETTINGS
@given(gamma_1=st.integers(min_value=0, max_value=8),
       gamma_2=st.integers(min_value=0, max_value=8))
def test_corollary_52_closed_form_is_exact(gamma_1, gamma_2):
    """c(2) = 8/3: the analytic order sum collapses to the closed form."""
    exact = disjointness_probability([gamma_1, gamma_2], 0.5)
    closed_form = (8.0 / 3.0) * 2.0 ** -3 * (2.0 ** -gamma_1 + 2.0 ** -gamma_2)
    assert math.isclose(exact, closed_form, rel_tol=1e-12)


@PROPERTY_SETTINGS
@given(gamma=st.tuples(st.integers(min_value=0, max_value=5),
                       st.integers(min_value=0, max_value=5)))
def test_kernel_meets_corollary_52_in_expectation(gamma):
    closed_form = (8.0 / 3.0) * 2.0 ** -3 * (2.0 ** -gamma[0]
                                             + 2.0 ** -gamma[1])
    interval = _kernel_estimate(gamma, 0.5)
    assert interval.contains(closed_form), (
        f"γ̄={gamma}: kernel CI [{interval.low:.5f}, {interval.high:.5f}] "
        f"misses the Corollary 5.2 value {closed_form:.5f}"
    )
