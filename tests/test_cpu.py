"""Tests for repro.sim.cpu: the per-model core pipelines."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import (
    AddImmediate,
    Fence,
    Load,
    LoadImmediate,
    PSOCore,
    SCCore,
    Store,
    ThreadProgram,
    TSOCore,
    WOCore,
    SharedMemory,
    make_core,
)
from repro.stats import RandomSource


def run_core(core, max_cycles=10_000):
    cycle = 0
    while not core.done:
        if not core.retired:
            core.step(cycle)
        core.background_step(cycle)
        cycle += 1
        assert cycle < max_cycles, "core did not finish"
    core.flush(cycle)
    return cycle


class TestSCCore:
    def test_runs_in_program_order(self, source):
        memory = SharedMemory(log_accesses=True)
        program = ThreadProgram(
            "T0",
            (Store("x", value=1), Load("r1", "x"), Store("y", value=2)),
        )
        core = SCCore("T0", program, memory, source)
        run_core(core)
        assert memory.peek("x") == 1
        assert memory.peek("y") == 2
        assert core.registers["r1"] == 1
        kinds = [(record.kind, record.location) for record in memory.log]
        assert kinds == [("COMMIT", "x"), ("READ", "x"), ("COMMIT", "y")]

    def test_local_arithmetic(self, source):
        program = ThreadProgram(
            "T0",
            (LoadImmediate("r1", 5), AddImmediate("r2", "r1", 3)),
        )
        core = SCCore("T0", program, SharedMemory(), source)
        run_core(core)
        assert core.registers["r2"] == 8

    def test_no_pending_stores(self, source):
        program = ThreadProgram("T0", (Store("x", value=1),))
        core = SCCore("T0", program, SharedMemory(), source)
        assert core.pending_stores() == 0
        run_core(core)
        assert core.pending_stores() == 0


class TestTSOCore:
    def test_store_buffer_delays_commit(self):
        memory = SharedMemory()
        program = ThreadProgram("T0", (Store("x", value=1), Load("r1", "y")))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0)
        core.step(0)  # store buffered
        assert memory.peek("x") == 0
        assert core.pending_stores() == 1
        core.step(1)  # load completes while the store is still buffered
        assert core.registers["r1"] == 0
        core.flush(2)
        assert memory.peek("x") == 1

    def test_store_to_load_forwarding(self):
        memory = SharedMemory(initial={"x": 99})
        program = ThreadProgram("T0", (Store("x", value=7), Load("r1", "x")))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0)
        core.step(0)
        core.step(1)
        assert core.registers["r1"] == 7  # buffered value, not memory's 99

    def test_forwarding_returns_newest_entry(self):
        memory = SharedMemory()
        program = ThreadProgram(
            "T0", (Store("x", value=1), Store("x", value=2), Load("r1", "x"))
        )
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0,
                       buffer_capacity=4)
        core.step(0)
        core.step(1)
        core.step(2)
        assert core.registers["r1"] == 2

    def test_fifo_drain_order(self):
        memory = SharedMemory(log_accesses=True)
        program = ThreadProgram("T0", (Store("x", value=1), Store("y", value=2)))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0)
        core.step(0)
        core.step(1)
        core.flush(2)
        commits = [record.location for record in memory.log]
        assert commits == ["x", "y"]

    def test_fence_drains_buffer(self):
        memory = SharedMemory()
        program = ThreadProgram("T0", (Store("x", value=1), Fence(), Load("r1", "y")))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0)
        core.step(0)
        assert core.pending_stores() == 1
        core.step(1)  # fence stalls, draining one entry
        assert core.pending_stores() == 0
        assert memory.peek("x") == 1
        core.step(2)  # fence completes
        core.step(3)  # load
        assert core.retired

    def test_capacity_forces_drain(self):
        memory = SharedMemory()
        program = ThreadProgram(
            "T0", tuple(Store(f"loc{i}", value=i + 1) for i in range(4))
        )
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=0.0,
                       buffer_capacity=2)
        for cycle in range(20):
            if core.retired:
                break
            core.step(cycle)
        assert core.pending_stores() <= 2
        assert memory.peek("loc0") == 1  # the oldest entry was force-drained

    def test_background_drain(self):
        memory = SharedMemory()
        program = ThreadProgram("T0", (Store("x", value=1),))
        core = TSOCore("T0", program, memory, RandomSource(0), drain_probability=1.0)
        core.step(0)
        core.background_step(1)
        assert memory.peek("x") == 1

    def test_option_validation(self):
        program = ThreadProgram("T0", ())
        with pytest.raises(SimulationError):
            TSOCore("T0", program, SharedMemory(), RandomSource(0), drain_probability=2.0)
        with pytest.raises(SimulationError):
            TSOCore("T0", program, SharedMemory(), RandomSource(0), buffer_capacity=0)


class TestPSOCore:
    def test_cross_address_drain_can_reorder(self):
        """With two buffered addresses, some seed drains y before x."""
        program = ThreadProgram("T0", (Store("x", value=1), Store("y", value=2)))
        orders = set()
        for seed in range(40):
            memory = SharedMemory(log_accesses=True)
            core = PSOCore("T0", program, memory, RandomSource(seed), drain_probability=0.0)
            core.step(0)
            core.step(1)
            core.flush(2)
            orders.add(tuple(record.location for record in memory.log))
        assert ("x", "y") in orders
        assert ("y", "x") in orders  # the PSO relaxation in action

    def test_per_address_order_preserved(self):
        """Same-address stores drain in order on every seed."""
        program = ThreadProgram(
            "T0", (Store("x", value=1), Store("y", value=5), Store("x", value=2))
        )
        for seed in range(30):
            memory = SharedMemory(log_accesses=True)
            core = PSOCore("T0", program, memory, RandomSource(seed),
                           drain_probability=0.0, buffer_capacity=8)
            for cycle in range(3):
                core.step(cycle)
            core.flush(3)
            x_commits = [record.value for record in memory.commits_to("x")]
            assert x_commits == [1, 2]
            assert memory.peek("x") == 2


class TestWOCore:
    def test_reorders_independent_operations(self):
        """Some seed issues the second (independent) store first."""
        program = ThreadProgram("T0", (Store("x", value=1), Store("y", value=2)))
        orders = set()
        for seed in range(40):
            memory = SharedMemory(log_accesses=True)
            core = WOCore("T0", program, memory, RandomSource(seed))
            run_core(core)
            orders.add(tuple(record.location for record in memory.log))
        assert orders == {("x", "y"), ("y", "x")}

    def test_respects_register_dependencies(self):
        """loc = LD x; loc += 1; ST x = loc must execute in order."""
        for seed in range(20):
            memory = SharedMemory(initial={"x": 10})
            program = ThreadProgram(
                "T0",
                (Load("loc", "x"), AddImmediate("loc", "loc", 1), Store("x", src="loc")),
            )
            core = WOCore("T0", program, memory, RandomSource(seed))
            run_core(core)
            assert memory.peek("x") == 11

    def test_respects_same_address_order(self):
        for seed in range(30):
            memory = SharedMemory(log_accesses=True)
            program = ThreadProgram("T0", (Store("x", value=1), Store("x", value=2)))
            core = WOCore("T0", program, memory, RandomSource(seed))
            run_core(core)
            assert memory.peek("x") == 2

    def test_fence_is_two_sided_barrier(self):
        for seed in range(30):
            memory = SharedMemory(log_accesses=True)
            program = ThreadProgram(
                "T0", (Store("x", value=1), Fence(), Store("y", value=2))
            )
            core = WOCore("T0", program, memory, RandomSource(seed))
            run_core(core)
            locations = [record.location for record in memory.log]
            assert locations == ["x", "y"]

    def test_window_limits_lookahead(self):
        """window_size=1 degenerates to program order."""
        memory = SharedMemory(log_accesses=True)
        program = ThreadProgram("T0", (Store("x", value=1), Store("y", value=2)))
        core = WOCore("T0", program, memory, RandomSource(5), window_size=1)
        run_core(core)
        assert [record.location for record in memory.log] == ["x", "y"]

    def test_war_hazard_respected(self):
        """An older reader of a register blocks a younger writer of it."""
        for seed in range(20):
            memory = SharedMemory(initial={"z": 42})
            program = ThreadProgram(
                "T0",
                (
                    LoadImmediate("r1", 1),
                    Store("out", src="r1"),
                    Load("r1", "z"),
                ),
            )
            core = WOCore("T0", program, memory, RandomSource(seed))
            run_core(core)
            assert memory.peek("out") == 1  # never the clobbered 42

    def test_option_validation(self):
        with pytest.raises(SimulationError):
            WOCore("T0", ThreadProgram("T0", ()), SharedMemory(), RandomSource(0),
                   window_size=0)


class TestMakeCore:
    @pytest.mark.parametrize("name,kind", [
        ("SC", SCCore), ("TSO", TSOCore), ("PSO", PSOCore), ("WO", WOCore), ("wo", WOCore),
    ])
    def test_registry(self, name, kind, source):
        core = make_core(name, "T0", ThreadProgram("T0", ()), SharedMemory(), source)
        assert isinstance(core, kind)

    def test_unknown_model(self, source):
        with pytest.raises(SimulationError):
            make_core("RC", "T0", ThreadProgram("T0", ()), SharedMemory(), source)
