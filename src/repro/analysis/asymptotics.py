"""Theorem 6.3 asymptotics: ``Pr[A] = e^{-n²(1+o(1))}`` for every model.

The theorem's content is two-fold:

1. the survival probability collapses doubly exponentially in the thread
   count, at a rate whose leading ``n²`` coefficient — ``(3/2)·ln 2`` at
   the paper's parameters — is the *same* for every memory model;
2. consequently the *relative* advantage of a strict model vanishes:
   ``ln Pr[A_SC] / ln Pr[A_WO] → 1``.

This module computes the normalised exponents, their limiting constant,
and the model-gap metrics the thread-scaling bench reports.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from ..core.manifestation import log_non_manifestation, non_manifestation_probability
from ..core.memory_models import PAPER_MODELS, SC, MemoryModel

__all__ = [
    "limiting_exponent",
    "exponent_curve",
    "exponent_gap_curve",
    "relative_gap_two_threads",
]


def limiting_exponent(beta: float = 0.5) -> float:
    """The limiting value of ``−ln Pr[A] / n²``.

    From the SC closed form ``Pr[A] = prefactor · n! · β^{3·binom(n,2)}``
    (Theorem 6.3's proof): the leading term is ``−(3/2)·ln β · n²``, i.e.
    ``(3/2)·ln 2 ≈ 1.0397`` at β = 1/2.  Claim B.2 (``Pr[B_0] ≥ 1/2`` in
    every model) pins every other model to the same constant.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    return -1.5 * math.log(beta)


def exponent_curve(
    thread_counts: Sequence[int],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    beta: float = 0.5,
) -> list[dict[str, object]]:
    """``−ln Pr[A] / n²`` per model over thread counts, plus the limit."""
    limit = limiting_exponent(beta)
    rows = []
    for n in thread_counts:
        row: dict[str, object] = {"n": n, "limit": limit}
        for model in models:
            log_pr = log_non_manifestation(
                model, n, beta=beta, allow_independent_approximation=True
            )
            row[f"exponent {model.name}"] = -log_pr / (n * n)
        rows.append(row)
    return rows


def exponent_gap_curve(
    thread_counts: Sequence[int],
    weak_model: MemoryModel,
    strong_model: MemoryModel = SC,
    beta: float = 0.5,
) -> list[dict[str, object]]:
    """The dichotomy metric: ``ln Pr[A_strong] / ln Pr[A_weak] → 1``.

    At n = 2 the ratio visibly favours the strong model; as n grows it
    converges to 1 — the paper's "the gap becomes proportionally
    insignificant".
    """
    rows = []
    for n in thread_counts:
        strong = log_non_manifestation(
            strong_model, n, beta=beta, allow_independent_approximation=True
        )
        weak = log_non_manifestation(
            weak_model, n, beta=beta, allow_independent_approximation=True
        )
        rows.append(
            {
                "n": n,
                f"ln Pr[A] {strong_model.name}": strong,
                f"ln Pr[A] {weak_model.name}": weak,
                "log-ratio": strong / weak,
                "survival ratio": math.exp(strong - weak),
            }
        )
    return rows


def relative_gap_two_threads(
    weak_model: MemoryModel, strong_model: MemoryModel = SC
) -> float:
    """The n = 2 headline ratio, e.g. the paper's ``(1/6)/(7/54) = 9/7``."""
    strong = non_manifestation_probability(strong_model).value
    weak = non_manifestation_probability(weak_model).value
    return strong / weak
