"""Sweeps, asymptotics, and model-vs-machine comparisons."""

from .asymptotics import (
    exponent_curve,
    exponent_gap_curve,
    limiting_exponent,
    relative_gap_two_threads,
)
from .comparison import (
    ModelMachineComparison,
    compare_model_and_machine,
    ordering_consistent,
)
from .sweeps import (
    beta_sweep,
    critical_section_sweep,
    monte_carlo_check,
    settle_sweep,
    store_probability_sweep,
    thread_sweep,
    window_pmf_table,
)

__all__ = [
    "ModelMachineComparison",
    "beta_sweep",
    "compare_model_and_machine",
    "critical_section_sweep",
    "exponent_curve",
    "exponent_gap_curve",
    "limiting_exponent",
    "monte_carlo_check",
    "ordering_consistent",
    "relative_gap_two_threads",
    "settle_sweep",
    "store_probability_sweep",
    "thread_sweep",
    "window_pmf_table",
]
