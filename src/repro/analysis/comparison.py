"""Model-vs-model gap metrics between the abstract model and the machine.

Used by the E10 bench to check that the mechanistic simulator and the
probabilistic model agree on every *qualitative* claim (who is riskier,
does the gap shrink with thread count) even though their absolute numbers
differ by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.manifestation import non_manifestation_probability
from ..core.memory_models import MemoryModel
from ..sim.executor import CanonicalBugResult, run_canonical_bug

__all__ = ["ModelMachineComparison", "compare_model_and_machine", "ordering_consistent"]


@dataclass(frozen=True)
class ModelMachineComparison:
    """Side-by-side manifestation probabilities for one memory model."""

    model: MemoryModel
    threads: int
    abstract_manifestation: float
    machine: CanonicalBugResult

    @property
    def machine_manifestation(self) -> float:
        return self.machine.manifestation.estimate

    def row(self) -> dict[str, object]:
        return {
            "model": self.model.name,
            "n": self.threads,
            "abstract Pr[bug]": self.abstract_manifestation,
            "machine Pr[bug]": self.machine_manifestation,
            "machine CI": f"[{self.machine.manifestation.low:.4f}, "
            f"{self.machine.manifestation.high:.4f}]",
        }


def compare_model_and_machine(
    model: MemoryModel,
    threads: int,
    trials: int,
    seed: int = 0,
    body_length: int = 8,
    **core_options,
) -> ModelMachineComparison:
    """Evaluate one model both ways on the canonical bug."""
    abstract = non_manifestation_probability(
        model, threads, allow_independent_approximation=True
    )
    machine = run_canonical_bug(
        model.name, threads, trials, seed=seed, body_length=body_length, **core_options
    )
    return ModelMachineComparison(
        model=model,
        threads=threads,
        abstract_manifestation=1.0 - abstract.value,
        machine=machine,
    )


def ordering_consistent(
    comparisons: list[ModelMachineComparison], tolerance: float = 0.0
) -> bool:
    """Whether abstract and machine rank the models the same way.

    ``tolerance`` allows the machine ranking to treat probabilities within
    that distance as tied (Monte-Carlo noise and microarchitectural detail
    blur near-equal models — e.g. the single-address canonical bug makes
    machine-PSO nearly identical to machine-TSO).
    """
    abstract_order = sorted(
        comparisons, key=lambda comparison: comparison.abstract_manifestation
    )
    for earlier, later in zip(abstract_order, abstract_order[1:]):
        if later.machine_manifestation < earlier.machine_manifestation - tolerance:
            return False
    return True
