"""Parameter sweeps over the joined model.

The benches and examples repeatedly evaluate ``Pr[A]`` / ``Pr[bug]`` over
grids of thread counts, settle probabilities and store probabilities; this
module centralises those loops and returns plain row dicts ready for the
reporting layer.

Every sweep takes ``workers``: grid points are independent, so they
dispatch onto the shared process-pool engine
(:func:`repro.stats.parallel.parallel_map`) and come back in grid order —
``workers=1`` (the default) is the plain serial loop, and the row values
are identical either way because each point is a deterministic analytic
evaluation.  ``progress=True`` shows a live per-point progress line
(each grid point counts as one unit; see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.manifestation import (
    estimate_non_manifestation,
    log_non_manifestation,
    non_manifestation_probability,
)
from ..core.memory_models import PAPER_MODELS, MemoryModel
from ..core.window_analytic import window_distribution
from ..runconfig import UNSET, RunConfig, resolve_run_config
from ..stats.parallel import parallel_map

if TYPE_CHECKING:
    from ..cache.store import ShardStore
    from ..stats.checkpoint import ShardCheckpoint


def _observed_map(function, items, cfg, label):
    """Dispatch one sweep onto ``parallel_map`` under a resolved config."""
    observer = cfg.observer(label)
    try:
        return parallel_map(function, items, workers=cfg.workers,
                            retries=cfg.retries, timeout=cfg.timeout,
                            observer=observer)
    finally:
        if observer is not None:
            observer.finish()

__all__ = ["thread_sweep", "settle_sweep", "store_probability_sweep", "window_pmf_table", "critical_section_sweep", "beta_sweep"]


def _thread_sweep_row(
    n: int,
    models: Sequence[MemoryModel],
    store_probability: float,
    beta: float,
) -> dict[str, object]:
    row: dict[str, object] = {"n": n}
    for model in models:
        row[f"ln Pr[A] {model.name}"] = log_non_manifestation(
            model, n, store_probability, beta, allow_independent_approximation=True
        )
    return row


def thread_sweep(
    thread_counts: Sequence[int],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    store_probability: float = 0.5,
    beta: float = 0.5,
    workers: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    progress: bool = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """``ln Pr[A]`` per model over thread counts (Theorem 6.3's curve).

    Uses the analytic/iid route (exact for SC/WO, independent-window
    approximation for TSO/PSO — adequate for the asymptotic claim, whose
    leading term Claim B.2 makes model-independent anyway).
    """
    row = partial(_thread_sweep_row, models=list(models),
                  store_probability=store_probability, beta=beta)
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, progress=progress).resolve()
    return _observed_map(row, thread_counts, cfg, "thread-sweep")


def _settle_sweep_row(
    settle: float,
    models: Sequence[MemoryModel],
    n: int,
    store_probability: float,
    beta: float,
) -> dict[str, object]:
    row: dict[str, object] = {"s": settle}
    for model in models:
        adjusted = model.with_settle_probability(settle)
        value = non_manifestation_probability(
            adjusted, n, store_probability, beta, allow_independent_approximation=True
        )
        row[f"Pr[bug] {model.name}"] = 1.0 - value.value
    return row


def settle_sweep(
    settle_probabilities: Sequence[float],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    n: int = 2,
    store_probability: float = 0.5,
    beta: float = 0.5,
    workers: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    progress: bool = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """n-thread ``Pr[bug]`` as the swap-success probability ``s`` varies.

    Generalises the paper's fixed ``s = 1/2``: at ``s → 0`` every model
    degenerates to SC; growing ``s`` separates them.
    """
    row = partial(_settle_sweep_row, models=list(models), n=n,
                  store_probability=store_probability, beta=beta)
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, progress=progress).resolve()
    return _observed_map(row, settle_probabilities, cfg, "settle-sweep")


def _store_probability_sweep_row(
    p: float,
    models: Sequence[MemoryModel],
    n: int,
    beta: float,
) -> dict[str, object]:
    row: dict[str, object] = {"p": p}
    for model in models:
        value = non_manifestation_probability(
            model, n, p, beta, allow_independent_approximation=True
        )
        row[f"Pr[bug] {model.name}"] = 1.0 - value.value
    return row


def store_probability_sweep(
    store_probabilities: Sequence[float],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    n: int = 2,
    beta: float = 0.5,
    workers: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    progress: bool = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """n-thread ``Pr[bug]`` as the program's store fraction ``p`` varies.

    Only TSO/PSO depend on ``p`` (their windows grow through store runs);
    SC and WO columns are flat, which the sweep makes visible.
    """
    row = partial(_store_probability_sweep_row, models=list(models), n=n, beta=beta)
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, progress=progress).resolve()
    return _observed_map(row, store_probabilities, cfg,
                         "store-probability-sweep")


def window_pmf_table(
    gammas: Sequence[int],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    store_probability: float = 0.5,
) -> list[dict[str, object]]:
    """Theorem 4.1 as a table: ``Pr[B_γ]`` per model over γ."""
    distributions = {model.name: window_distribution(model, store_probability) for model in models}
    rows = []
    for gamma in gammas:
        row: dict[str, object] = {"gamma": gamma}
        for name, dist in distributions.items():
            row[f"Pr[B] {name}"] = dist.pmf(gamma)
        rows.append(row)
    return rows


def _critical_section_sweep_row(
    length: int,
    models: Sequence[MemoryModel],
    n: int,
    beta: float,
) -> dict[str, object]:
    row: dict[str, object] = {"L": length}
    values = {}
    for model in models:
        value = non_manifestation_probability(
            model,
            n,
            beta=beta,
            allow_independent_approximation=True,
            critical_section_length=length,
        ).value
        values[model.name] = value
        row[f"Pr[A] {model.name}"] = value
    if "SC" in values and "WO" in values and values["WO"] > 0:
        row["SC/WO ratio"] = values["SC"] / values["WO"]
    return row


def critical_section_sweep(
    lengths: Sequence[int],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    n: int = 2,
    beta: float = 0.5,
    workers: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    progress: bool = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """``Pr[A]`` as the base critical-section duration L grows.

    An analytically clean null result: L multiplies every Theorem 6.1
    factor by ``β^{i(L-2)}`` regardless of the window law, so absolute
    risk explodes with L while every model-vs-model *ratio* is exactly
    invariant — the memory-model comparison is independent of how much
    local work sits inside the critical section.  The sweep's rows make
    both halves visible (each row carries the SC/WO ratio).
    """
    row = partial(_critical_section_sweep_row, models=list(models), n=n, beta=beta)
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, progress=progress).resolve()
    return _observed_map(row, lengths, cfg, "critical-section-sweep")


def _beta_sweep_row(
    beta: float,
    models: Sequence[MemoryModel],
    n: int,
    store_probability: float,
) -> dict[str, object]:
    row: dict[str, object] = {"beta": beta}
    values = {}
    for model in models:
        value = non_manifestation_probability(
            model, n, store_probability, beta,
            allow_independent_approximation=True,
        ).value
        values[model.name] = value
        row[f"Pr[A] {model.name}"] = value
    if "SC" in values and "WO" in values and values["WO"] > 0:
        row["SC/WO ratio"] = values["SC"] / values["WO"]
    return row


def beta_sweep(
    betas: Sequence[float],
    models: Iterable[MemoryModel] = PAPER_MODELS,
    n: int = 2,
    store_probability: float = 0.5,
    workers: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    progress: bool = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """``Pr[A]`` as the shift-distribution ratio β varies (§7 robustness).

    The paper conjectures its conclusions are robust to the model's
    constants; β controls how spread the thread launch offsets are.
    Small β (tight synchronisation) makes overlap — and thus the bug —
    near-certain for every model; large β (heavy-tailed desynchronisation)
    helps all models while preserving their ordering.
    """
    row = partial(_beta_sweep_row, models=list(models), n=n,
                  store_probability=store_probability)
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, progress=progress).resolve()
    return _observed_map(row, betas, cfg, "beta-sweep")


def monte_carlo_check(
    models: Iterable[MemoryModel],
    n: int,
    trials: int,
    seed: int | None = 0,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    cache: str | Path | ShardStore | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    backend: str = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
) -> list[dict[str, object]]:
    """Analytic vs Monte-Carlo ``Pr[A]`` rows for the verification benches.

    The Monte-Carlo leg forwards one resolved
    :class:`~repro.runconfig.RunConfig` — ``workers``/``shards``, the
    fault-tolerance options (``retries``/``timeout``/``checkpoint``), the
    result cache (``cache`` — overlapping sweep points and re-runs fetch
    completed shards instead of recomputing them, see ``docs/CACHING.md``),
    the observability options (``manifest``/``trace``/``progress``), the
    kernel ``backend``, and the ``rng_plan``/``transport`` engine knobs,
    with the per-knob keywords as deprecated aliases — to
    :func:`repro.core.manifestation.estimate_non_manifestation`; the
    per-model checkpoint keys keep one journal file safe across the whole
    model loop, and each model's run appends its own labelled record to
    the shared manifest file.  ``seed`` and the knob types follow the
    estimators exactly (``seed=None`` draws fresh entropy).
    """
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, cache=cache,
                             manifest=manifest, trace=trace,
                             progress=progress, backend=backend,
                             rng_plan=rng_plan, transport=transport,
                             ).resolve(default_backend="vectorized")
    rows = []
    for model in models:
        analytic = non_manifestation_probability(
            model, n, allow_independent_approximation=True
        )
        empirical = estimate_non_manifestation(
            model, n, trials, seed=seed, config=cfg,
        )
        rows.append(
            {
                "model": model.name,
                "analytic": analytic.value,
                "monte carlo": empirical.estimate,
                "CI low": empirical.proportion.low,
                "CI high": empirical.proportion.high,
                "agrees": empirical.agrees_with(analytic.value),
            }
        )
    return rows


__all__.append("monte_carlo_check")
