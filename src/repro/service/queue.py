"""The priority job queue and its shared worker pool.

A small, dependency-free scheduler: submissions enter a heap ordered by
``(-priority, seq)`` — higher priority runs first, FIFO within a
priority — and a fixed pool of daemon threads drains it, invoking the
service's execute callback one job at a time per worker.  Each job's
*shards* then fan out through :func:`repro.stats.parallel.run_sharded`
exactly as they do everywhere else in the library; the queue only
decides which job gets the engine next.

Two control surfaces:

* **Rate control** — :meth:`JobQueue.submit` raises :class:`QueueFull`
  once ``max_queued`` jobs are waiting (running jobs do not count);
  the HTTP layer maps it to ``429``.
* **Graceful shutdown** — :meth:`JobQueue.shutdown` closes the queue
  (workers take no new jobs), waits up to ``drain_seconds`` for running
  jobs to finish, and returns the job ids still waiting so the service
  can demote them to ``queued`` and persist them for resume.  Because
  every job runs with a shard journal, even a job whose drain window
  expires loses at most its in-flight shard.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable

__all__ = ["DEFAULT_MAX_QUEUED", "JobQueue", "QueueFull"]

#: Default cap on jobs waiting in the queue (running jobs excluded).
DEFAULT_MAX_QUEUED = 64


class QueueFull(Exception):
    """Raised by :meth:`JobQueue.submit` when ``max_queued`` jobs wait."""

    def __init__(self, max_queued: int):
        super().__init__(
            f"job queue is full ({max_queued} jobs queued); retry later")
        self.max_queued = max_queued


class JobQueue:
    """A closed-world priority queue drained by ``workers`` threads.

    ``execute`` is called with one job id at a time per worker; it must
    not raise (the service's executor catches everything and marks the
    job failed).  Construction does not start the pool — the service
    first re-enqueues unfinished jobs from the registry, *then* calls
    :meth:`start`, so resumed jobs keep their original priorities
    relative to any new submissions.
    """

    def __init__(self, execute: Callable[[str], None], *, workers: int = 1,
                 max_queued: int = DEFAULT_MAX_QUEUED) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be positive, got {max_queued}")
        self._execute = execute
        self._workers = workers
        self._max_queued = max_queued
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._running = 0
        self._closed = False
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []

    # -- producer side -------------------------------------------------

    def submit(self, job_id: str, priority: int = 0, *,
               force: bool = False) -> None:
        """Enqueue ``job_id``; raises :class:`QueueFull` or ``RuntimeError``
        (closed queue — the HTTP layer answers 503 before this can hit).
        ``force=True`` bypasses the cap: restart resume must re-enqueue
        every unfinished job even when there are more than ``max_queued``
        of them (they were all legitimately accepted before)."""
        with self._wake:
            if self._closed:
                raise RuntimeError("queue is shut down")
            if not force and len(self._heap) >= self._max_queued:
                raise QueueFull(self._max_queued)
            self._seq += 1
            heapq.heappush(self._heap, (-priority, self._seq, job_id))
            self._wake.notify()

    def is_full(self) -> bool:
        with self._lock:
            return len(self._heap) >= self._max_queued

    def depth(self) -> int:
        """Jobs waiting (not running) — the ``service.queue_depth`` gauge."""
        with self._lock:
            return len(self._heap)

    def running(self) -> int:
        with self._lock:
            return self._running

    # -- worker side ---------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self._threads:
            return
        for index in range(self._workers):
            thread = threading.Thread(target=self._worker, daemon=True,
                                      name=f"repro-service-worker-{index}")
            thread.start()
            self._threads.append(thread)

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._heap and not self._closed:
                    self._wake.wait()
                if self._closed:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                self._running += 1
            try:
                self._execute(job_id)
            finally:
                with self._lock:
                    self._running -= 1
                    self._idle.notify_all()

    # -- shutdown ------------------------------------------------------

    def shutdown(self, drain_seconds: float = 30.0) -> list[str]:
        """Close the queue, drain running jobs, return the leftovers.

        Closes submissions, tells idle workers to exit, waits up to
        ``drain_seconds`` for jobs already running to finish, and
        returns the ids still waiting in the heap (priority order) —
        the service demotes them to ``queued`` in the registry so a
        restart re-enqueues them.  Workers are daemon threads, so a job
        that outlives the drain window cannot block process exit; its
        journal bounds the loss to one shard.
        """
        with self._wake:
            self._closed = True
            leftovers = [job_id for _, _, job_id in sorted(self._heap)]
            self._heap.clear()
            self._wake.notify_all()
            deadline = time.monotonic() + drain_seconds
            while self._running and time.monotonic() < deadline:
                self._idle.wait(timeout=min(0.1, drain_seconds))
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return leftovers
