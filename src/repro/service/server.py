"""The estimation service and its stdlib HTTP/JSON front end.

:class:`EstimationService` is the headless core — submit, dedup,
execute, persist, resume — and :class:`ServiceHTTPServer` (a
``ThreadingHTTPServer``) is the thin JSON skin ``repro serve`` runs.
Keeping them separate means the whole job lifecycle is unit-testable
in-process, and the HTTP layer only translates: JSON in,
:class:`~repro.service.schemas.ServiceError` to status codes out.

The state directory layout (everything the service persists)::

    <state-dir>/
      jobs.json            the job registry snapshot (atomic replace)
      journals/<job>.jsonl per-job shard checkpoint journals
      manifests/<job>.json per-job validated run manifests
      cache/               the shared content-addressed shard cache

The shared ``cache/`` is what makes cross-request dedup cheap even when
it misses: a ``dedup=false`` resubmission of a finished job creates a
fresh job whose every shard is a cache hit.  :data:`ROUTES` is the
canonical route table — ``docs/SERVICE.md`` documents exactly these
routes and the docs-consistency suite fails on drift in either
direction.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import urlsplit

from ..obs import MetricsRegistry, load_manifest, summarise_result
from ..runconfig import RunConfig
from .estimators import ESTIMATORS, job_key, run_estimator, validate_params
from .jobs import JobRegistry
from .queue import DEFAULT_MAX_QUEUED, JobQueue
from .schemas import SCHEMA_VERSION, MANAGED_KNOBS, ServiceError, parse_submit

__all__ = ["ROUTES", "EstimationService", "ServiceHTTPServer", "serve"]

#: The canonical route table: (method, path template, summary).  The
#: ``{id}`` placeholder matches one job id segment.  ``docs/SERVICE.md``
#: must document exactly these — the docs-consistency suite compares
#: both directions.
ROUTES: tuple[tuple[str, str, str], ...] = (
    ("GET", "/v1/health", "liveness, schema version, queue depth"),
    ("GET", "/v1/estimators", "the served estimator catalogue with schemas"),
    ("GET", "/v1/metrics", "service metrics snapshot (service.* names)"),
    ("GET", "/v1/jobs", "every job, oldest first (summary form)"),
    ("POST", "/v1/jobs", "submit a job (estimator + params + config)"),
    ("GET", "/v1/jobs/{id}", "one job's state, progress, and timings"),
    ("GET", "/v1/jobs/{id}/result", "validated run manifest + merged numbers"),
    ("POST", "/v1/shutdown", "graceful shutdown: drain, demote, persist"),
)

_DRAIN_SECONDS = 30.0


class EstimationService:
    """Submit, dedup, execute, and persist estimation jobs.

    All registry/metrics mutations happen under one re-entrant lock;
    job *execution* (the expensive part) runs outside it on the queue's
    worker threads.  Construction loads the registry snapshot from the
    state directory and re-enqueues every unfinished job before the
    worker pool starts, which is the whole resume-on-restart contract —
    the per-job shard journals do the actual work of not recomputing.
    """

    def __init__(self, state_dir: str | Path, *,
                 default_config: RunConfig | None = None,
                 job_workers: int = 1,
                 max_queued: int = DEFAULT_MAX_QUEUED,
                 start: bool = True) -> None:
        self.state_dir = Path(state_dir)
        for sub in ("journals", "manifests", "cache"):
            (self.state_dir / sub).mkdir(parents=True, exist_ok=True)
        config = default_config if default_config is not None else RunConfig()
        for knob in MANAGED_KNOBS:
            if getattr(config, knob) not in (None, False):
                raise ValueError(
                    f"the server default config must not set {knob!r}; the "
                    "service derives it per job from the state directory")
        self.default_config = config.resolve()
        self.metrics = MetricsRegistry()
        self._lock = threading.RLock()
        self._closed = False
        self.registry = JobRegistry.load(self.state_dir / "jobs.json")
        self.queue = JobQueue(self._execute, workers=job_workers,
                              max_queued=max_queued)
        resumed = self.registry.unfinished()
        for job in resumed:
            job.state = "queued"
            job.progress = None
            self.queue.submit(job.id, job.priority, force=True)
        if resumed:
            self.metrics.counter("service.jobs_resumed", "jobs").inc(
                len(resumed))
            self.registry.save()
        self._update_depth()
        if start:
            self.queue.start()

    # -- submission ----------------------------------------------------

    def submit(self, payload: Any) -> tuple[dict[str, Any], int]:
        """Handle a ``POST /v1/jobs`` body; returns (response, status).

        Validates, computes the dedup key, and either collapses onto an
        existing live job (status 200, ``deduped: true``) or creates and
        enqueues a fresh one (status 201).  Raises
        :class:`ServiceError`: 400/404 for bad requests, 429 when the
        queue is full, 503 while shutting down.
        """
        request = parse_submit(payload)
        params = validate_params(request.estimator, request.params)
        try:
            config = RunConfig.from_json_dict(request.config_overrides,
                                              base=self.default_config)
        except (TypeError, ValueError) as error:
            raise ServiceError(400, "bad-config", str(error)) from error
        key = job_key(request.estimator, params, config)
        with self._lock:
            if self._closed:
                raise ServiceError(503, "shutting-down",
                                   "the service is shutting down; "
                                   "resubmit after restart")
            if request.dedup:
                target = self.registry.find_dedup_target(key)
                if target is not None:
                    target.dedup_hits += 1
                    self.metrics.counter("service.jobs_deduped", "jobs").inc()
                    self.registry.save()
                    return {"job": target.to_wire(), "deduped": True}, 200
            if self.queue.is_full():
                self.metrics.counter("service.jobs_rejected", "jobs").inc()
                raise ServiceError(
                    429, "queue-full",
                    f"job queue is full ({self.queue._max_queued} queued); "
                    "retry later")
            job = self.registry.create(
                key=key, estimator=request.estimator, params=params,
                config_wire=config.to_json_dict(), priority=request.priority)
            self.queue.submit(job.id, request.priority)
            self.metrics.counter("service.jobs_submitted", "jobs").inc()
            self._update_depth()
            self.registry.save()
            return {"job": job.to_wire(), "deduped": False}, 201

    # -- execution (worker threads) ------------------------------------

    def _job_config(self, job_estimator_config: RunConfig,
                    job_id: str) -> RunConfig:
        """Fold the service-managed knobs into a job's config.

        Journals and manifests are per job id (a ``dedup=false`` twin
        must not append to its sibling's manifest); the shard cache is
        shared service-wide — it is the cross-request warm path.
        """
        return replace(
            job_estimator_config,
            checkpoint=str(self.state_dir / "journals" / f"{job_id}.jsonl"),
            cache=str(self.state_dir / "cache"),
            manifest=str(self.state_dir / "manifests" / f"{job_id}.json"),
            trace=None,
            progress=self._progress_sink(job_id),
        )

    def _progress_sink(self, job_id: str):
        def on_progress(snapshot: Any) -> None:
            job = self.registry.get(job_id)
            if job is None:
                return
            job.progress = {
                "done_shards": snapshot.done_shards,
                "total_shards": snapshot.total_shards,
                "done_trials": snapshot.done_trials,
                "total_trials": snapshot.total_trials,
                "elapsed_seconds": snapshot.elapsed_seconds,
                "trials_per_second": snapshot.trials_per_second,
                "eta_seconds": snapshot.eta_seconds,
            }
        return on_progress

    def _execute(self, job_id: str) -> None:
        """Run one job end to end (called by queue workers; never raises)."""
        with self._lock:
            job = self.registry.get(job_id)
            if job is None or job.state != "queued":
                return
            job.mark_running()
            self._update_depth()
            self.registry.save()
        try:
            config = RunConfig.from_json_dict(job.config_wire)
            result = run_estimator(job.estimator, job.params,
                                   self._job_config(config, job.id))
            summary = summarise_result(result)
            with self._lock:
                job.mark_done(summary if summary is not None else {})
                self.metrics.counter("service.jobs_completed", "jobs").inc()
                self.registry.save()
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            with self._lock:
                job.mark_failed(f"{type(error).__name__}: {error}")
                self.metrics.counter("service.jobs_failed", "jobs").inc()
                self.registry.save()

    # -- queries -------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        job = self.registry.get(job_id)
        if job is None:
            raise ServiceError(404, "unknown-job",
                               f"no job with id {job_id!r}")
        with self._lock:
            return job.to_wire()

    def result(self, job_id: str) -> dict[str, Any]:
        """A finished job's summary + its validated run manifest."""
        job = self.registry.get(job_id)
        if job is None:
            raise ServiceError(404, "unknown-job",
                               f"no job with id {job_id!r}")
        if job.state == "failed":
            raise ServiceError(409, "job-failed",
                               f"job {job_id} failed: {job.error}")
        if job.state != "done":
            raise ServiceError(409, "not-finished",
                               f"job {job_id} is {job.state}; poll "
                               f"GET /v1/jobs/{job_id} until done")
        manifest = load_manifest(
            self.state_dir / "manifests" / f"{job_id}.json")
        with self._lock:
            return {"job": job.to_wire(), "result": job.result,
                    "manifest": manifest}

    def jobs_summary(self) -> dict[str, Any]:
        with self._lock:
            return {"jobs": [
                {"id": job.id, "key": job.key, "estimator": job.estimator,
                 "state": job.state, "priority": job.priority,
                 "dedup_hits": job.dedup_hits}
                for job in self.registry.jobs()
            ]}

    def health(self) -> dict[str, Any]:
        return {"status": "shutting-down" if self._closed else "ok",
                "schema_version": SCHEMA_VERSION,
                "jobs": len(self.registry),
                "queue_depth": self.queue.depth(),
                "running": self.queue.running()}

    def metrics_snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._update_depth()
            return {"metrics": self.metrics.snapshot()}

    def _update_depth(self) -> None:
        self.metrics.gauge("service.queue_depth", "jobs").set(
            self.queue.depth())

    # -- shutdown ------------------------------------------------------

    def shutdown(self, drain_seconds: float = _DRAIN_SECONDS) -> dict[str, Any]:
        """Graceful shutdown: close submissions, drain, demote, persist.

        Submissions get 503 immediately; running jobs get up to
        ``drain_seconds`` to finish; whatever is still queued or running
        afterwards is demoted to ``queued`` and persisted, so the next
        start re-enqueues it and its shard journal resumes the work.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return {"status": "shutting-down", "demoted": 0}
            self._closed = True
        self.queue.shutdown(drain_seconds)
        with self._lock:
            demoted = 0
            for job in self.registry.jobs():
                if not job.finished:
                    job.state = "queued"
                    job.progress = None
                    demoted += 1
            self._update_depth()
            self.registry.save()
            return {"status": "shutting-down", "demoted": demoted}


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------

def _compile_routes() -> list[tuple[str, re.Pattern[str], str]]:
    compiled = []
    for method, template, _ in ROUTES:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[A-Za-z0-9_-]+)",
                         template) + "$")
        compiled.append((method, pattern, template))
    return compiled


_ROUTE_TABLE = _compile_routes()
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Translates HTTP requests onto the service; knows no job logic."""

    server_version = f"repro-serve/{SCHEMA_VERSION}"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service: EstimationService = self.server.service
        path = urlsplit(self.path).path
        try:
            template = self._match(method, path)
            handler = {
                ("GET", "/v1/health"): lambda m: (service.health(), 200),
                ("GET", "/v1/estimators"): lambda m: (
                    {"estimators": [spec.describe() for _, spec in
                                    sorted(ESTIMATORS.items())]}, 200),
                ("GET", "/v1/metrics"): lambda m: (
                    service.metrics_snapshot(), 200),
                ("GET", "/v1/jobs"): lambda m: (service.jobs_summary(), 200),
                ("POST", "/v1/jobs"): lambda m: service.submit(self._body()),
                ("GET", "/v1/jobs/{id}"): lambda m: (
                    {"job": service.job(m["id"])}, 200),
                ("GET", "/v1/jobs/{id}/result"): lambda m: (
                    service.result(m["id"]), 200),
                ("POST", "/v1/shutdown"): lambda m: self._shutdown(service),
            }[(method, template)]
            match = next(p.match(path) for _, p, t in _ROUTE_TABLE
                         if t == template and p.match(path))
            payload, status = handler(match.groupdict())
            self._send(status, payload)
        except ServiceError as error:
            self._send(error.status, error.to_wire())
        except Exception as error:  # noqa: BLE001 - HTTP isolation boundary
            self._send(500, {"error": {"code": "internal",
                                       "message": f"{type(error).__name__}: "
                                                  f"{error}",
                                       "status": 500}})

    def _match(self, method: str, path: str) -> str:
        allowed = [m for m, pattern, _ in _ROUTE_TABLE if pattern.match(path)]
        if not allowed:
            raise ServiceError(404, "unknown-route",
                               f"no route matches {path!r}; see "
                               "docs/SERVICE.md for the API")
        if method not in allowed:
            raise ServiceError(405, "method-not-allowed",
                               f"{path!r} accepts {sorted(set(allowed))}, "
                               f"not {method}")
        return next(t for m, pattern, t in _ROUTE_TABLE
                    if m == method and pattern.match(path))

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ServiceError(400, "body-too-large",
                               f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "bad-body", "request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(400, "bad-json",
                               f"request body is not valid JSON: "
                               f"{error}") from error

    def _shutdown(self, service: EstimationService) -> tuple[dict, int]:
        payload = service.shutdown(getattr(self.server, "drain_seconds",
                                           _DRAIN_SECONDS))
        # serve_forever must be stopped from another thread.
        threading.Thread(target=self.server.shutdown, daemon=True).start()
        return payload, 200

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`EstimationService`.

    ``daemon_threads`` so a hung client connection can never block
    process exit; the service's own durability (journals + registry
    snapshots) is what guarantees nothing is lost.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: EstimationService, *,
                 drain_seconds: float = _DRAIN_SECONDS,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.drain_seconds = drain_seconds
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(host: str, port: int, state_dir: str | Path, *,
          default_config: RunConfig | None = None, job_workers: int = 1,
          max_queued: int = DEFAULT_MAX_QUEUED,
          drain_seconds: float = _DRAIN_SECONDS,
          verbose: bool = False) -> ServiceHTTPServer:
    """Build the service + HTTP server, bound and ready (not serving yet).

    ``port=0`` binds an ephemeral port — read it back from
    ``server.url`` (the CLI prints it; tests and the bench rely on it).
    The caller runs ``server.serve_forever()``; ``POST /v1/shutdown``
    stops it gracefully.
    """
    service = EstimationService(state_dir, default_config=default_config,
                                job_workers=job_workers,
                                max_queued=max_queued)
    return ServiceHTTPServer((host, port), service,
                             drain_seconds=drain_seconds, verbose=verbose)
