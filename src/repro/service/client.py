"""A tiny stdlib client for the estimation service.

:class:`ServiceClient` wraps ``urllib.request`` — one method per route,
JSON in/out, and server-side refusals re-raised as the same
:class:`~repro.service.schemas.ServiceError` the server threw (status
and machine code preserved), so client code branches on ``error.code``
exactly as documented in ``docs/SERVICE.md``.  Used by the CI serve
smoke, the latency benchmark, and scripts; it is intentionally not a
generic HTTP toolkit.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from .schemas import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running ``repro serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: dict[str, Any] | None = None) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read()).get("error", {})
            except (json.JSONDecodeError, ValueError):
                detail = {}
            raise ServiceError(
                error.code, detail.get("code", "http-error"),
                detail.get("message", str(error))) from error

    # -- one method per route ------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/health")

    def estimators(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/estimators")["estimators"]

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metrics")["metrics"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def submit(self, estimator: str, params: dict[str, Any], *,
               config: dict[str, Any] | None = None, priority: int = 0,
               dedup: bool = True) -> dict[str, Any]:
        """``POST /v1/jobs``; returns ``{"job": ..., "deduped": bool}``."""
        return self._request("POST", "/v1/jobs", {
            "estimator": estimator,
            "params": params,
            "config": config or {},
            "priority": priority,
            "dedup": dedup,
        })

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {})

    # -- convenience ---------------------------------------------------

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll_seconds: float = 0.05) -> dict[str, Any]:
        """Poll ``GET /v1/jobs/{id}`` until the job finishes.

        Returns the finished job record (``done`` **or** ``failed`` —
        callers branch on ``job["state"]``); raises ``TimeoutError``
        if it is still running when ``timeout`` expires.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s")
            time.sleep(poll_seconds)
