"""The service wire format: strict JSON schemas for submissions and errors.

Every byte that crosses the HTTP boundary is validated here, under one
rule inherited from :class:`~repro.runconfig.RunConfig`: **nothing is
silently dropped**.  An unknown top-level key, an unknown config field,
a wrongly-typed value, or an attempt to set a service-managed knob all
raise :class:`ServiceError` with a 4xx status and a stable machine
code — the client bug surfaces immediately instead of producing a
subtly different estimate.

The config a client submits is a *partial* wire dict (any subset of the
``RunConfig`` fields); the server folds it over its own default config
via :meth:`RunConfig.from_json_dict`, so an omitted knob means "the
server's default", never ``UNSET`` (the sentinel cannot appear on the
wire — :meth:`RunConfig.to_json_dict` rejects it outright).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..runconfig import RunConfig

__all__ = ["SCHEMA_VERSION", "MANAGED_KNOBS", "ServiceError",
           "SubmitRequest", "parse_submit"]

#: Version tag of the HTTP wire format (bumped on breaking changes).
SCHEMA_VERSION = 1

#: RunConfig knobs the service owns per job and therefore refuses from
#: clients: the shard journal, shard cache, and run manifest live under
#: the service state directory (keyed by job identity), and progress is
#: an in-process callback feeding ``GET /v1/jobs/{id}`` — a client-
#: supplied path would let a request write arbitrary files on the
#: server, and a client-supplied callable is not expressible in JSON.
MANAGED_KNOBS = ("checkpoint", "cache", "manifest", "trace", "progress")

#: Priorities are clamped to a small symmetric band; a wider range buys
#: nothing (ordering is total either way) and invites magic numbers.
PRIORITY_BAND = 100

_SUBMIT_KEYS = frozenset({"estimator", "params", "config", "priority", "dedup"})


class ServiceError(Exception):
    """A request the service refuses, with an HTTP status and stable code.

    ``status`` is the HTTP response status (4xx for client errors, 503
    while shutting down); ``code`` a short machine-readable slug
    (``"unknown-field"``, ``"queue-full"``, ...) that clients can branch
    on without parsing prose; ``message`` the human explanation.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message

    def to_wire(self) -> dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message,
                          "status": self.status}}


@dataclass(frozen=True)
class SubmitRequest:
    """A validated ``POST /v1/jobs`` body.

    ``config_overrides`` holds exactly the RunConfig fields the client
    named (already type-checked); the service folds them over its
    default config.  ``priority`` orders the queue (higher runs first,
    FIFO within a priority); ``dedup=False`` opts one submission out of
    request dedup — it always creates a fresh job (whose shards still
    hit the content-addressed cache, so re-running an identical job is
    warm regardless).
    """

    estimator: str
    params: dict[str, Any] = field(default_factory=dict)
    config_overrides: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    dedup: bool = True


def _require(condition: bool, code: str, message: str,
             status: int = 400) -> None:
    if not condition:
        raise ServiceError(status, code, message)


def parse_submit(payload: Any) -> SubmitRequest:
    """Validate a ``POST /v1/jobs`` JSON body into a :class:`SubmitRequest`.

    Checks structure only — estimator existence and param values are the
    estimator catalogue's job (:func:`repro.service.estimators
    .validate_params`), and config *values* are validated by
    :meth:`RunConfig.from_json_dict` at submit time.  What is enforced
    here: the body is an object with no unknown keys, ``estimator`` is a
    string, ``params``/``config`` are objects, the config names only
    real RunConfig fields and none of the service-managed
    :data:`MANAGED_KNOBS`, ``priority`` is an integer within the
    :data:`PRIORITY_BAND`, and ``dedup`` is a boolean.
    """
    _require(isinstance(payload, dict), "bad-body",
             f"request body must be a JSON object, got "
             f"{type(payload).__name__}")
    unknown = sorted(set(payload) - _SUBMIT_KEYS)
    _require(not unknown, "unknown-field",
             f"unknown submission field(s): {unknown}; "
             f"known: {sorted(_SUBMIT_KEYS)}")

    estimator = payload.get("estimator")
    _require(isinstance(estimator, str) and estimator != "", "bad-estimator",
             "'estimator' must be a non-empty string")

    params = payload.get("params", {})
    _require(isinstance(params, dict), "bad-params",
             "'params' must be a JSON object")

    config = payload.get("config", {})
    _require(isinstance(config, dict), "bad-config",
             "'config' must be a JSON object of RunConfig fields")
    managed = sorted(set(config) & set(MANAGED_KNOBS))
    _require(not managed, "managed-knob",
             f"config field(s) {managed} are managed by the service "
             "(journals, cache, manifests and progress live under the "
             "server state directory) and cannot be set per request")
    try:
        # Validate field names and types against the defaults; the
        # server re-folds over its own default config at submit time.
        RunConfig.from_json_dict(config)
    except (TypeError, ValueError) as error:
        raise ServiceError(400, "bad-config", str(error)) from error

    priority = payload.get("priority", 0)
    _require(isinstance(priority, int) and not isinstance(priority, bool),
             "bad-priority", "'priority' must be an integer")
    _require(-PRIORITY_BAND <= priority <= PRIORITY_BAND, "bad-priority",
             f"'priority' must lie in [-{PRIORITY_BAND}, {PRIORITY_BAND}], "
             f"got {priority}")

    dedup = payload.get("dedup", True)
    _require(isinstance(dedup, bool), "bad-dedup",
             "'dedup' must be a boolean")

    return SubmitRequest(estimator=estimator, params=dict(params),
                         config_overrides=dict(config),
                         priority=priority, dedup=dedup)
