"""``repro.service`` — estimation-as-a-service on the cache/checkpoint substrate.

Every estimator in this library is deterministic (seed-disciplined
shards), resumable (append-only shard journals), cached
(content-addressed shard store), observed (metrics + validated run
manifests), and configured through one validated
:class:`~repro.runconfig.RunConfig`.  That is exactly the substrate a
multi-tenant service needs — the ~7700x warm-cache speedup committed in
``BENCH_cache_reuse.json`` is the economics of serving repeated
Theorem 6.2/6.3 sweep queries from many users — so this package builds
the front half:

* :mod:`repro.service.schemas` — the JSON wire format: submission
  parsing/validation (strict: unknown fields and service-managed knobs
  are rejected loudly) and the :class:`ServiceError` HTTP error type.
* :mod:`repro.service.estimators` — the served estimator catalogue
  (name + typed param schema + runner) and :func:`job_key`, the dedup
  identity derived from the same knobs that enter the v2 ``plan_key``.
* :mod:`repro.service.jobs` — the :class:`Job` record, its lifecycle
  states, and the persistent :class:`JobRegistry` (atomic JSON
  snapshots; unfinished jobs resume on restart).
* :mod:`repro.service.queue` — the priority job queue: a shared worker
  pool draining jobs highest-priority-first, with a max-queued-jobs
  rate control (:class:`QueueFull`).
* :mod:`repro.service.server` — :class:`EstimationService` (submit,
  dedup, execute, persist, graceful shutdown) and the stdlib HTTP/JSON
  front end (``repro serve``); :data:`ROUTES` is the canonical route
  table the docs-consistency suite pins to ``docs/SERVICE.md``.
* :mod:`repro.service.client` — a tiny stdlib client
  (:class:`ServiceClient`) used by the CI smoke, the latency bench, and
  scripts.

The API reference, job lifecycle, dedup semantics, and the
resume-on-restart contract live in ``docs/SERVICE.md``.
"""

from .client import ServiceClient
from .estimators import ESTIMATORS, job_key, run_estimator, validate_params
from .jobs import JOB_STATES, Job, JobRegistry
from .queue import DEFAULT_MAX_QUEUED, JobQueue, QueueFull
from .schemas import SCHEMA_VERSION, ServiceError, SubmitRequest, parse_submit
from .server import ROUTES, EstimationService, ServiceHTTPServer, serve

__all__ = [
    "SCHEMA_VERSION",
    "ServiceError",
    "SubmitRequest",
    "parse_submit",
    "ESTIMATORS",
    "job_key",
    "run_estimator",
    "validate_params",
    "JOB_STATES",
    "Job",
    "JobRegistry",
    "DEFAULT_MAX_QUEUED",
    "JobQueue",
    "QueueFull",
    "ROUTES",
    "EstimationService",
    "ServiceHTTPServer",
    "serve",
    "ServiceClient",
]
