"""Job records and the persistent registry behind the estimation service.

A :class:`Job` is everything the service knows about one submission:
the dedup identity (:func:`~repro.service.estimators.job_key`), the
fully-defaulted params, the merged config in wire form, lifecycle state,
live progress, and — once finished — the result summary or error.  The
:class:`JobRegistry` owns every job, hands out sequential ids, and
persists itself as one JSON snapshot (written atomically: tmp file +
``os.replace``) so a restarted server can re-enqueue whatever had not
finished.

Lifecycle is deliberately small::

    queued -> running -> done
                      -> failed

There is no separate "interrupted" state: graceful shutdown demotes
``running``/``queued`` jobs back to ``queued`` before persisting, and
the shard journal each job runs with means a resumed job re-executes
only the shards its previous life never finished.

The registry itself does no locking — the owning
:class:`~repro.service.server.EstimationService` serialises all
mutations under one lock (job execution happens *outside* that lock;
only state transitions take it).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["JOB_STATES", "Job", "JobRegistry"]

#: The complete lifecycle vocabulary, in transition order.
JOB_STATES = ("queued", "running", "done", "failed")

_SNAPSHOT_KIND = "repro/service-jobs"
_SNAPSHOT_FORMAT = 1


@dataclass
class Job:
    """One submission's full record (mutable; wire form via ``to_wire``).

    ``key`` is the dedup identity — several submissions may share it
    (``dedup_hits`` counts the collapsed ones); ``id`` is unique per
    job.  ``config_wire`` stores the *merged client-visible* config
    (request overrides folded over the server default) — the managed
    checkpoint/cache/manifest paths are derived from the state directory
    at execution time, so a snapshot moved to a new state directory
    still resumes correctly.
    """

    id: str
    key: str
    estimator: str
    params: dict[str, Any]
    config_wire: dict[str, Any]
    priority: int = 0
    state: str = "queued"
    dedup_hits: int = 0
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    progress: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    error: str | None = None

    def to_wire(self) -> dict[str, Any]:
        """The job as a JSON-ready dict (also the persistence format)."""
        wire = asdict(self)
        wire["params"] = dict(self.params)
        wire["config_wire"] = dict(self.config_wire)
        if self.progress is not None:
            wire["progress"] = dict(self.progress)
        return wire

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "Job":
        known = {spec for spec in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job field(s) in snapshot: {unknown}")
        job = cls(**payload)
        if job.state not in JOB_STATES:
            raise ValueError(f"unknown job state {job.state!r} in snapshot; "
                             f"known: {JOB_STATES}")
        return job

    def mark_running(self) -> None:
        self.state = "running"
        self.started_at = time.time()

    def mark_done(self, result: dict[str, Any]) -> None:
        self.state = "done"
        self.result = result
        self.error = None
        self.finished_at = time.time()

    def mark_failed(self, error: str) -> None:
        self.state = "failed"
        self.error = error
        self.finished_at = time.time()

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")


class JobRegistry:
    """Every job the service has accepted, persisted as one JSON snapshot.

    ``path=None`` keeps the registry purely in memory (unit tests).
    ``load`` + ``unfinished`` + the service's re-enqueue implement the
    resume-on-restart contract documented in ``docs/SERVICE.md``.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._seq = 0

    # -- lookup --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job, oldest first (ids are sequential)."""
        return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def find_dedup_target(self, key: str) -> Job | None:
        """The live job an identical submission should collapse onto.

        The newest job with this ``key`` that did not fail — a failed
        job must not absorb new submissions (the retry would never
        happen), so after a failure the next identical submission starts
        fresh (and still finds the dead job's shards in cache/journal).
        """
        job_id = self._by_key.get(key)
        if job_id is None:
            return None
        job = self._jobs[job_id]
        return None if job.state == "failed" else job

    def unfinished(self) -> list[Job]:
        """Jobs a restarted server must re-enqueue (oldest first)."""
        return [job for job in self.jobs() if not job.finished]

    # -- mutation ------------------------------------------------------

    def create(self, *, key: str, estimator: str, params: dict[str, Any],
               config_wire: dict[str, Any], priority: int = 0) -> Job:
        """Mint a new ``queued`` job with the next sequential id."""
        self._seq += 1
        job = Job(id=f"job-{self._seq:05d}", key=key, estimator=estimator,
                  params=dict(params), config_wire=dict(config_wire),
                  priority=priority)
        self._jobs[job.id] = job
        self._by_key[key] = job.id
        return job

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        """Atomically snapshot every job to ``path`` (no-op when in-memory)."""
        if self.path is None:
            return
        snapshot = {
            "kind": _SNAPSHOT_KIND,
            "format": _SNAPSHOT_FORMAT,
            "seq": self._seq,
            "jobs": [job.to_wire() for job in self.jobs()],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(snapshot, sort_keys=True, indent=1),
                       encoding="utf-8")
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str | Path) -> "JobRegistry":
        """Rebuild a registry from a snapshot (fresh registry if absent).

        A malformed snapshot raises rather than silently starting empty:
        losing the job history would also orphan every journal and
        manifest under the state directory.
        """
        registry = cls(path)
        snapshot_path = Path(path)
        if not snapshot_path.exists():
            return registry
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        if snapshot.get("kind") != _SNAPSHOT_KIND:
            raise ValueError(f"{snapshot_path} is not a {_SNAPSHOT_KIND} "
                             f"snapshot (kind={snapshot.get('kind')!r})")
        if snapshot.get("format") != _SNAPSHOT_FORMAT:
            raise ValueError(f"unsupported jobs snapshot format "
                             f"{snapshot.get('format')!r}")
        registry._seq = int(snapshot.get("seq", 0))
        for payload in snapshot.get("jobs", []):
            job = Job.from_wire(payload)
            registry._jobs[job.id] = job
            # Later jobs win the key slot, matching create() order.
            registry._by_key[job.key] = job.id
        return registry
