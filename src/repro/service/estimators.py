"""The served estimator catalogue and the request-dedup identity.

The service exposes a *closed* catalogue of estimators — each an entry
in :data:`ESTIMATORS` pairing a name with a typed parameter schema and a
runner.  Params are validated with the same strictness as the config
wire format: unknown names, wrong types (including ``bool`` where an
``int`` is expected), and missing required params all raise
:class:`~repro.service.schemas.ServiceError` before a job is created.

:func:`job_key` is the cross-request dedup identity.  It hashes exactly
what determines the *numbers* a job produces: the estimator name, the
fully-defaulted params (so an omitted default and an explicitly-passed
default collide, as they must), and the config knobs that enter the v2
``plan_key`` — resolved shard count, ``rng_plan``, ``fingerprint`` —
plus the ``backend`` selection.  Scheduling knobs (workers, retries,
timeout, transport, observability) are deliberately absent: they can
never change a merged number, so they must never split a dedup class.
See ``docs/CACHING.md`` ("Cross-request dedup") for the contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

from ..runconfig import RunConfig
from .schemas import ServiceError

__all__ = ["ParamSpec", "EstimatorSpec", "ESTIMATORS", "validate_params",
           "job_key", "run_estimator"]


@dataclass(frozen=True)
class ParamSpec:
    """One estimator parameter: name, accepted JSON types, default, doc.

    ``required=True`` params have no default; for the rest ``default``
    is folded into the validated param dict, so every job record carries
    the *full* parameter set (dedup and reproducibility both need the
    defaulted form, not the sparse client payload).
    """

    name: str
    types: tuple[type, ...]
    doc: str
    required: bool = False
    default: Any = None

    def check(self, value: Any) -> Any:
        # bool subclasses int: accept it only where explicitly listed.
        if ((bool not in self.types and isinstance(value, bool))
                or not isinstance(value, self.types)):
            names = "/".join(t.__name__ for t in self.types)
            raise ServiceError(
                400, "bad-param",
                f"param {self.name!r} must be {names}, got {value!r}")
        return value


@dataclass(frozen=True)
class EstimatorSpec:
    """A served estimator: wire name, summary, param schema, runner.

    ``runner`` takes the fully-defaulted param dict and the job's
    resolved :class:`RunConfig` and returns the library result object
    (summarised onto the wire via :func:`repro.obs.summarise_result`).
    """

    name: str
    summary: str
    params: tuple[ParamSpec, ...]
    runner: Callable[[dict[str, Any], RunConfig], Any]

    def describe(self) -> dict[str, Any]:
        """JSON-ready schema for ``GET /v1/estimators``."""
        return {
            "name": self.name,
            "summary": self.summary,
            "params": [
                {
                    "name": spec.name,
                    "types": [t.__name__ for t in spec.types],
                    "required": spec.required,
                    "default": None if spec.required else spec.default,
                    "doc": spec.doc,
                }
                for spec in self.params
            ],
        }


def _run_non_manifestation(params: dict[str, Any], config: RunConfig) -> Any:
    from ..core.manifestation import estimate_non_manifestation
    from ..core.memory_models import get_model

    return estimate_non_manifestation(
        get_model(params["model"]),
        params["n"],
        params["trials"],
        seed=params["seed"],
        store_probability=params["store_probability"],
        body_length=params["body_length"],
        confidence=params["confidence"],
        config=config,
    )


def _run_canonical_bug(params: dict[str, Any], config: RunConfig) -> Any:
    from ..sim.executor import run_canonical_bug

    return run_canonical_bug(
        params["model"],
        params["threads"],
        params["trials"],
        seed=params["seed"],
        body_length=params["body_length"],
        fenced=params["fenced"],
        atomic=params["atomic"],
        confidence=params["confidence"],
        config=config,
    )


def _run_litmus_explore(params: dict[str, Any], config: RunConfig) -> Any:
    from ..litmus import explore_exhaustive, explore_random, get_test
    from ..litmus.zoo import get_zoo_model

    mode = params["mode"]
    if mode == "exhaustive":
        report = explore_exhaustive([get_test(params["test"])],
                                    [get_zoo_model(params["model"])],
                                    config=config)
        return report.to_json_dict()
    if mode == "random":
        table = explore_random(params["test"], params["model"],
                               params["trials"], seed=params["seed"],
                               config=config)
        return table.to_json_dict()
    raise ServiceError(
        400, "bad-param",
        f"param 'mode' must be 'exhaustive' or 'random', got {mode!r}")


def _run_litmus_family(params: dict[str, Any], config: RunConfig) -> Any:
    from ..errors import LitmusError
    from ..litmus import FamilySpec, sweep_family

    try:
        spec = FamilySpec(
            threads=params["threads"],
            ops_per_thread=params["ops_per_thread"],
            addresses=params["addresses"],
            spacing=params["spacing"],
            fence_density=float(params["fence_density"]),
            store_fraction=float(params["store_fraction"]),
        )
        report = sweep_family(
            spec, [params["model"]], count=params["count"],
            trials=params["trials"], seed=params["seed"],
            confidence=params["confidence"], config=config,
        )
    except LitmusError as error:
        raise ServiceError(400, "bad-param", str(error)) from None
    return report.to_json_dict()


_MODEL = ParamSpec("model", (str,), "memory model name (`SC`/`TSO`/`PSO`/`WO`)",
                   required=True)
_TRIALS = ParamSpec("trials", (int,), "Monte-Carlo trial budget",
                    required=True)
_SEED = ParamSpec("seed", (int,), "root seed of the deterministic run",
                  default=0)
_BODY = ParamSpec("body_length", (int,),
                  "instructions per thread body (the paper's k)", default=8)
_CONFIDENCE = ParamSpec("confidence", (float, int),
                        "Wilson interval confidence level", default=0.99)

#: Wire name -> served estimator.  A closed catalogue: the service never
#: imports estimators by client-supplied dotted path.
ESTIMATORS: dict[str, EstimatorSpec] = {
    "non_manifestation": EstimatorSpec(
        name="non_manifestation",
        summary="Pr[A] that a canonical data race does NOT manifest under "
                "the model's reordering semantics (the paper's §6 pipeline)",
        params=(
            _MODEL,
            _TRIALS,
            ParamSpec("n", (int,), "thread count", default=2),
            _SEED,
            ParamSpec("store_probability", (float, int),
                      "per-slot probability that an instruction is a store",
                      default=0.5),
            _BODY,
            _CONFIDENCE,
        ),
        runner=_run_non_manifestation,
    ),
    "canonical_bug": EstimatorSpec(
        name="canonical_bug",
        summary="manifestation statistics of the canonical increment race "
                "executed on the operational machine model",
        params=(
            _MODEL,
            _TRIALS,
            ParamSpec("threads", (int,), "racing thread count", default=2),
            _SEED,
            _BODY,
            ParamSpec("fenced", (bool,),
                      "insert fences around the critical section",
                      default=False),
            ParamSpec("atomic", (bool,),
                      "make the increment atomic (race eliminated)",
                      default=False),
            _CONFIDENCE,
        ),
        runner=_run_canonical_bug,
    ),
    "litmus_explore": EstimatorSpec(
        name="litmus_explore",
        summary="litmus exploration of one test under one model: the exact "
                "enumerated outcome set ('exhaustive', content-addressed in "
                "the shard cache) or a seed-disciplined outcome frequency "
                "table ('random')",
        params=(
            ParamSpec("test", (str,),
                      "litmus test name (`SB`/`MP`/`LB`/`IRIW`/...)",
                      required=True),
            _MODEL,
            ParamSpec("mode", (str,),
                      "'exhaustive' (exact outcome set) or 'random' "
                      "(sampled frequency table)", default="exhaustive"),
            ParamSpec("trials", (int,),
                      "random-mode trial budget (ignored by 'exhaustive')",
                      default=100_000),
            _SEED,
        ),
        runner=_run_litmus_explore,
    ),
    "litmus_family": EstimatorSpec(
        name="litmus_family",
        summary="manifestation brackets of a generated litmus-program "
                "family under one zoo model: seed-disciplined constrained "
                "random programs, sampled weak mass vs the enumerated SC "
                "baseline with Wilson intervals",
        params=(
            ParamSpec("model", (str,),
                      "zoo model name (`SC`/`TSO`/`PSO`/`WO`/`PSO-WB`/"
                      "`SC-NMCA`/`WO-NMCA`)", required=True),
            ParamSpec("threads", (int,), "threads per generated program",
                      default=2),
            ParamSpec("ops_per_thread", (int,),
                      "memory operations per thread (critical pair "
                      "included)", default=4),
            ParamSpec("addresses", (int,), "filler address-pool size",
                      default=2),
            ParamSpec("spacing", (int,),
                      "fillers strictly between the critical store and "
                      "load", default=0),
            ParamSpec("fence_density", (float, int),
                      "probability of a fence between consecutive "
                      "operations", default=0.0),
            ParamSpec("store_fraction", (float, int),
                      "probability a filler is a store", default=0.5),
            ParamSpec("count", (int,), "family members to generate",
                      default=4),
            ParamSpec("trials", (int,),
                      "sampling budget per family member", default=20_000),
            _SEED,
            _CONFIDENCE,
        ),
        runner=_run_litmus_family,
    ),
}


def validate_params(estimator: str, params: dict[str, Any]) -> dict[str, Any]:
    """Validate and *fully default* an estimator's params.

    Raises :class:`ServiceError` for an unknown estimator, unknown or
    wrongly-typed params, or a missing required param.  Returns the
    complete param dict (every schema entry present) — the canonical
    form both :func:`job_key` and the job record store, so dedup never
    depends on which defaults a client spelled out.
    """
    spec = ESTIMATORS.get(estimator)
    if spec is None:
        raise ServiceError(
            404, "unknown-estimator",
            f"unknown estimator {estimator!r}; "
            f"served: {sorted(ESTIMATORS)}")
    known = {p.name for p in spec.params}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ServiceError(
            400, "unknown-param",
            f"unknown param(s) for {estimator!r}: {unknown}; "
            f"known: {sorted(known)}")
    full: dict[str, Any] = {}
    for param in spec.params:
        if param.name in params:
            full[param.name] = param.check(params[param.name])
        elif param.required:
            raise ServiceError(
                400, "missing-param",
                f"estimator {estimator!r} requires param {param.name!r}")
        else:
            full[param.name] = param.default
    return full


def job_key(estimator: str, params: dict[str, Any], config: RunConfig) -> str:
    """The dedup identity of a submission (sha256[:16], like ``plan_key``).

    Hashes the estimator name, the fully-defaulted params, and the
    config's :meth:`~repro.runconfig.RunConfig.plan_key_inputs`
    (resolved shards / rng_plan / fingerprint) plus the ``backend``
    selection.  ``backend=None`` ("the driver's native default") is
    conservatively distinct from naming the default explicitly — a
    false split costs one redundant computation whose shards still hit
    the content-addressed cache; a false merge could serve a number
    computed by a different kernel.  Scheduling knobs never enter.
    """
    identity = {
        "estimator": estimator,
        "params": params,
        "backend": config.backend,
        **config.plan_key_inputs(),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def run_estimator(estimator: str, params: dict[str, Any],
                  config: RunConfig) -> Any:
    """Execute a validated job: look up the runner and run it.

    ``params`` must already be the fully-defaulted dict from
    :func:`validate_params`; ``config`` the job's resolved config (the
    service has already folded in its managed checkpoint/cache/manifest
    paths).  Returns the library result object.
    """
    return ESTIMATORS[estimator].runner(params, config)
