"""``repro.cache`` — the content-addressed shard result cache.

Built on the corrected v2 checkpoint keys (``trials``/``shards``/``seed``
/label **plus the kernel fingerprint**), the cache lets re-runs and
overlapping sweep points fetch completed shards instead of recomputing
them.  Pass ``cache="auto"`` (or a directory, or a :class:`ShardStore`)
to any sharded estimator, or use the ``--cache`` CLI flag; inspect and
manage the store with ``repro cache {stats,clear,verify}``.  Semantics,
key derivation, and the v1 → v2 migration note live in
``docs/CACHING.md``.

This package imports nothing from the rest of the library (the engine
imports it lazily), so the cache layer can never perturb the seeding
discipline.
"""

from .store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MEMO_ENTRIES,
    CacheStats,
    ShardStore,
    default_cache_root,
    resolve_cache,
    shard_entry_key,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MEMO_ENTRIES",
    "CacheStats",
    "ShardStore",
    "default_cache_root",
    "resolve_cache",
    "shard_entry_key",
]
