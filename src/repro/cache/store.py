"""Content-addressed on-disk store of completed shard results.

The paper's evaluation re-estimates the same quantities over and over —
per memory model, per γ, per thread count — and every one of those runs
shards into pure functions of ``(seed, shards, i, kernel)``.  A shard
computed once is therefore valid forever, and this store makes that
durable: each completed shard is written under a key derived from the
run's corrected v2 checkpoint identity (:func:`repro.stats.checkpoint.
plan_key`, which folds in the kernel fingerprint) plus the shard index
and its trial count.  Re-runs and overlapping sweep points fetch their
finished shards instead of recomputing them — bit-identically, because
the key *is* the computation's identity.

Layout and guarantees:

* **Sharded directories** — entry ``k`` lives at ``<root>/<k[:2]>/<k>.pkl``
  so no single directory grows unboundedly.
* **Integrity header** — every file starts with
  ``repro-cache:1:<key>:<sha256(payload)>`` followed by the pickled
  payload; :meth:`ShardStore.get` re-verifies the digest on read and
  treats any mismatch as a miss (deleting the corrupt entry), so a torn
  or tampered file can never produce a wrong number.
* **Atomic writes** — entries are written to a temp file and
  ``os.replace``d into place; readers never observe a partial entry.
* **Size-capped LRU eviction** — reads bump an entry's mtime; writes
  that push the store past ``max_bytes`` evict oldest-mtime entries
  first.
* **In-process memo tier** — a small ``OrderedDict`` LRU in front of the
  disk tier makes repeated probes within one process (tight sweep
  loops) free.

This package imports nothing from the rest of the library — the engine
(:func:`repro.stats.parallel.run_sharded`) imports *it*, lazily, so the
cache sits below the stats layer and can never perturb seeding.  Like
the checkpoint journal, entries are pickles: only point the store at
directories you trust.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MEMO_ENTRIES",
    "CacheStats",
    "ShardStore",
    "default_cache_root",
    "resolve_cache",
    "shard_entry_key",
]

#: Default on-disk size cap (512 MiB): generous for shard aggregates
#: (kilobytes each), bounded for shared developer machines.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Default in-process memo capacity (entries, not bytes).
DEFAULT_MEMO_ENTRIES = 256

_HEADER_PREFIX = b"repro-cache:1:"

#: Store registry: one :class:`ShardStore` per resolved root, so every
#: ``cache="auto"`` caller in a process shares one memo tier and one set
#: of hit/miss counters.
_STORES: dict[Path, "ShardStore"] = {}


def shard_entry_key(run_key: str, shard: int, trials: int) -> str:
    """The content address of one shard's result.

    ``run_key`` is the v2 :func:`repro.stats.checkpoint.plan_key` — it
    already encodes trials, shards, seed, label, and the kernel
    fingerprint — and the shard index plus its trial count pin the entry
    to one pure computation.  Components are colon-separated with
    fixed-format integers, so distinct triples cannot collide
    structurally.
    """
    payload = f"shard:{run_key}:{int(shard)}:{int(trials)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def default_cache_root() -> Path:
    """The default store location: ``$REPRO_CACHE_DIR`` or ``~/.cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "shards"


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one store (disk scan + process counters)."""

    root: str
    entries: int
    total_bytes: int
    max_bytes: int | None
    hits: int
    misses: int
    stored: int
    evictions: int


class ShardStore:
    """Two-tier (memo + disk) content-addressed cache of shard results.

    ``max_bytes=None`` disables eviction; ``memo_entries=0`` disables the
    in-process tier.  ``hits``/``misses``/``stored``/``evictions`` are
    process-lifetime counters (the obs layer reports per-run deltas).
    """

    def __init__(self, root: str | Path,
                 max_bytes: int | None = DEFAULT_MAX_BYTES,
                 memo_entries: int = DEFAULT_MEMO_ENTRIES):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.memo_entries = memo_entries
        self._memo: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # The get/put surface the engine uses
    # ------------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for ``key``, or ``default`` on a miss.

        Disk hits verify the integrity digest (mismatch == miss, and the
        corrupt file is removed), bump the entry's mtime for LRU, and
        populate the memo tier.
        """
        if self.memo_entries and key in self._memo:
            self._memo.move_to_end(key)
            self.hits += 1
            return self._memo[key]
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return default
        value = _decode_entry(raw, key)
        if value is _CORRUPT:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
            self.misses += 1
            return default
        try:
            os.utime(path)  # LRU recency
        except OSError:  # pragma: no cover - entry evicted underfoot
            pass
        self._memoise(key, value)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` under ``key`` atomically; returns evictions made."""
        payload = pickle.dumps(value)
        digest = hashlib.sha256(payload).hexdigest()
        header = _HEADER_PREFIX + f"{key}:{digest}".encode("ascii") + b"\n"
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + f".tmp{os.getpid()}")
        scratch.write_bytes(header + payload)
        os.replace(scratch, path)
        self._memoise(key, value)
        self.stored += 1
        evicted = self._evict(keep=key)
        self.evictions += evicted
        return evicted

    def _memoise(self, key: str, value: Any) -> None:
        if not self.memo_entries:
            return
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def _iter_entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.pkl"))

    def _evict(self, keep: str | None = None) -> int:
        """Drop oldest-mtime entries until the store fits ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        entries = []
        total = 0
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if keep is not None and path.stem == keep:
                continue  # never evict the entry just written
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction
                continue
            self._memo.pop(path.stem, None)
            total -= size
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # Maintenance surface (the ``repro cache`` CLI)
    # ------------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._iter_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        self._memo.clear()
        return removed

    def verify(self) -> tuple[int, list[Path]]:
        """Re-hash every entry; returns ``(ok_count, corrupt_paths)``.

        An entry is corrupt when its header is malformed, its embedded
        key disagrees with its filename, or its payload digest no longer
        matches.  Corrupt entries are left in place for inspection
        (``clear`` or a ``get`` removes them).
        """
        ok = 0
        corrupt: list[Path] = []
        for path in self._iter_entries():
            try:
                raw = path.read_bytes()
            except OSError:
                corrupt.append(path)
                continue
            if _decode_entry(raw, path.stem) is _CORRUPT:
                corrupt.append(path)
            else:
                ok += 1
        return ok, corrupt

    def stats(self) -> CacheStats:
        """Disk usage plus this process's hit/miss/store/evict counters."""
        entries = self._iter_entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing eviction
                pass
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=total,
            max_bytes=self.max_bytes,
            hits=self.hits,
            misses=self.misses,
            stored=self.stored,
            evictions=self.evictions,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardStore(root={str(self.root)!r}, max_bytes={self.max_bytes})"


_CORRUPT = object()


def _decode_entry(raw: bytes, key: str) -> Any:
    """Decode one entry file; the ``_CORRUPT`` sentinel on any mismatch."""
    if not raw.startswith(_HEADER_PREFIX):
        return _CORRUPT
    newline = raw.find(b"\n")
    if newline < 0:
        return _CORRUPT
    header = raw[len(_HEADER_PREFIX):newline].decode("ascii", "replace")
    payload = raw[newline + 1:]
    parts = header.split(":")
    if len(parts) != 2 or parts[0] != key:
        return _CORRUPT
    if hashlib.sha256(payload).hexdigest() != parts[1]:
        return _CORRUPT
    try:
        return pickle.loads(payload)
    except Exception:
        return _CORRUPT


def resolve_cache(cache: Any) -> ShardStore | None:
    """Normalise the estimators' ``cache=`` argument to a store (or None).

    ``None``/``False`` disable caching; an existing :class:`ShardStore`
    is used as-is; ``True`` or ``"auto"`` select the default root
    (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/shards``); any other
    string/path is used as the store root.  Repeated resolutions of the
    same root return the same instance (shared memo tier and counters).
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ShardStore):
        return cache
    if cache is True or cache == "auto":
        root = default_cache_root()
    elif isinstance(cache, (str, Path)):
        root = Path(cache)
    else:
        raise TypeError(
            f"cache must be None, bool, 'auto', a path, or a ShardStore; "
            f"got {type(cache).__name__}"
        )
    root = root.expanduser()
    store = _STORES.get(root)
    if store is None:
        store = ShardStore(root)
        _STORES[root] = store
    return store
