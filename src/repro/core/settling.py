"""The settling process (§3.1.2, Appendix A.2): randomized instruction reorder.

Settling takes an initial program order ``S_0`` and produces a random
model-legal reordering in ``m + 2`` rounds.  In round ``r`` instruction
``x_r`` is appended below the already-settled prefix and then repeatedly
swapped with the instruction directly above it; each swap succeeds with the
memory model's pair probability ``ρ_{τ1,τ2}`` (zero for pairs the model
does not relax, ``s`` otherwise) and the round ends at the first failure or
at position 1.  The single exception is the critical store, which always
fails to swap with the critical load (same location).

This module provides:

* :class:`SettlingProcess` — the faithful round-by-round simulator over
  :class:`~repro.core.instructions.Program` objects, with optional trace
  capture (the data behind the paper's Figure 1).
* :func:`sample_window_growth` — a fast sampler of the critical-window
  growth ``B_γ`` that dispatches to model-specific shortcuts:

  - SC: γ = 0 deterministically,
  - WO: two coupled geometric climbs (the window is program-independent),
  - TSO/PSO: the **trailing-store-run Markov chain** (see below),
  - anything else: full settling.

Trailing-store-run chain
------------------------
Under TSO (and PSO, whose extra ST/ST swaps never change the *type*
sequence) the only type-changing moves are loads climbing past stores.  The
number of contiguous STs at the bottom of the settled prefix — exactly the
quantity ``L_µ`` of Lemma 4.2 — therefore evolves as a Markov chain over
rounds: a new ST extends the run (``k → k + 1`` w.p. ``p``); a new LD
climbs ``j = min(Geom(s), k)`` stores, splitting the run to length ``j``
when it stops early and leaving it at ``k`` when it clears the whole run
and parks against the load above.  The stationary law of this chain *is*
the ``Pr[L_µ]`` of Lemma 4.2 (see :mod:`repro.core.tso_analysis` for the
exact solve), and simulating the chain costs O(m) per trial with no lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelDefinitionError
from ..stats.rng import RandomSource
from .instructions import (
    DEFAULT_STORE_PROBABILITY,
    InstructionType,
    Program,
    generate_program,
)
from .memory_models import LD, PSO, SC, ST, TSO, WO, MemoryModel

__all__ = [
    "SettlingResult",
    "SettlingTraceStep",
    "SettlingProcess",
    "sample_window_growth",
    "sample_trailing_run",
    "DEFAULT_BODY_LENGTH",
]

#: Body length used by samplers approximating the paper's ``m → ∞``.
#: Movement per round is geometric with ratio ``s ≤ 1/2`` in every paper
#: model, so the probability that any boundary effect reaches the critical
#: pair is below ``2**-DEFAULT_BODY_LENGTH`` — far under Monte-Carlo noise.
DEFAULT_BODY_LENGTH = 96


@dataclass(frozen=True)
class SettlingTraceStep:
    """One round of the settling process, for trace rendering (Figure 1).

    Attributes
    ----------
    round_index:
        The 1-based round (= the initial index of the settling instruction).
    swaps:
        How many positions the instruction climbed this round.
    order:
        Initial-order indices of the settled prefix after the round, top
        first.
    """

    round_index: int
    swaps: int
    order: tuple[int, ...]


class SettlingResult:
    """Outcome of settling one program: the permutation π of Appendix A.2.

    ``order[k]`` is the initial-order index of the instruction at final
    position ``k + 1``; :meth:`position_of` is the paper's ``π(i)``.
    """

    def __init__(
        self,
        program: Program,
        order: list[int],
        trace: tuple[SettlingTraceStep, ...] | None = None,
    ):
        self._program = program
        self._order = tuple(order)
        self._positions = {index: position + 1 for position, index in enumerate(order)}
        self._trace = trace

    @property
    def program(self) -> Program:
        return self._program

    @property
    def order(self) -> tuple[int, ...]:
        """Initial indices in final order (top of program first)."""
        return self._order

    @property
    def trace(self) -> tuple[SettlingTraceStep, ...] | None:
        """Per-round trace if requested, else ``None``."""
        return self._trace

    def position_of(self, initial_index: int) -> int:
        """The paper's ``π(i)``: final 1-based position of instruction ``i``."""
        return self._positions[initial_index]

    def final_types(self) -> list[InstructionType]:
        """Instruction types in final order."""
        return [self._program.type_of(index) for index in self._order]

    # ------------------------------------------------------------------
    # Critical-window geometry (§3.2)
    # ------------------------------------------------------------------

    @property
    def critical_load_position(self) -> int:
        """``π(m + 1)``."""
        return self.position_of(self._program.length - 1)

    @property
    def critical_store_position(self) -> int:
        """``π(m + 2)``."""
        return self.position_of(self._program.length)

    @property
    def window_growth(self) -> int:
        """The γ of event ``B_γ``: instructions strictly between the pair."""
        return self.critical_store_position - self.critical_load_position - 1

    @property
    def window_length(self) -> int:
        """Inclusive critical-window size ``Γ = γ + 2`` used by Theorem 6.2."""
        return self.window_growth + 2

    def window_indices(self) -> tuple[int, ...]:
        """The window ``W_k`` of Appendix A.3: final positions LD..ST."""
        return tuple(range(self.critical_load_position, self.critical_store_position + 1))


class SettlingProcess:
    """Round-by-round settling under a given memory model.

    This is the reference implementation: it handles any
    :class:`~repro.core.memory_models.MemoryModel` (including per-pair
    settle probabilities) and can record a full trace.  Use
    :func:`sample_window_growth` when only the window statistic is needed.
    """

    def __init__(self, model: MemoryModel):
        self._model = model

    @property
    def model(self) -> MemoryModel:
        return self._model

    def settle(
        self,
        program: Program,
        source: RandomSource,
        record_trace: bool = False,
    ) -> SettlingResult:
        """Run all ``m + 2`` settling rounds on ``program``.

        Parameters
        ----------
        program:
            The initial order ``S_0``.
        source:
            Randomness for the swap outcomes.
        record_trace:
            Capture the per-round snapshots needed to render Figure 1.
            Costs O(m²) memory; off by default.
        """
        model = self._model
        critical_load_index = program.length - 1
        critical_store_index = program.length
        order: list[int] = []
        trace: list[SettlingTraceStep] = []

        for round_index in range(1, program.length + 1):
            settling_type = program.type_of(round_index)
            position = len(order)  # 0-based position of the settling instruction
            order.append(round_index)
            swaps = 0
            while position > 0:
                above_index = order[position - 1]
                if round_index == critical_store_index and above_index == critical_load_index:
                    break  # same location: the swap automatically fails
                probability = model.settle_probability(
                    program.type_of(above_index), settling_type
                )
                if not source.bernoulli(probability):
                    break
                order[position - 1], order[position] = order[position], order[position - 1]
                position -= 1
                swaps += 1
            if record_trace:
                trace.append(SettlingTraceStep(round_index, swaps, tuple(order)))

        return SettlingResult(program, order, tuple(trace) if record_trace else None)

    def sample_result(
        self,
        source: RandomSource,
        body_length: int = DEFAULT_BODY_LENGTH,
        store_probability: float = DEFAULT_STORE_PROBABILITY,
    ) -> SettlingResult:
        """Generate a random program and settle it in one call."""
        program = generate_program(body_length, source, store_probability)
        return self.settle(program, source)


# ----------------------------------------------------------------------
# Fast samplers
# ----------------------------------------------------------------------


def _geometric_successes(source: RandomSource, success_probability: float) -> int:
    """Number of consecutive successes before the first failure.

    ``Pr[k] = (1 - s) * s**k`` — the per-round climb law of settling with
    uniform swap probability ``s``.
    """
    return source.geometric(success_probability)


def sample_trailing_run(
    model: MemoryModel,
    source: RandomSource,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> int:
    """Sample the trailing-store-run length ``µ`` of a settled TSO/PSO prefix.

    This is the random variable of the events ``L_µ`` (Lemma 4.2), drawn by
    simulating the trailing-run Markov chain for ``body_length`` rounds.
    Only meaningful for models whose sole type-changing relaxation is
    (ST, LD) — i.e. TSO and PSO; other models raise.
    """
    settle = _require_store_load_only(model)
    run = 0
    for _ in range(body_length):
        if source.bernoulli(store_probability):
            run += 1
        else:
            climb = _geometric_successes(source, settle)
            if climb < run:
                run = climb
    return run


def sample_window_growth(
    model: MemoryModel,
    source: RandomSource,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> int:
    """Sample the critical-window growth γ (event ``B_γ``) for one thread.

    Dispatches to a model-specific shortcut when one is exact, and falls
    back to full settling otherwise.  All shortcuts are validated against
    the reference simulator in the test suite.
    """
    if model.relaxed_pairs == SC.relaxed_pairs:
        return 0
    uniform = model.uniform_settle_probability
    if uniform is None:
        return _settle_for_window(model, source, body_length, store_probability)
    if model.relaxed_pairs == WO.relaxed_pairs:
        return _sample_window_weak_ordering(source, uniform, body_length)
    if model.relaxed_pairs == TSO.relaxed_pairs:
        run = sample_trailing_run(model, source, body_length, store_probability)
        return _climb_through_run(source, uniform, run)
    if model.relaxed_pairs == PSO.relaxed_pairs:
        run = sample_trailing_run(model, source, body_length, store_probability)
        load_climb = _climb_through_run(source, uniform, run)
        store_chase = min(_geometric_successes(source, uniform), load_climb)
        return load_climb - store_chase
    return _settle_for_window(model, source, body_length, store_probability)


def _sample_window_weak_ordering(
    source: RandomSource, settle: float, body_length: int
) -> int:
    """WO shortcut: both critical instructions climb geometrically.

    The critical load climbs ``i ~ Geom(s)`` positions (every pair is
    relaxed, so the program content is irrelevant); the critical store then
    climbs ``j = min(Geom(s), i)`` of the ``i`` instructions now separating
    it from the load, stopping automatically at the load.  γ = i − j.
    """
    load_climb = min(_geometric_successes(source, settle), body_length)
    store_chase = min(_geometric_successes(source, settle), load_climb)
    return load_climb - store_chase


def _climb_through_run(source: RandomSource, settle: float, run: int) -> int:
    """Critical-load climb through a trailing store run of length ``run``.

    Under TSO/PSO the load passes each of the ``run`` stores with
    probability ``s`` and parks against the load above the run if it clears
    them all: γ = min(Geom(s), run).
    """
    return min(_geometric_successes(source, settle), run)


def _settle_for_window(
    model: MemoryModel,
    source: RandomSource,
    body_length: int,
    store_probability: float,
) -> int:
    program = generate_program(body_length, source, store_probability)
    return SettlingProcess(model).settle(program, source).window_growth


def _require_store_load_only(model: MemoryModel) -> float:
    type_changing = {pair for pair in model.relaxed_pairs if pair[0] is not pair[1]}
    if type_changing != {(ST, LD)}:
        raise ModelDefinitionError(
            f"trailing-run sampling requires (ST, LD) as the only type-changing "
            f"relaxation (TSO/PSO); {model.name} relaxes {sorted(map(str, model.relaxed_pairs))}"
        )
    uniform = model.uniform_settle_probability
    if uniform is None:
        raise ModelDefinitionError(
            "trailing-run sampling requires a uniform settle probability"
        )
    return uniform
