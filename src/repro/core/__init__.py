"""The paper's contribution: program model, settling, shift process, joining.

Everything here is pure computation over the probabilistic model of
Jaffe et al. (PODC 2011); the mechanistic multiprocessor substrate lives in
:mod:`repro.sim`.
"""

from .distributions import (
    DiscreteDistribution,
    ValueWithError,
    geometric_distribution,
    point_mass,
)
from .fences import (
    Barrier,
    FencedItem,
    build_fenced_sequence,
    fenced_non_manifestation,
    fenced_window_distribution,
    finite_run_distribution,
    sample_fenced_window_growth,
    settle_fenced_window,
)
from .heterogeneous import (
    estimate_heterogeneous_non_manifestation,
    heterogeneous_disjointness,
    heterogeneous_non_manifestation,
    sample_heterogeneous_growths,
)
from .instructions import (
    CRITICAL_LOCATION,
    DEFAULT_STORE_PROBABILITY,
    LD,
    ST,
    Instruction,
    InstructionType,
    Program,
    generate_program,
    program_from_types,
)
from .manifestation import (
    RaoBlackwellResult,
    manifestation_bounds,
    asymptotic_exponent,
    estimate_non_manifestation,
    estimate_non_manifestation_rao_blackwell,
    log_non_manifestation,
    manifestation_probability,
    non_manifestation_probability,
    theorem_62_reference,
    tso_two_thread_bounds,
)
from .multibug import (
    estimate_multi_bug_survival,
    multi_bug_gap_curve,
    multi_bug_survival,
    shift_difference_pmf,
)
from .memory_models import (
    ALL_PAIRS,
    ATOMICITY_FLAVORS,
    PAPER_MODELS,
    PSO,
    SC,
    TSO,
    WO,
    MemoryModel,
    OrderedPair,
    get_model,
    model_digest,
    table1_rows,
)
from .partitions import (
    balanced_partition,
    bounded_partitions,
    partitions_in_box,
    phi_positive_range,
)
from .settling import (
    DEFAULT_BODY_LENGTH,
    SettlingProcess,
    SettlingResult,
    SettlingTraceStep,
    sample_trailing_run,
    sample_window_growth,
)
from .shift import (
    DEFAULT_SHIFT_RATIO,
    ShiftProcess,
    batch_disjoint,
    estimate_disjointness,
    segments_disjoint,
)
from .shift_analytic import (
    WINDOW_LENGTH_OFFSET,
    c_constant,
    disjointness_exchangeable,
    disjointness_iid,
    disjointness_probability,
    log_disjointness_iid,
    ordered_disjointness,
    prefactor,
)
from .tso_analysis import (
    conditional_run_distribution,
    mixing_rounds,
    run_chain_spectral_gap,
    f_probability_exact,
    f_probability_lower_bound,
    l_lower_bound_paper,
    l_probability_paper,
    paper_run_distribution,
    psi_pmf,
    run_length_distribution,
    steady_state_store_fraction,
    store_fraction_sequence,
)
from .window_analytic import (
    pso_window_distribution,
    pso_window_from_load_gap,
    sc_window_distribution,
    tso_window_distribution,
    tso_window_lower_bound,
    tso_window_upper_bound,
    window_distribution,
    window_from_run_distribution,
    wo_window_distribution,
)
from .window_sampling import sample_growth_matrix

__all__ = [name for name in dir() if not name.startswith("_")]
