"""Heterogeneous fleets: threads under *different* memory models.

Theorem 6.1 collapses the shift-process permutation sum only when every
segment length has the same marginal law.  Real systems increasingly mix
core types (big.LITTLE, accelerator + host) or migrate threads across
models, so this module extends the joined model of §6 to an arbitrary
assignment of memory models to threads:

* :func:`heterogeneous_disjointness` — the exact Pr[A] for *independent*
  per-thread window laws, by the order-conditioned Theorem 5.1 form:

  ``Pr[A] = prefactor(n, β) · Σ_σ Π_{i=1}^{n-1} E[β^{(n-i)(Γ_{σ(i)}+1)}]``

  (an n!-term sum over which thread holds the i-th largest shift — exact
  for fleets of SC/WO threads at any n, and for any fleet at n = 2).

* :func:`heterogeneous_non_manifestation` — the same, taking memory
  models and deriving their window laws.

* :func:`sample_heterogeneous_growths` /
  :func:`estimate_heterogeneous_non_manifestation` — the end-to-end Monte
  Carlo honouring the §6 coupling (all threads run identical copies of
  one random program, whatever their model), used to validate the exact
  route and to quantify the TSO/PSO shared-program dependence in mixed
  fleets.

Findings (benched in ``bench_heterogeneous_fleet.py``): at n = 2 the
formula makes mixing *exactly arithmetic averaging* of the homogeneous
survival probabilities (only per-thread marginal transforms enter); at
larger n the composition interpolates roughly log-linearly — each thread
downgraded from SC to WO multiplies Pr[A] by a near-constant factor, so
no single weak thread dominates, but none is free either.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from ..errors import ModelDefinitionError
from ..stats.montecarlo import BernoulliResult, estimate_event
from ..stats.rng import RandomSource
from .distributions import DiscreteDistribution, ValueWithError
from .memory_models import PSO, SC, TSO, WO, MemoryModel
from .settling import DEFAULT_BODY_LENGTH
from .shift import DEFAULT_SHIFT_RATIO, batch_disjoint
from .shift_analytic import (
    MAX_EXACT_SEGMENTS,
    WINDOW_LENGTH_OFFSET,
    prefactor,
)
from .window_analytic import window_distribution
from .window_sampling import sample_growth_matrix

__all__ = [
    "heterogeneous_disjointness",
    "heterogeneous_non_manifestation",
    "sample_heterogeneous_growths",
    "estimate_heterogeneous_non_manifestation",
]


def heterogeneous_disjointness(
    window_laws: list[DiscreteDistribution], beta: float = DEFAULT_SHIFT_RATIO
) -> ValueWithError:
    """Exact ``Pr[A]`` for independent, per-thread window-growth laws.

    Costs ``n!`` products of precomputed transforms; limited to
    ``MAX_EXACT_SEGMENTS`` threads like the Theorem 5.1 enumeration.
    """
    n = len(window_laws)
    if n < 1:
        raise ValueError("need at least one thread")
    if n == 1:
        return ValueWithError(1.0, 0.0)
    if n > MAX_EXACT_SEGMENTS:
        raise ValueError(
            f"exact heterogeneous evaluation limited to {MAX_EXACT_SEGMENTS} threads; "
            "use the Monte-Carlo route for larger fleets"
        )
    offset = WINDOW_LENGTH_OFFSET + 1  # Γ + 1 = growth + 3
    # transforms[k][j] = E[beta^{j (Γ_k + 1)}] for thread k, weight j.
    transforms: list[list[ValueWithError]] = []
    for law in window_laws:
        per_weight = [ValueWithError(1.0, 0.0)]  # j = 0 (unused placeholder)
        for weight in range(1, n):
            base = beta**weight
            inner = law.power_transform(base)
            factor = base**offset
            per_weight.append(ValueWithError(inner.value * factor, inner.error * factor))
        transforms.append(per_weight)

    scale = prefactor(n, beta)
    total = 0.0
    error = 0.0
    for order in permutations(range(n)):
        product = 1.0
        relative_error = 0.0
        for i, thread in enumerate(order[:-1], start=1):
            term = transforms[thread][n - i]
            product *= term.value
            if term.value > 0.0:
                relative_error += term.error / term.value
        total += product
        error += product * relative_error
    return ValueWithError(scale * total, scale * error)


def heterogeneous_non_manifestation(
    models: list[MemoryModel],
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    allow_independent_approximation: bool = False,
) -> ValueWithError:
    """Exact/approximate ``Pr[A]`` for a fleet of memory models.

    Window laws are independent across threads for SC/WO; TSO/PSO threads
    are coupled through the shared program, so fleets containing **two or
    more** store-buffer threads need ``allow_independent_approximation``
    (or the Monte-Carlo route).  A single TSO/PSO thread in an otherwise
    SC/WO fleet is exact — dependence needs at least two coupled windows.
    """
    if not models:
        raise ValueError("need at least one thread")
    coupled = sum(
        1 for model in models
        if model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs)
    )
    # At n = 2 only window marginals enter the formula, so even two coupled
    # threads are exact; at n >= 3 the joint law matters.
    if coupled >= 2 and len(models) >= 3 and not allow_independent_approximation:
        raise ModelDefinitionError(
            f"{coupled} store-buffer threads share the program; pass "
            "allow_independent_approximation=True or use "
            "estimate_heterogeneous_non_manifestation"
        )
    laws = [window_distribution(model, store_probability) for model in models]
    return heterogeneous_disjointness(laws, beta)


# ----------------------------------------------------------------------
# Monte Carlo with the shared-program coupling
# ----------------------------------------------------------------------


def sample_heterogeneous_growths(
    models: list[MemoryModel],
    source: RandomSource,
    trials: int,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = 0.5,
) -> np.ndarray:
    """Growth matrix ``(trials, n)`` for a mixed fleet sharing one program.

    The shared randomness is the per-trial instruction-type sequence; all
    settling randomness is per thread.  SC/WO threads do not consume the
    shared types (their laws are program-independent), which is
    distribution-preserving.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not models:
        raise ValueError("need at least one thread")
    needs_program = [
        model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs) for model in models
    ]
    store_mask = (
        source.bernoulli_array(store_probability, (trials, body_length))
        if any(needs_program)
        else None
    )
    growths = np.zeros((trials, len(models)), dtype=np.int64)
    for thread, model in enumerate(models):
        if model.relaxed_pairs == SC.relaxed_pairs:
            continue
        settle = model.uniform_settle_probability
        if settle is None:
            raise ModelDefinitionError(
                f"heterogeneous sampling needs a uniform settle probability "
                f"({model.name})"
            )
        if model.relaxed_pairs == WO.relaxed_pairs:
            load = np.minimum(source.geometric_array(settle, trials), body_length)
            chase = np.minimum(source.geometric_array(settle, trials), load)
            growths[:, thread] = load - chase
        elif needs_program[thread]:
            assert store_mask is not None
            growths[:, thread] = _store_buffer_growths(
                model, source, store_mask, settle
            )
        else:
            raise ModelDefinitionError(
                f"no heterogeneous sampler for relaxation set of {model.name}"
            )
    return growths


def _store_buffer_growths(
    model: MemoryModel,
    source: RandomSource,
    store_mask: np.ndarray,
    settle: float,
) -> np.ndarray:
    """TSO/PSO growths for one thread, driven by the shared type matrix."""
    trials, body_length = store_mask.shape
    runs = np.zeros(trials, dtype=np.int64)
    for round_index in range(body_length):
        climbs = source.geometric_array(settle, trials)
        split = np.minimum(runs, climbs)
        runs = np.where(store_mask[:, round_index], runs + 1, split)
    load_gap = np.minimum(source.geometric_array(settle, trials), runs)
    if model.relaxed_pairs == PSO.relaxed_pairs:
        chase = np.minimum(source.geometric_array(settle, trials), load_gap)
        return load_gap - chase
    return load_gap


def estimate_heterogeneous_non_manifestation(
    models: list[MemoryModel],
    trials: int,
    seed: int | None = 0,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    body_length: int = DEFAULT_BODY_LENGTH,
    confidence: float = 0.99,
) -> BernoulliResult:
    """End-to-end Monte-Carlo ``Pr[A]`` for a mixed fleet."""
    if len(models) < 2:
        raise ValueError("the joined model needs at least 2 threads")

    def batch_trial(source: RandomSource, batch: int) -> int:
        growths = sample_heterogeneous_growths(
            models, source, batch, body_length, store_probability
        )
        lengths = growths + WINDOW_LENGTH_OFFSET
        shifts = source.geometric_array(beta, (batch, len(models)))
        return int(batch_disjoint(shifts, lengths).sum())

    return estimate_event(batch_trial, trials, seed=seed, confidence=confidence)
