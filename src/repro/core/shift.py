"""The shift process of §5 (Definition 1): random interleaving of windows.

``n`` closed integer segments of lengths ``γ̄ = (γ_1, …, γ_n)`` originate
at 0 and are translated by i.i.d. geometric shifts
``Pr[s_i = k] = (1 - β) β^k`` (the paper's ``β = 1/2`` gives
``2^{-(k+1)}``).  The event of interest, ``A(γ̄)``, is that the shifted
segments ``[s_i, s_i + γ_i]`` are *mutually disjoint*.

Disjointness convention
-----------------------
Segments are **closed** intervals with integer endpoints, so two segments
are disjoint iff the later one starts strictly past the earlier one's end:
``s_j ≥ s_i + γ_i + 1`` (shared endpoints count as overlap).  This is the
convention under which every closed form in §5/§6 of the paper holds — it
is visible in the proof of Theorem 5.1, where segment ``j`` following
segment ``i`` contributes a factor ``2^{-(ℓ + γ_i + 1)} = Pr[s_j ≥ ℓ +
γ_i + 1]``, and it is what makes Theorem 6.2's SC value come out to 1/6.
It corresponds to a window's closed time interval from its load's *read
instant* to its store's *commit instant*.

The paper is not perfectly consistent about this: Figure 2's caption calls
segments that merely touch "disjoint" (a half-open reading), and the
window-index formulation of Appendix A.3 differs by one unit as well.
Because the theorems' numbers are the ground truth being reproduced, the
closed convention is the default everywhere; pass ``closed=False`` to the
checkers to get the half-open reading (used only to reproduce Figure 2's
caption verbatim).  See EXPERIMENTS.md for the full accounting.

This module is the *simulation* side: samplers and vectorised disjointness
checks.  Closed forms live in :mod:`repro.core.shift_analytic`.
"""

from __future__ import annotations

import numpy as np

from ..stats.montecarlo import BernoulliResult, estimate_event
from ..stats.rng import RandomSource

__all__ = [
    "ShiftProcess",
    "segments_disjoint",
    "batch_disjoint",
    "estimate_disjointness",
    "DEFAULT_SHIFT_RATIO",
]

#: The paper's geometric-shift ratio β (``Pr[s=k] = (1-β)β^k``).
DEFAULT_SHIFT_RATIO = 0.5


def segments_disjoint(
    shifts: np.ndarray | list[int],
    lengths: np.ndarray | list[int],
    closed: bool = True,
) -> bool:
    """Whether segments ``[shifts[i], shifts[i] + lengths[i]]`` are
    mutually disjoint.

    With ``closed=True`` (the theorem convention; default) a shared
    endpoint counts as overlap; ``closed=False`` gives the half-open
    reading Figure 2's caption uses.

    >>> segments_disjoint([0, 3], [2, 1])
    True
    >>> segments_disjoint([0, 2], [2, 1])  # endpoint 2 is shared
    False
    >>> segments_disjoint([0, 2], [2, 1], closed=False)
    True
    """
    shifts = np.asarray(shifts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if shifts.shape != lengths.shape or shifts.ndim != 1:
        raise ValueError("shifts and lengths must be 1-d arrays of equal size")
    order = np.argsort(shifts, kind="stable")
    starts = shifts[order]
    ends = starts + lengths[order]
    if closed:
        return bool(np.all(starts[1:] > ends[:-1]))
    return bool(np.all(starts[1:] >= ends[:-1]))


def batch_disjoint(shifts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vectorised :func:`segments_disjoint` over a batch.

    Parameters
    ----------
    shifts:
        Integer array of shape ``(batch, n)``.
    lengths:
        Integer array of shape ``(n,)`` or ``(batch, n)``.

    Returns a boolean array of shape ``(batch,)``.
    """
    shifts = np.asarray(shifts, dtype=np.int64)
    if shifts.ndim != 2:
        raise ValueError(f"shifts must be 2-d (batch, n), got shape {shifts.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim == 1:
        lengths = np.broadcast_to(lengths, shifts.shape)
    if lengths.shape != shifts.shape:
        raise ValueError(f"lengths shape {lengths.shape} incompatible with {shifts.shape}")
    order = np.argsort(shifts, axis=1, kind="stable")
    starts = np.take_along_axis(shifts, order, axis=1)
    ends = starts + np.take_along_axis(lengths, order, axis=1)
    return np.all(starts[:, 1:] > ends[:, :-1], axis=1)


class ShiftProcess:
    """Sampler for the shift process with geometric ratio ``beta``."""

    def __init__(self, beta: float = DEFAULT_SHIFT_RATIO):
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must lie in [0, 1), got {beta}")
        self._beta = beta

    @property
    def beta(self) -> float:
        return self._beta

    def sample_shifts(self, source: RandomSource, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. shifts."""
        return source.geometric_array(self._beta, count)

    def sample_event(self, source: RandomSource, lengths: np.ndarray | list[int]) -> bool:
        """One draw of the disjointness event ``A(γ̄)``."""
        lengths = np.asarray(lengths, dtype=np.int64)
        shifts = self.sample_shifts(source, lengths.size)
        return segments_disjoint(shifts, lengths)

    def count_disjoint(
        self, source: RandomSource, lengths: np.ndarray | list[int], batch: int
    ) -> int:
        """Number of disjoint outcomes among ``batch`` independent draws."""
        lengths = np.asarray(lengths, dtype=np.int64)
        shifts = source.geometric_array(self._beta, (batch, lengths.size))
        return int(batch_disjoint(shifts, lengths).sum())


def estimate_disjointness(
    lengths: list[int],
    trials: int,
    beta: float = DEFAULT_SHIFT_RATIO,
    seed: int | None = 0,
    confidence: float = 0.99,
) -> BernoulliResult:
    """Monte-Carlo estimate of ``Pr[A(γ̄)]`` with a confidence interval.

    The benches compare this against the exact Theorem 5.1 value from
    :func:`repro.core.shift_analytic.disjointness_probability`.
    """
    process = ShiftProcess(beta)

    def batch_trial(source: RandomSource, batch: int) -> int:
        return process.count_disjoint(source, lengths, batch)

    return estimate_event(batch_trial, trials, seed=seed, confidence=confidence)
