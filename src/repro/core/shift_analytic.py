"""Closed forms for the shift process — Theorem 5.1, Corollary 5.2, Theorem 6.1.

Let the shifts be i.i.d. geometric with ratio β (``Pr[s=k] = (1-β)β^k``)
and let ``γ̄`` be the segment lengths.  Conditioning on the *order* of the
shifts (largest first) and exploiting memorylessness, the paper derives

    ``Pr[A(γ̄) ∧ Y_σ] = Π_{i=1}^{n-1} (1-β) · β^{(n-i)(γ_{σ(i)}+1)} / (1 - β^{n-i+1})``

summed over all ``n!`` orders σ (Theorem 5.1; the paper states the β = 1/2
case).  Corollary 5.2 packages the prefactor as ``c(n)·2^{-binom(n+1,2)}``
with ``c(n) ∈ [2, 4]`` and ``c(2) = 8/3``; Theorem 6.1 shows that for
segment lengths with identical marginals every order contributes equally:

    ``Pr[A(Γ̄)] = prefactor(n, β) · n! · E[Π_{i=1}^{n-1} β^{(n-i)(Γ_i+1)}]``.

All forms are provided in linear and log space (Theorem 6.3 needs
``Pr[A] ≈ e^{-1.04 n²}``, which underflows doubles beyond n ≈ 30).
"""

from __future__ import annotations

import math
from itertools import permutations

from .distributions import DiscreteDistribution, ValueWithError

__all__ = [
    "ordered_disjointness",
    "disjointness_probability",
    "prefactor",
    "log_prefactor",
    "c_constant",
    "disjointness_iid",
    "log_disjointness_iid",
    "log_expected_power",
    "MAX_EXACT_SEGMENTS",
]

#: Exact permutation enumeration is O(n!); refuse beyond this.
MAX_EXACT_SEGMENTS = 10

#: Offset between a window's *growth* γ and its segment length Γ = γ + 2
#: (the closed read-to-commit interval; see repro.core.shift docstring).
WINDOW_LENGTH_OFFSET = 2
__all__.append("WINDOW_LENGTH_OFFSET")


def _check_beta(beta: float) -> None:
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must lie in (0, 1), got {beta}")


def ordered_disjointness(lengths_largest_shift_first: list[int], beta: float = 0.5) -> float:
    """``Pr[A(γ̄) ∧ Y_σ]`` for one shift order (Theorem 5.1's inner product).

    ``lengths_largest_shift_first[i]`` is the length of the segment with the
    (i+1)-th largest shift — the paper's ``γ_{σ(i+1)}``.  The last segment
    (smallest shift) contributes no factor.
    """
    _check_beta(beta)
    n = len(lengths_largest_shift_first)
    if n == 0:
        raise ValueError("need at least one segment")
    result = 1.0
    for i, gamma in enumerate(lengths_largest_shift_first[:-1], start=1):
        if gamma < 0:
            raise ValueError(f"segment lengths must be non-negative, got {gamma}")
        result *= (1.0 - beta) * beta ** ((n - i) * (gamma + 1)) / (1.0 - beta ** (n - i + 1))
    return result


def disjointness_probability(lengths: list[int], beta: float = 0.5) -> float:
    """Theorem 5.1: exact ``Pr[A(γ̄)]`` by summing over all shift orders.

    >>> round(disjointness_probability([2, 2]), 6)  # SC windows, n = 2
    0.166667
    """
    n = len(lengths)
    if n == 1:
        return 1.0
    if n > MAX_EXACT_SEGMENTS:
        raise ValueError(
            f"exact enumeration limited to {MAX_EXACT_SEGMENTS} segments (n! terms); "
            "use disjointness_iid / Monte Carlo for larger n"
        )
    return sum(ordered_disjointness(list(order), beta) for order in permutations(lengths))


def prefactor(n: int, beta: float = 0.5) -> float:
    """The order-independent factor ``Π_{i=1}^{n-1} (1-β)/(1-β^{n-i+1})``.

    Theorem 5.1's probability is ``prefactor · Σ_σ β^{Σ_i (n-i)(γ_{σ(i)}+1)}``.
    """
    return math.exp(log_prefactor(n, beta))


def log_prefactor(n: int, beta: float = 0.5) -> float:
    """Natural log of :func:`prefactor` (safe for large n)."""
    _check_beta(beta)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (n - 1) * math.log(1.0 - beta) - sum(
        math.log(1.0 - beta**i) for i in range(2, n + 1)
    )


def c_constant(n: int, beta: float = 0.5) -> float:
    """Corollary 5.2's ``c(n)``, with ``Pr[A] = c(n) β^{binom(n+1,2)} Σ_σ Π β^{(n-i)γ_{σ(i)}}``.

    For β = 1/2: ``c(n) = 2 / Π_{i=2}^{n} (1 - 2^{-i})``, which lies in
    [2, 4] and equals 8/3 at n = 2 (both asserted in the tests).
    """
    _check_beta(beta)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # prefactor · β^{binom(n,2)} = c(n) · β^{binom(n+1,2)}  ⇒  c = prefactor / β^n
    return prefactor(n, beta) / beta**n


# ----------------------------------------------------------------------
# Theorem 6.1 — identical marginals
# ----------------------------------------------------------------------


def log_expected_power(
    window_growth: DiscreteDistribution,
    exponent_scale: int,
    beta: float = 0.5,
    length_offset: int = WINDOW_LENGTH_OFFSET,
) -> float:
    """``log E[β^{k (Γ + 1)}]`` for window length ``Γ = growth + length_offset``.

    This is the per-position factor of Theorem 6.1 under independence:
    position ``i`` from the bottom contributes ``E[β^{i(Γ_i + 1)}]``.
    Computed in log space as ``k·(L+1)·log β + log E[(β^k)^growth]`` so it
    stays finite for thread counts in the hundreds.

    ``length_offset`` is the base critical-section duration L: the paper's
    canonical bug has L = 2 (the load's read step to the store's commit);
    longer critical sections (local computation between the racy accesses)
    raise it.
    """
    _check_beta(beta)
    if exponent_scale < 1:
        raise ValueError(f"exponent scale must be >= 1, got {exponent_scale}")
    if length_offset < 1:
        raise ValueError(f"length offset must be >= 1, got {length_offset}")
    base = beta**exponent_scale
    transform = window_growth.power_transform(base)
    if transform.value <= 0.0:
        raise ValueError("window distribution has no mass reachable by the transform")
    offset = length_offset + 1  # Γ + 1 = growth + L + 1
    return exponent_scale * offset * math.log(beta) + math.log(transform.value)


def disjointness_iid(
    window_growth: DiscreteDistribution,
    n: int,
    beta: float = 0.5,
    length_offset: int = WINDOW_LENGTH_OFFSET,
) -> ValueWithError:
    """Theorem 6.1 specialised to *independent* identical window laws.

    ``Pr[A] = prefactor · n! · Π_{i=1}^{n-1} E[β^{i(Γ+1)}]`` — exact for SC
    (degenerate windows) and WO (program-independent windows) at any n, and
    exact for *any* model at n = 2 where only marginals enter.  For TSO/PSO
    at n ≥ 3 this is the independent-window approximation; the joined-model
    module quantifies its error against the shared-program Monte Carlo.
    """
    log_value = log_disjointness_iid(window_growth, n, beta, length_offset)
    value = math.exp(log_value)
    # Propagate the window distribution's truncation error: each factor's
    # relative error is bounded by tail/E, conservatively summed in log space.
    relative = 0.0
    for i in range(1, n):
        transform = window_growth.power_transform(beta**i)
        if transform.value > 0.0:
            relative += transform.error / transform.value
    return ValueWithError(value, value * min(relative, 1.0))


def log_disjointness_iid(
    window_growth: DiscreteDistribution,
    n: int,
    beta: float = 0.5,
    length_offset: int = WINDOW_LENGTH_OFFSET,
) -> float:
    """Natural log of :func:`disjointness_iid` (Theorem 6.3 needs n ≫ 30)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    total = log_prefactor(n, beta) + math.lgamma(n + 1)
    for i in range(1, n):
        total += log_expected_power(window_growth, i, beta, length_offset)
    return total


def disjointness_exchangeable(
    joint_expectation: float, n: int, beta: float = 0.5
) -> float:
    """Theorem 6.1 in full generality: caller supplies
    ``E[Π_{i=1}^{n-1} β^{(n-i)(Γ_i+1)}]`` for the (possibly dependent)
    exchangeable window lengths; returns ``prefactor · n! · E``.
    """
    if joint_expectation < 0.0:
        raise ValueError(f"expectation must be non-negative, got {joint_expectation}")
    return prefactor(n, beta) * math.factorial(n) * joint_expectation


__all__.append("disjointness_exchangeable")
