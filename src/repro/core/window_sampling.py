"""Vectorised Monte-Carlo samplers for critical-window growth.

The joined model of §6 needs, per trial, the window growths of ``n``
threads that share **one** initial program but reorder independently
(the paper stresses this coupling: "we generate a single initial random
program, then independently reorder n copies").  These samplers produce
``(trials, threads)`` growth matrices honouring that dependence structure,
using numpy throughout:

* **SC** — all zeros.
* **WO** — the window law is program-independent (every pair may swap at
  the same rate), so entries are i.i.d.: two coupled geometric climbs.
* **TSO / PSO** — per trial, one shared store/load draw per settling
  round drives the trailing-run Markov chains of all threads in parallel
  (independent climb randomness per thread), then the critical-load climb
  and, for PSO, the critical-store chase.
* anything else — an honest per-trial loop over the reference settler
  (:class:`repro.core.settling.SettlingProcess`) with a shared program.

Each sampler is validated against the scalar reference in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..stats.rng import RandomSource
from .instructions import DEFAULT_STORE_PROBABILITY, generate_program
from .memory_models import LD, PSO, SC, ST, TSO, WO, MemoryModel
from .settling import DEFAULT_BODY_LENGTH, SettlingProcess

__all__ = ["sample_growth_matrix"]


def sample_growth_matrix(
    model: MemoryModel,
    source: RandomSource,
    trials: int,
    threads: int,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> np.ndarray:
    """Sample window growths, shape ``(trials, threads)``.

    Rows are independent trials; within a row the threads share one random
    program and reorder independently.
    """
    if trials <= 0 or threads <= 0:
        raise ValueError(f"trials and threads must be positive, got {trials}, {threads}")
    shape = (trials, threads)
    if model.relaxed_pairs == SC.relaxed_pairs:
        return np.zeros(shape, dtype=np.int64)
    settle = model.uniform_settle_probability
    if settle is None:
        return _sample_growth_reference(
            model, source, trials, threads, body_length, store_probability
        )
    if model.relaxed_pairs == WO.relaxed_pairs:
        return _sample_growth_weak_ordering(source, settle, shape, body_length)
    if model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs):
        chase = model.relaxed_pairs == PSO.relaxed_pairs
        return _sample_growth_store_buffer(
            source, settle, store_probability, shape, body_length, chase
        )
    return _sample_growth_reference(
        model, source, trials, threads, body_length, store_probability
    )


def _sample_growth_weak_ordering(
    source: RandomSource,
    settle: float,
    shape: tuple[int, int],
    body_length: int,
) -> np.ndarray:
    """WO: γ = i − min(Geom(s), i) with i = min(Geom(s), m)."""
    load_climb = np.minimum(source.geometric_array(settle, shape), body_length)
    store_chase = np.minimum(source.geometric_array(settle, shape), load_climb)
    return load_climb - store_chase


def _sample_growth_store_buffer(
    source: RandomSource,
    settle: float,
    store_probability: float,
    shape: tuple[int, int],
    body_length: int,
    chase: bool,
) -> np.ndarray:
    """TSO/PSO: shared-program trailing-run chains, advanced per round.

    The per-round instruction type is drawn once per *trial* (the shared
    program); the climb randomness is per (trial, thread).
    """
    trials, _threads = shape
    runs = np.zeros(shape, dtype=np.int64)
    for _ in range(body_length):
        is_store = source.bernoulli_array(store_probability, trials)
        climbs = source.geometric_array(settle, shape)
        next_runs = np.minimum(runs, climbs)  # a LD splits/keeps the run
        runs = np.where(is_store[:, np.newaxis], runs + 1, next_runs)
    load_gap = np.minimum(source.geometric_array(settle, shape), runs)
    if not chase:
        return load_gap
    store_chase = np.minimum(source.geometric_array(settle, shape), load_gap)
    return load_gap - store_chase


def _sample_growth_reference(
    model: MemoryModel,
    source: RandomSource,
    trials: int,
    threads: int,
    body_length: int,
    store_probability: float,
) -> np.ndarray:
    """Fallback for custom models: full settling with a shared program."""
    process = SettlingProcess(model)
    growths = np.zeros((trials, threads), dtype=np.int64)
    for trial in range(trials):
        program = generate_program(body_length, source, store_probability)
        for thread in range(threads):
            growths[trial, thread] = process.settle(program, source).window_growth
    return growths
