"""The joined model (§6): probability that the canonical data race manifests.

This module combines the window laws of §4 with the shift process of §5 to
evaluate the paper's headline quantities:

* ``Pr[A]`` — the probability that **no** pair of critical windows
  overlaps when ``n`` identically-programmed threads execute (Theorem 6.2
  for n = 2; Theorem 6.3's ``e^{-n²(1+o(1))}`` asymptotics for large n).
* ``Pr[bug] = 1 − Pr[A]`` — the manifestation probability.

Evaluation routes, in decreasing exactness:

1. **Closed/numeric-exact** — SC (any n), WO (any n; its windows are
   independent of the shared program), and *any* paper model at n = 2
   (only window marginals enter the n = 2 formula).  TSO/PSO marginals
   come from the exact run-chain solve.
2. **Rao–Blackwellised Monte Carlo** — for TSO/PSO at n ≥ 3, where windows
   are exchangeable but dependent through the shared program: sample
   programs, compute each program's *conditional* window law exactly
   (a DP), apply Theorem 6.1 conditionally, and average.  Variance is
   dramatically lower than raw simulation because all settling/shift
   randomness is integrated out analytically.
3. **End-to-end Monte Carlo** — simulate everything (shared program,
   per-thread settling, geometric shifts, overlap check); the ground truth
   that validates routes 1–2 in the benches.

All probabilities are available in log space (route 1) since Theorem 6.3's
regime underflows doubles beyond n ≈ 30.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import numpy as np

from ..errors import ModelDefinitionError
from ..runconfig import UNSET, RunConfig, resolve_run_config
from ..stats.checkpoint import ShardCheckpoint
from ..stats.montecarlo import BernoulliResult, run_event_trials
from ..stats.rng import RandomSource
from .distributions import DiscreteDistribution, ValueWithError
from .memory_models import PSO, SC, TSO, WO, MemoryModel
from .settling import DEFAULT_BODY_LENGTH
from .shift import DEFAULT_SHIFT_RATIO
from .shift_analytic import (
    WINDOW_LENGTH_OFFSET,
    disjointness_iid,
    log_disjointness_iid,
)
from .tso_analysis import conditional_run_distribution
from .window_analytic import (
    pso_window_from_load_gap,
    window_distribution,
    window_from_run_distribution,
)

__all__ = [
    "non_manifestation_probability",
    "manifestation_probability",
    "log_non_manifestation",
    "tso_two_thread_bounds",
    "theorem_62_reference",
    "estimate_non_manifestation",
    "RaoBlackwellResult",
    "estimate_non_manifestation_rao_blackwell",
    "asymptotic_exponent",
]

#: Models whose windows are genuinely independent across threads, making
#: the iid route exact at every thread count.
_INDEPENDENT_WINDOW_MODELS = (SC.relaxed_pairs, WO.relaxed_pairs)


def _iid_route_is_exact(model: MemoryModel, n: int) -> bool:
    return n <= 2 or model.relaxed_pairs in _INDEPENDENT_WINDOW_MODELS


def non_manifestation_probability(
    model: MemoryModel,
    n: int = 2,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    allow_independent_approximation: bool = False,
    critical_section_length: int = WINDOW_LENGTH_OFFSET,
) -> ValueWithError:
    """``Pr[A]``: no two critical windows overlap (Theorem 6.2 quantities).

    Exact for SC/WO at any ``n`` and for every paper model at ``n = 2``.
    For TSO/PSO at ``n ≥ 3`` the windows are dependent through the shared
    program; pass ``allow_independent_approximation=True`` to accept the
    independent-window approximation (its error is quantified by the
    Rao–Blackwell and end-to-end estimators), otherwise this raises.

    ``critical_section_length`` generalises the canonical bug's base
    window of 2 time units: a critical section with extra local work
    between the racy load and store occupies more steps, widening every
    thread's vulnerable interval regardless of the memory model.

    >>> value = non_manifestation_probability(SC)
    >>> round(value.value, 6)
    0.166667
    """
    if n < 2:
        raise ValueError(f"the joined model needs n >= 2 threads, got {n}")
    if not _iid_route_is_exact(model, n) and not allow_independent_approximation:
        raise ModelDefinitionError(
            f"{model.name} windows are dependent through the shared program at "
            f"n = {n}; use estimate_non_manifestation_rao_blackwell / "
            "estimate_non_manifestation, or pass allow_independent_approximation=True"
        )
    growth = window_distribution(model, store_probability)
    return disjointness_iid(growth, n, beta, critical_section_length)


def manifestation_probability(
    model: MemoryModel,
    n: int = 2,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    allow_independent_approximation: bool = False,
) -> ValueWithError:
    """``Pr[bug] = 1 − Pr[A]`` — the reliability metric of the paper."""
    survival = non_manifestation_probability(
        model, n, store_probability, beta, allow_independent_approximation
    )
    return ValueWithError(1.0 - survival.value, survival.error)


def log_non_manifestation(
    model: MemoryModel,
    n: int,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    allow_independent_approximation: bool = False,
) -> float:
    """Natural log of ``Pr[A]`` — the Theorem 6.3 scale (n up to hundreds)."""
    if n < 2:
        raise ValueError(f"the joined model needs n >= 2 threads, got {n}")
    if not _iid_route_is_exact(model, n) and not allow_independent_approximation:
        raise ModelDefinitionError(
            f"{model.name} at n = {n} requires allow_independent_approximation=True "
            "for the analytic route"
        )
    growth = window_distribution(model, store_probability)
    return log_disjointness_iid(growth, n, beta)


def asymptotic_exponent(
    model: MemoryModel,
    n: int,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
) -> float:
    """Theorem 6.3's normalised exponent ``−ln Pr[A] / n²``.

    The theorem asserts this converges to the *same* constant for every
    memory model (``(3/2)·ln 2 ≈ 1.0397`` at the paper's parameters); the
    thread-scaling bench plots it per model.
    """
    return -log_non_manifestation(
        model, n, store_probability, beta, allow_independent_approximation=True
    ) / (n * n)


def manifestation_bounds(
    model: MemoryModel,
    n: int,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
) -> tuple[float, float]:
    """Rigorous Bonferroni brackets on ``Pr[bug]`` at any thread count.

    Each thread pair, marginally, is exactly the n = 2 system (shifts are
    i.i.d. and pairwise window marginals need no joint law), so with
    ``q = Pr[one fixed pair overlaps]``:

    ``q ≤ Pr[bug] ≤ min(1, binom(n, 2) · q)``.

    Unlike the independent-window approximation these hold *exactly* for
    the dependent TSO/PSO fleets; they are informative for small n (the
    union bound saturates once ``binom(n,2)·q`` passes 1, which the
    paper's e^{-n²} regime reaches quickly).
    """
    if n < 2:
        raise ValueError(f"need n >= 2 threads, got {n}")
    pair_overlap = 1.0 - non_manifestation_probability(
        model, 2, store_probability, beta
    ).value
    upper = min(1.0, math.comb(n, 2) * pair_overlap)
    return pair_overlap, upper


__all__.append("manifestation_bounds")


# ----------------------------------------------------------------------
# Theorem 6.2 reference values
# ----------------------------------------------------------------------


def tso_two_thread_bounds() -> tuple[float, float]:
    """The paper's Theorem 6.2 TSO interval: ``(58/441, 58/441 + 1/189)``.

    Stated in the paper as ``0.1315 < Pr[A] < 0.1369``.
    """
    lower = 58.0 / 441.0
    return lower, lower + 1.0 / 189.0


def theorem_62_reference() -> dict[str, object]:
    """The published n = 2 values: SC = 1/6, WO = 7/54, TSO in bounds."""
    return {
        "SC": 1.0 / 6.0,
        "TSO": tso_two_thread_bounds(),
        "WO": 7.0 / 54.0,
    }


# ----------------------------------------------------------------------
# Route 3 — end-to-end Monte Carlo
# ----------------------------------------------------------------------


def _disjointness_batch_trial(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """One vectorised §6 batch: settle windows, shift threads, count A.

    The kernel itself lives in :func:`repro.kernels.joined.
    non_manifestation_batch` (relocated verbatim, so fixed-seed results
    are unchanged); this module-level wrapper keeps the historical pickle
    identity for ``functools.partial`` fan-out over worker processes.
    The import is deferred because :mod:`repro.kernels` imports this
    module's package during its own initialisation.
    """
    from ..kernels.joined import non_manifestation_batch

    return non_manifestation_batch(
        source, batch, model, n, store_probability, beta, body_length,
        critical_section_length,
    )


def _disjointness_scalar_trial(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """The ``backend="scalar"`` batch trial (reference draw-by-draw loop)."""
    from ..kernels.joined import non_manifestation_scalar_batch

    return non_manifestation_scalar_batch(
        source, batch, model, n, store_probability, beta, body_length,
        critical_section_length,
    )


def _disjointness_fused_trial(
    source: RandomSource,
    batch: int,
    model: MemoryModel,
    n: int,
    store_probability: float,
    beta: float,
    body_length: int,
    critical_section_length: int,
) -> int:
    """The ``backend="fused"`` batch trial (single-pass fused chain)."""
    from ..kernels.joined import non_manifestation_fused_batch

    return non_manifestation_fused_batch(
        source, batch, model, n, store_probability, beta, body_length,
        critical_section_length,
    )


def estimate_non_manifestation(
    model: MemoryModel,
    n: int,
    trials: int,
    seed: int | None = 0,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    body_length: int = DEFAULT_BODY_LENGTH,
    confidence: float = 0.99,
    critical_section_length: int = WINDOW_LENGTH_OFFSET,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    backend: str = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
) -> BernoulliResult:
    """Simulate the full §6 pipeline and estimate ``Pr[A]``.

    Per trial: one shared program, ``n`` independent reorderings, geometric
    shifts, and the closed-interval overlap check on windows of length
    ``γ + 2`` (see :mod:`repro.core.shift` for the convention).
    ``workers``/``shards`` fan the budget out over seed-disciplined shards
    (see :mod:`repro.stats.parallel`); fixed ``(seed, shards)`` gives
    bit-identical results at any worker count.
    ``retries``/``timeout``/``checkpoint`` configure the fault-tolerance
    layer; the checkpoint key is salted with the model name and the
    experiment parameters, so one journal file can hold several models'
    runs without cross-contamination.  Since the v2 key format the key
    also folds in the kernel *fingerprint* (derived automatically from
    the fully-bound trial kernel, or passed explicitly via
    ``fingerprint=``), which is what distinguishes the two backends —
    the label no longer carries a ``backend=`` salt.  ``cache=`` enables
    the content-addressed shard result cache (``"auto"``, a directory,
    or a :class:`repro.cache.ShardStore`; see ``docs/CACHING.md``).
    ``manifest``/``trace``/``progress`` are the observability knobs
    (see ``docs/OBSERVABILITY.md``); manifest run records carry the same
    salted label, so one manifest file can hold all four models' runs.

    ``backend`` selects the trial kernel (see ``docs/KERNELS.md``):
    ``"vectorized"`` (the default, and this estimator's historical
    implementation — fixed-seed results are unchanged) runs each batch as
    whole-array operations; ``"scalar"`` runs the draw-by-draw reference
    loop of :class:`repro.core.settling.SettlingProcess`; ``"fused"``
    runs the single-pass fused chain
    (:func:`repro.kernels.joined.non_manifestation_fused_batch`), the
    fastest single-core route.  Backends are statistically equivalent
    but draw in different stream orders, so their fixed-seed outputs
    differ; their distinct kernel fingerprints keep their checkpoint
    journals and cache entries separate.

    ``rng_plan`` selects the shard-stream derivation (``"spawn"`` is the
    published-numbers default; ``"philox"`` the counter-addressed fast
    path) and ``transport`` the shard result channel — both forwarded to
    :func:`repro.stats.montecarlo.run_event_trials`.

    ``config`` (a :class:`repro.runconfig.RunConfig`) supplies every
    execution knob above in one validated record; the per-knob keywords
    are deprecated aliases that override the matching config field when
    passed explicitly.  This estimator is the joined-model driver, so the
    config resolves with every backend allowed and ``"vectorized"`` as
    the default.
    """
    if n < 2:
        raise ValueError(f"need n >= 2 threads, got {n}")
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, backend=backend,
                             rng_plan=rng_plan, transport=transport,
                             ).resolve(default_backend="vectorized")
    kernel = {
        "vectorized": _disjointness_batch_trial,
        "scalar": _disjointness_scalar_trial,
        "fused": _disjointness_fused_trial,
    }[cfg.backend]
    batch_trial = partial(
        kernel,
        model=model,
        n=n,
        store_probability=store_probability,
        beta=beta,
        body_length=body_length,
        critical_section_length=critical_section_length,
    )
    label = (f"nonmanifestation:{model.name}:n={n}:p={store_probability}"
             f":beta={beta}:body={body_length}:L={critical_section_length}")
    return run_event_trials(batch_trial, trials, seed=seed,
                            confidence=confidence,
                            checkpoint_label=label, config=cfg)


# ----------------------------------------------------------------------
# Route 2 — Rao–Blackwellised estimation for dependent windows
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RaoBlackwellResult:
    """Program-averaged conditional evaluation of ``Pr[A]``.

    ``estimate`` averages the *exact conditional* disjointness probability
    over sampled programs; ``standard_error`` is the sample standard error
    of that average (the only remaining randomness is the program draw).
    """

    estimate: float
    standard_error: float
    programs: int

    def agrees_with(self, value: float, sigmas: float = 3.0) -> bool:
        return abs(value - self.estimate) <= sigmas * self.standard_error + 1e-12

    def __str__(self) -> str:
        return f"{self.estimate:.6f} ± {self.standard_error:.2e} ({self.programs} programs)"


def estimate_non_manifestation_rao_blackwell(
    model: MemoryModel,
    n: int,
    programs: int,
    seed: int | None = 0,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    body_length: int = DEFAULT_BODY_LENGTH,
    max_run: int = 64,
) -> RaoBlackwellResult:
    """``Pr[A]`` for TSO/PSO at any n, honouring the shared-program coupling.

    Threads' windows are conditionally i.i.d. given the program, so
    ``Pr[A] = E_prog[ Pr[A | program] ]`` where the conditional term is
    evaluated *exactly*: the conditional trailing-run law by DP
    (:func:`repro.core.tso_analysis.conditional_run_distribution`), folded
    into the conditional window law, then through Theorem 6.1.  Only the
    program draw is sampled.
    """
    if n < 2:
        raise ValueError(f"need n >= 2 threads, got {n}")
    settle = model.uniform_settle_probability
    if settle is None:
        raise ModelDefinitionError("Rao–Blackwell route needs a uniform settle probability")
    if model.relaxed_pairs not in (TSO.relaxed_pairs, PSO.relaxed_pairs, SC.relaxed_pairs,
                                   WO.relaxed_pairs):
        raise ModelDefinitionError(
            f"no conditional window law for {model.name}; use estimate_non_manifestation"
        )
    source = RandomSource(seed)
    values = np.empty(programs)
    for index in range(programs):
        store_mask = source.type_array(store_probability, body_length)
        conditional = _conditional_window_distribution(
            model, store_mask, settle, max_run
        )
        values[index] = disjointness_iid(conditional, n, beta).value
    estimate = float(values.mean())
    spread = float(values.std(ddof=1)) if programs > 1 else 0.0
    return RaoBlackwellResult(estimate, spread / math.sqrt(programs), programs)


def _conditional_window_distribution(
    model: MemoryModel,
    store_mask: np.ndarray,
    settle: float,
    max_run: int,
) -> DiscreteDistribution:
    """Conditional window-growth law given the explicit program prefix."""
    if model.relaxed_pairs in _INDEPENDENT_WINDOW_MODELS:
        return window_distribution(model)
    runs = conditional_run_distribution(store_mask, settle, max_run)
    load_gap = window_from_run_distribution(runs, settle)
    if model.relaxed_pairs == PSO.relaxed_pairs:
        return pso_window_from_load_gap(load_gap, settle)
    return load_gap
