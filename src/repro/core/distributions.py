"""Discrete probability distributions on the non-negative integers.

The analytic side of the paper manipulates PMFs over ℕ throughout:

* the critical-window growth ``Pr[B_γ]`` (Theorem 4.1),
* the contiguous-store counts ``Pr[L_µ]`` (Lemma 4.2),
* geometric shifts ``Pr[s_i = k] = (1 - β) β^k`` (Definition 1),

and it repeatedly evaluates *power transforms* of them,
``E[a^X] = Σ_k a^k Pr[X = k]`` — the quantity that Theorem 6.1 feeds into
the shift-process disjointness formula.

:class:`DiscreteDistribution` stores a dense prefix of the PMF plus an
explicit bound on the truncated tail mass.  Every derived quantity
(transforms, means, comparisons) propagates that bound, so numeric results
carry rigorous error estimates instead of silent truncation error.  A
distribution constructed from an exact finite support has ``tail_bound``
exactly zero.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from ..errors import DistributionError, TruncationError

__all__ = [
    "DiscreteDistribution",
    "ValueWithError",
    "geometric_distribution",
    "point_mass",
]

#: Tolerance used when validating that a PMF sums to (at most) one.
_MASS_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ValueWithError:
    """A numeric value together with a rigorous absolute-error bound."""

    value: float
    error: float

    def __post_init__(self) -> None:
        if self.error < 0.0:
            raise ValueError(f"error bound must be non-negative, got {self.error}")

    @property
    def low(self) -> float:
        return self.value - self.error

    @property
    def high(self) -> float:
        return self.value + self.error

    def agrees_with(self, other: float) -> bool:
        """Whether ``other`` lies inside ``[value - error, value + error]``."""
        return self.low <= other <= self.high

    def __str__(self) -> str:
        return f"{self.value:.9f} ± {self.error:.2e}"


class DiscreteDistribution:
    """A PMF over ``{0, 1, 2, ...}`` with an explicit tail-mass bound.

    Parameters
    ----------
    probabilities:
        PMF values for ``0 .. len(probabilities) - 1``.
    tail_bound:
        An upper bound on the probability mass at values beyond the stored
        prefix.  ``0.0`` means the support is exactly the stored prefix.

    The stored prefix mass plus the tail bound must not exceed 1 (up to a
    small numerical tolerance), and the stored mass must reach at least
    ``1 - tail_bound - tolerance`` — i.e. the tail bound must genuinely
    account for all missing mass.
    """

    def __init__(self, probabilities: np.ndarray | list[float], tail_bound: float = 0.0):
        values = np.asarray(probabilities, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise DistributionError("PMF prefix must be a non-empty 1-d array")
        if np.any(values < -_MASS_TOLERANCE):
            raise DistributionError("PMF has negative mass")
        if tail_bound < 0.0:
            raise DistributionError(f"tail bound must be non-negative, got {tail_bound}")
        values = np.clip(values, 0.0, None)
        prefix_mass = float(values.sum())
        if prefix_mass > 1.0 + _MASS_TOLERANCE:
            raise DistributionError(f"PMF prefix mass {prefix_mass} exceeds 1")
        if prefix_mass + tail_bound < 1.0 - _MASS_TOLERANCE:
            raise DistributionError(
                f"PMF mass {prefix_mass} + tail bound {tail_bound} falls short of 1; "
                "the tail bound must cover all unstored mass"
            )
        self._values = values
        self._tail_bound = float(tail_bound)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, pmf: Mapping[int, float]) -> "DiscreteDistribution":
        """Build an exact finite-support distribution from ``{value: mass}``."""
        if not pmf:
            raise DistributionError("empty PMF mapping")
        if any(value < 0 for value in pmf):
            raise DistributionError("support must be non-negative integers")
        size = max(pmf) + 1
        values = np.zeros(size)
        for value, mass in pmf.items():
            values[value] = mass
        return cls(values, tail_bound=0.0)

    @classmethod
    def from_counts(cls, counts: Mapping[int, int], trials: int) -> "DiscreteDistribution":
        """Empirical distribution from Monte-Carlo category counts."""
        if trials <= 0:
            raise DistributionError(f"trials must be positive, got {trials}")
        return cls.from_mapping({value: count / trials for value, count in counts.items()})

    @classmethod
    def from_function(
        cls,
        pmf: Callable[[int], float],
        tail_ratio: float,
        tolerance: float = 1e-12,
        max_terms: int = 100_000,
    ) -> "DiscreteDistribution":
        """Truncate an infinite PMF whose tail decays geometrically.

        Parameters
        ----------
        pmf:
            The exact PMF, evaluated term by term.
        tail_ratio:
            A ratio ``r < 1`` such that ``pmf(k + 1) <= r * pmf(k)`` for all
            sufficiently large ``k``.  The truncated tail mass after the
            last stored term ``t`` is then bounded by ``t * r / (1 - r)``.
        tolerance:
            Target bound on the truncated mass.
        """
        if not 0.0 <= tail_ratio < 1.0:
            raise DistributionError(f"tail ratio must be in [0, 1), got {tail_ratio}")
        values: list[float] = []
        for k in range(max_terms):
            term = pmf(k)
            if term < 0.0:
                raise DistributionError(f"pmf({k}) = {term} is negative")
            values.append(term)
            tail = term * tail_ratio / (1.0 - tail_ratio) if tail_ratio > 0.0 else 0.0
            if k >= 1 and tail <= tolerance:
                return cls(np.array(values), tail_bound=tail)
        raise TruncationError(
            f"PMF truncation did not reach tolerance {tolerance} in {max_terms} terms"
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def truncation_point(self) -> int:
        """First index beyond the stored prefix."""
        return int(self._values.size)

    @property
    def tail_bound(self) -> float:
        """Upper bound on the unstored probability mass."""
        return self._tail_bound

    @property
    def prefix(self) -> np.ndarray:
        """A copy of the stored PMF prefix."""
        return self._values.copy()

    def pmf(self, k: int) -> float:
        """``Pr[X = k]`` for stored ``k``; raises beyond the truncation point
        unless the distribution is exact (tail bound zero), where it is 0."""
        if k < 0:
            return 0.0
        if k < self._values.size:
            return float(self._values[k])
        if self._tail_bound == 0.0:
            return 0.0
        raise DistributionError(
            f"pmf({k}) lies beyond the stored prefix (truncated at "
            f"{self.truncation_point} with tail bound {self._tail_bound:.2e})"
        )

    def cdf(self, k: int) -> ValueWithError:
        """``Pr[X <= k]`` with error bound."""
        if k < 0:
            return ValueWithError(0.0, 0.0)
        stored = float(self._values[: k + 1].sum())
        if k < self._values.size - 1 or self._tail_bound == 0.0:
            return ValueWithError(stored, 0.0)
        return ValueWithError(stored, self._tail_bound)

    def tail(self, k: int) -> ValueWithError:
        """``Pr[X >= k]`` with error bound."""
        below = self.cdf(k - 1)
        return ValueWithError(1.0 - below.value, below.error)

    def mean(self) -> float:
        """Expectation of the stored prefix (lower bound if truncated).

        For truncated distributions the mean is not computable with a
        bounded error from the tail *mass* alone, so this returns the
        prefix contribution; callers needing rigour should use
        :meth:`power_transform`, which is tail-safe.
        """
        return float(np.dot(np.arange(self._values.size), self._values))

    # ------------------------------------------------------------------
    # Transforms — the workhorse for Theorems 6.1/6.2
    # ------------------------------------------------------------------

    def power_transform(self, base: float) -> ValueWithError:
        """``E[base**X] = Σ_k base**k · Pr[X = k]`` with error bound.

        Requires ``0 <= base <= 1`` so the truncated tail contributes at
        most ``tail_bound`` (each tail term is weighted by at most 1).
        """
        if not 0.0 <= base <= 1.0:
            raise DistributionError(f"power transform requires base in [0, 1], got {base}")
        weights = base ** np.arange(self._values.size)
        value = float(np.dot(weights, self._values))
        if self._tail_bound == 0.0:
            return ValueWithError(value, 0.0)
        # Tail terms are bounded by base**truncation_point * tail mass.
        tail_weight = base ** self.truncation_point
        return ValueWithError(value, self._tail_bound * tail_weight)

    def shifted_power_transform(self, base: float, offset: int) -> ValueWithError:
        """``E[base**(X + offset)]`` — e.g. window length = growth + 2."""
        if offset < 0:
            raise DistributionError(f"offset must be non-negative, got {offset}")
        inner = self.power_transform(base)
        factor = base**offset
        return ValueWithError(inner.value * factor, inner.error * factor)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def total_variation_distance(self, other: "DiscreteDistribution") -> ValueWithError:
        """TV distance ``(1/2) Σ_k |p(k) - q(k)|`` with tail-aware bound."""
        size = max(self._values.size, other._values.size)
        mine = np.zeros(size)
        mine[: self._values.size] = self._values
        theirs = np.zeros(size)
        theirs[: other._values.size] = other._values
        value = 0.5 * float(np.abs(mine - theirs).sum())
        error = 0.5 * (self._tail_bound + other._tail_bound)
        return ValueWithError(value, error)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteDistribution(prefix_len={self.truncation_point}, "
            f"tail_bound={self._tail_bound:.2e})"
        )


def geometric_distribution(beta: float, tolerance: float = 1e-12) -> DiscreteDistribution:
    """The shift distribution of Definition 1: ``Pr[k] = (1 - β) β^k``.

    For ``β = 1/2`` this is the paper's ``Pr[s_i = k] = 2^{-(k+1)}``.
    ``β = 0`` degenerates to a point mass at zero.
    """
    if not 0.0 <= beta < 1.0:
        raise DistributionError(f"beta must lie in [0, 1), got {beta}")
    if beta == 0.0:
        return point_mass(0)
    return DiscreteDistribution.from_function(
        lambda k: (1.0 - beta) * beta**k, tail_ratio=beta, tolerance=tolerance
    )


def point_mass(value: int) -> DiscreteDistribution:
    """The deterministic distribution concentrated at ``value``.

    Sequential consistency's window growth (Theorem 4.1) is
    ``point_mass(0)``.
    """
    if value < 0:
        raise DistributionError(f"point mass location must be non-negative, got {value}")
    values = np.zeros(value + 1)
    values[value] = 1.0
    return DiscreteDistribution(values, tail_bound=0.0)


def log_factorial(n: int) -> float:
    """``log(n!)`` — convenience wrapper over :func:`math.lgamma`."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return math.lgamma(n + 1)


__all__.append("log_factorial")
