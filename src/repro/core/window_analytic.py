"""Analytic critical-window growth distributions — Theorem 4.1 (+ PSO).

For each memory model this module produces the law of ``B_γ``, the number
of instructions settling strictly between the critical load and critical
store, as a :class:`~repro.core.distributions.DiscreteDistribution`:

* **SC** — a point mass at 0 (no instruction ever reorders).
* **WO** — both critical instructions climb geometrically and the window
  is program-independent.  Generalised closed form (derived exactly as in
  the paper's proof, for arbitrary settle probability ``s``):
  ``Pr[B_0] = 1/(1+s)``, ``Pr[B_γ] = (1-s) s^γ / (1+s)`` for γ > 0.
  The paper's ``2/3`` and ``2^{-γ}/3`` are the ``s = 1/2`` case.
* **TSO** — the critical load climbs ``min(Geom(s), µ)`` stores where µ is
  the trailing-store run with law ``Pr[L_µ]``; evaluated exactly from the
  run-chain solve of :mod:`repro.core.tso_analysis`.  The paper's published
  *bounds* ``(6/7)·4^{-γ} ≤ Pr[B_γ] ≤ (6/7)·4^{-γ} + (2/21)·2^{-γ}`` are
  exposed separately for comparison.
* **PSO** (the paper's footnote 4, result omitted there) — identical
  prefix/critical-load behaviour to TSO (the extra ST/ST swaps never change
  the type sequence), after which the critical store *chases* the load
  through the γ_LD stores separating them:
  ``Pr[B_0] = Σ_g Pr[γ_LD = g] s^g`` and
  ``Pr[B_γ] = (1-s) Σ_{g ≥ γ} Pr[γ_LD = g] s^{g-γ}`` for γ > 0.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelDefinitionError
from .distributions import DiscreteDistribution, point_mass
from .memory_models import LD, PSO, SC, ST, TSO, WO, MemoryModel
from .tso_analysis import run_length_distribution

__all__ = [
    "sc_window_distribution",
    "wo_window_distribution",
    "tso_window_distribution",
    "pso_window_distribution",
    "window_distribution",
    "tso_window_lower_bound",
    "tso_window_upper_bound",
    "window_from_run_distribution",
    "pso_window_from_load_gap",
]


def sc_window_distribution() -> DiscreteDistribution:
    """Theorem 4.1, SC: the window never grows."""
    return point_mass(0)


def wo_window_distribution(settle: float = 0.5, tolerance: float = 1e-14) -> DiscreteDistribution:
    """Theorem 4.1, WO, generalised to settle probability ``s``.

    The critical load climbs ``i ~ Geom(s)``; the critical store then
    climbs ``min(Geom(s), i)`` and γ is the difference.  Conditioning on i:
    ``Pr[B_γ] = Σ_{i≥γ} s^i(1-s) · s^{i-γ}(1-s) = (1-s) s^γ / (1+s)`` for
    γ > 0, and ``Σ_i s^i(1-s) s^i = 1/(1+s)`` for γ = 0.
    """
    _check_settle(settle)
    s = settle
    if s == 0.0:
        return point_mass(0)

    def pmf(gamma: int) -> float:
        if gamma == 0:
            return 1.0 / (1.0 + s)
        return (1.0 - s) * s**gamma / (1.0 + s)

    return DiscreteDistribution.from_function(pmf, tail_ratio=s, tolerance=tolerance)


def window_from_run_distribution(
    run_distribution: DiscreteDistribution, settle: float = 0.5
) -> DiscreteDistribution:
    """Fold a trailing-run law ``Pr[L_µ]`` into the window law ``Pr[B_γ]``.

    The critical load passes each of the µ stores with probability ``s``
    and parks against the load above the run when it clears all of them:

    ``Pr[B_γ | L_µ] = s^γ (1-s)`` for γ < µ, ``s^γ`` for γ = µ
    (matching the paper's ``2^{-(γ+1)}`` / ``2^{-γ}`` at ``s = 1/2``).
    """
    _check_settle(settle)
    s = settle
    runs = run_distribution.prefix
    size = runs.size
    window = np.zeros(size)
    suffix = np.concatenate((np.cumsum(runs[::-1])[::-1][1:], [0.0]))  # Σ_{µ>γ} Pr[L_µ]
    for gamma in range(size):
        window[gamma] = s**gamma * ((1.0 - s) * suffix[gamma] + runs[gamma])
    # Mass unaccounted for: the run tail can only produce window values with
    # weight ≤ s**size already, plus the run distribution's own tail bound.
    tail = run_distribution.tail_bound + float(s**size)
    return DiscreteDistribution(window, tail_bound=min(tail, 1.0))


def tso_window_distribution(
    store_probability: float = 0.5,
    settle: float = 0.5,
    rounds: int = 512,
    max_run: int = 128,
) -> DiscreteDistribution:
    """Theorem 4.1, TSO — exact-numeric law via the trailing-run chain.

    For the paper's constants this lands strictly inside the published
    bounds (validated in the test suite): ``Pr[B_0] = 2/3`` and for γ > 0
    ``(6/7)4^{-γ} ≤ Pr[B_γ] ≤ (6/7)4^{-γ} + (2/21)2^{-γ}``.
    """
    runs = run_length_distribution(store_probability, settle, rounds, max_run)
    return window_from_run_distribution(runs, settle)


def pso_window_distribution(
    store_probability: float = 0.5,
    settle: float = 0.5,
    rounds: int = 512,
    max_run: int = 128,
) -> DiscreteDistribution:
    """PSO window law (footnote 4 of the paper, derived here).

    The gap opened by the critical load (distributed as TSO's ``B``) is
    partially closed by the critical store chasing through the stores
    between them: chase ``j = min(Geom(s), g)``, leaving γ = g − j.  Note
    the counter-intuitive consequence — explored in the PSO extension
    bench — that PSO's *extra* relaxation yields *smaller* windows than
    TSO in this model, because only stores separate the critical pair and
    PSO lets the critical store move past them.
    """
    load_gap = tso_window_distribution(store_probability, settle, rounds, max_run)
    return pso_window_from_load_gap(load_gap, settle)


def pso_window_from_load_gap(
    load_gap: DiscreteDistribution, settle: float = 0.5
) -> DiscreteDistribution:
    """Fold the critical-store chase into a critical-load gap law (PSO).

    ``Pr[B_0] = Σ_g Pr[g] s^g`` and ``Pr[B_γ] = (1-s) Σ_{g≥γ} Pr[g] s^{g-γ}``
    for γ > 0.  Exposed separately so conditional (per-program) gap laws
    can be folded the same way by the Rao–Blackwell estimators.
    """
    _check_settle(settle)
    s = settle
    gaps = load_gap.prefix
    size = gaps.size
    # T_γ = Σ_{g≥γ} Pr[γ_LD=g] s^{g-γ} satisfies T_γ = Pr[γ] + s·T_{γ+1};
    # evaluating it by this reverse recurrence avoids the catastrophic
    # s^{g}/s^{γ} quotients of the direct formula for large supports.
    discounted_suffix = np.zeros(size)
    discounted_suffix[size - 1] = gaps[size - 1]
    for gamma in range(size - 2, -1, -1):
        discounted_suffix[gamma] = gaps[gamma] + s * discounted_suffix[gamma + 1]
    window = (1.0 - s) * discounted_suffix
    window[0] = discounted_suffix[0]  # γ = 0 collects the full chase: Σ Pr[g]·s^g
    tail = load_gap.tail_bound + float(s**size)
    return DiscreteDistribution(np.clip(window, 0.0, 1.0), tail_bound=min(tail, 1.0))


def window_distribution(
    model: MemoryModel,
    store_probability: float = 0.5,
    rounds: int = 512,
    max_run: int = 128,
) -> DiscreteDistribution:
    """Dispatch to the analytic window law for any of the paper's models.

    The model's (uniform) settle probability is honoured, so e.g.
    ``WO.with_settle_probability(0.3)`` analyses correctly.  Models outside
    the four relaxation patterns of Table 1 have no closed form here — use
    Monte Carlo over :func:`repro.core.settling.sample_window_growth`.
    """
    if model.relaxed_pairs == SC.relaxed_pairs:
        return sc_window_distribution()
    settle = model.uniform_settle_probability
    if settle is None:
        raise ModelDefinitionError(
            f"no analytic window law for {model.name} with non-uniform settle "
            "probabilities; use Monte Carlo"
        )
    if model.relaxed_pairs == WO.relaxed_pairs:
        return wo_window_distribution(settle)
    if model.relaxed_pairs == TSO.relaxed_pairs:
        return tso_window_distribution(store_probability, settle, rounds, max_run)
    if model.relaxed_pairs == PSO.relaxed_pairs:
        return pso_window_distribution(store_probability, settle, rounds, max_run)
    raise ModelDefinitionError(
        f"no analytic window law for relaxation set of {model.name}; use Monte Carlo"
    )


# ----------------------------------------------------------------------
# The paper's published TSO bounds (p = s = 1/2 only)
# ----------------------------------------------------------------------


def tso_window_lower_bound(gamma: int) -> float:
    """Theorem 4.1's TSO lower bound: ``(6/7)·4^{-γ}`` (γ > 0); 2/3 at γ = 0."""
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    if gamma == 0:
        return 2.0 / 3.0
    return (6.0 / 7.0) * 4.0**-gamma


def tso_window_upper_bound(gamma: int) -> float:
    """Theorem 4.1's TSO upper bound: lower bound + ``(2/21)·2^{-γ}``."""
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    if gamma == 0:
        return 2.0 / 3.0
    return (6.0 / 7.0) * 4.0**-gamma + (2.0 / 21.0) * 2.0**-gamma


def _check_settle(settle: float) -> None:
    if not 0.0 <= settle < 1.0:
        raise ValueError(f"settle probability must lie in [0, 1), got {settle}")
