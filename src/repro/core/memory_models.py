"""Memory consistency models as relaxation sets — the algebra behind Table 1.

The paper characterises each memory model by *which ordered pairs of
instruction types may reorder* (§2.1, Table 1).  A pair ``(earlier, later)``
being *relaxed* means an instruction of type ``later`` may settle past (swap
above) a preceding instruction of type ``earlier``:

====================  =====  =====  =====  =====
Model                 ST/ST  ST/LD  LD/ST  LD/LD
====================  =====  =====  =====  =====
Sequential Consistency  –      –      –      –
Total Store Order       –      ✓      –      –
Partial Store Order     ✓      ✓      –      –
Weak Ordering           ✓      ✓      ✓      ✓
====================  =====  =====  =====  =====

where the column ``ST/LD`` is the pair ``(earlier=ST, later=LD)``.

A :class:`MemoryModel` couples the relaxation set with the *settle
probabilities* of the reordering process (§3.1.2): an allowed swap succeeds
with probability ``s`` (the paper's normal form sets every allowed pair to
``s = 1/2``; footnote 3 permits distinct ``s_{τ1,τ2}`` per pair, which this
class supports directly).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping

from ..errors import ModelDefinitionError
from .instructions import LD, ST, InstructionType

__all__ = [
    "OrderedPair",
    "MemoryModel",
    "SC",
    "TSO",
    "PSO",
    "WO",
    "PAPER_MODELS",
    "ALL_PAIRS",
    "ATOMICITY_FLAVORS",
    "DEFAULT_SETTLE_PROBABILITY",
    "get_model",
    "model_digest",
    "table1_rows",
]

#: An ordered pair ``(earlier, later)`` of instruction types.
OrderedPair = tuple[InstructionType, InstructionType]

#: All four ordered pairs, in the paper's Table 1 column order.
ALL_PAIRS: tuple[OrderedPair, ...] = ((ST, ST), (ST, LD), (LD, ST), (LD, LD))

#: The paper's ``s``: success probability of one allowed swap.
DEFAULT_SETTLE_PROBABILITY = 0.5

#: Store-atomicity flavors a model may declare (§2.1's orthogonal axis).
ATOMICITY_FLAVORS = ("atomic", "non_atomic")


def _pair_name(pair: OrderedPair) -> str:
    return f"{pair[0].mnemonic}/{pair[1].mnemonic}"


class MemoryModel:
    """A memory consistency model in the sense of the paper's Table 1.

    Parameters
    ----------
    name:
        Human-readable name, also the registry key (e.g. ``"TSO"``).
    relaxed_pairs:
        The ordered pairs ``(earlier, later)`` whose program-order
        constraint the model relaxes.
    settle_probability:
        Either a single ``s`` applied to every relaxed pair (the paper's
        strong normal form) or a mapping from relaxed pair to its own
        ``s_{τ1,τ2}`` (footnote 3).  Pairs not relaxed always have
        probability 0.
    description:
        Optional prose shown in reports.
    atomicity:
        The store-atomicity flavor: ``"atomic"`` (multi-copy-atomic shared
        memory, the paper's scoping assumption) or ``"non_atomic"``
        (per-writer FIFO propagation, executed by
        :mod:`repro.litmus.atomicity`).  Orthogonal to the relaxation set.

    Instances are immutable and hashable; the four paper models are module
    constants (:data:`SC`, :data:`TSO`, :data:`PSO`, :data:`WO`).
    """

    def __init__(
        self,
        name: str,
        relaxed_pairs: Iterable[OrderedPair],
        settle_probability: float | Mapping[OrderedPair, float] = DEFAULT_SETTLE_PROBABILITY,
        description: str = "",
        atomicity: str = "atomic",
    ):
        if not name:
            raise ModelDefinitionError("model name must be non-empty")
        if atomicity not in ATOMICITY_FLAVORS:
            raise ModelDefinitionError(
                f"unknown atomicity flavor {atomicity!r}; "
                f"known: {', '.join(ATOMICITY_FLAVORS)}"
            )
        relaxed = frozenset(relaxed_pairs)
        unknown = relaxed - set(ALL_PAIRS)
        if unknown:
            raise ModelDefinitionError(f"unknown instruction-type pairs: {sorted(map(str, unknown))}")

        probabilities: dict[OrderedPair, float] = {}
        if isinstance(settle_probability, Mapping):
            extra = set(settle_probability) - relaxed
            if extra:
                raise ModelDefinitionError(
                    f"settle probabilities given for non-relaxed pairs: "
                    f"{sorted(_pair_name(p) for p in extra)}"
                )
            for pair in relaxed:
                probabilities[pair] = float(settle_probability.get(pair, DEFAULT_SETTLE_PROBABILITY))
        else:
            for pair in relaxed:
                probabilities[pair] = float(settle_probability)
        for pair, probability in probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ModelDefinitionError(
                    f"settle probability for {_pair_name(pair)} must be in [0, 1], "
                    f"got {probability}"
                )

        self._name = name
        self._relaxed = relaxed
        self._probabilities = probabilities
        self._description = description
        # Stored only when non-default: the __dict__-derived state (pickle,
        # the kernel-fingerprint canonical form) of every pre-existing
        # atomic model must stay byte-identical, or adding the flavor would
        # orphan all estimators' v2 plan keys and cache entries.
        if atomicity != "atomic":
            self._atomicity = atomicity

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def description(self) -> str:
        return self._description

    @property
    def relaxed_pairs(self) -> frozenset[OrderedPair]:
        """The set of ordered pairs this model allows to reorder."""
        return self._relaxed

    @property
    def atomicity(self) -> str:
        """The store-atomicity flavor (``"atomic"`` or ``"non_atomic"``)."""
        return getattr(self, "_atomicity", "atomic")

    def relaxes(self, earlier: InstructionType, later: InstructionType) -> bool:
        """Whether a ``later`` may settle past a preceding ``earlier``."""
        return (earlier, later) in self._relaxed

    def settle_probability(self, earlier: InstructionType, later: InstructionType) -> float:
        """The swap-success probability ``ρ_{τ1,τ2}`` of Appendix A.2.

        Zero for non-relaxed pairs; the configured ``s`` otherwise.
        """
        return self._probabilities.get((earlier, later), 0.0)

    @property
    def uniform_settle_probability(self) -> float | None:
        """The single ``s`` if all relaxed pairs share one; else ``None``.

        The paper's closed forms assume the strong normal form (uniform
        ``s``); the analytic modules consult this to decide whether their
        formulas apply.
        """
        values = set(self._probabilities.values())
        if not values:
            return None
        if len(values) == 1:
            return values.pop()
        return None

    # ------------------------------------------------------------------
    # Strictness ordering
    # ------------------------------------------------------------------

    def is_at_least_as_strong_as(self, other: "MemoryModel") -> bool:
        """Partial order on models: fewer relaxations = stronger.

        ``SC ≥ TSO ≥ PSO ≥ WO`` in this order; incomparable models exist
        (any two incomparable relaxation sets).
        """
        return self._relaxed <= other._relaxed

    # ------------------------------------------------------------------

    def table1_row(self) -> dict[str, bool]:
        """This model's Table 1 row: column name → relaxed?"""
        return {_pair_name(pair): pair in self._relaxed for pair in ALL_PAIRS}

    def with_settle_probability(
        self, settle_probability: float | Mapping[OrderedPair, float]
    ) -> "MemoryModel":
        """A copy of this model with different swap probabilities."""
        return MemoryModel(
            self._name, self._relaxed, settle_probability,
            self._description, self.atomicity,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryModel):
            return NotImplemented
        return (
            self._name == other._name
            and self._relaxed == other._relaxed
            and self._probabilities == other._probabilities
            and self.atomicity == other.atomicity
        )

    def __hash__(self) -> int:
        items = sorted(self._probabilities.items(), key=repr)
        return hash((self._name, self._relaxed, tuple(items), self.atomicity))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(sorted(_pair_name(pair) for pair in self._relaxed))
        return f"MemoryModel({self._name!r}, relaxes=[{pairs}])"

    def __str__(self) -> str:
        return self._name


# ----------------------------------------------------------------------
# The paper's models (Table 1)
# ----------------------------------------------------------------------

SC = MemoryModel(
    "SC",
    relaxed_pairs=(),
    description="Sequential Consistency (Lamport): no reordering at all.",
)

TSO = MemoryModel(
    "TSO",
    relaxed_pairs=[(ST, LD)],
    description=(
        "Total Store Order (SPARC/x86-like): loads may complete before "
        "preceding stores; all other orders preserved."
    ),
)

PSO = MemoryModel(
    "PSO",
    relaxed_pairs=[(ST, LD), (ST, ST)],
    description=(
        "Partial Store Order (SPARC): additionally lets stores to distinct "
        "locations reorder with each other."
    ),
)

WO = MemoryModel(
    "WO",
    relaxed_pairs=list(ALL_PAIRS),
    description=(
        "Weak Ordering (Dubois et al. / POWER-like): any two operations on "
        "distinct locations may reorder."
    ),
)

#: The models the paper analyses or mentions, strongest first.
PAPER_MODELS: tuple[MemoryModel, ...] = (SC, TSO, PSO, WO)

_REGISTRY = {model.name: model for model in PAPER_MODELS}


def get_model(name: str) -> MemoryModel:
    """Look up one of the paper's models by name (case-insensitive).

    Accepts the short names (``"SC"``) and a few common long spellings.
    """
    key = name.strip().upper().replace(" ", "_")
    aliases = {
        "SEQUENTIAL_CONSISTENCY": "SC",
        "TOTAL_STORE_ORDER": "TSO",
        "PARTIAL_STORE_ORDER": "PSO",
        "WEAK_ORDERING": "WO",
    }
    key = aliases.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelDefinitionError(f"unknown memory model {name!r}; known: {known}") from None


def model_digest(model: MemoryModel) -> str:
    """A stable hex digest of a model's *semantics*, name excluded.

    Covers, in Table 1 column order, each pair's relaxed flag and settle
    probability, plus the store-atomicity flavor — everything that can
    change what outcomes a litmus test reaches under the model.  The
    registry name and prose description deliberately stay out (the same
    rename-invariance as :func:`repro.litmus.explore.program_digest`):
    two models that relax the same pairs with the same probabilities and
    atomicity are the same model, whatever they are called — and two
    models that happen to share a name are *not*.
    """
    parts = []
    for pair in ALL_PAIRS:
        relaxed = pair in model.relaxed_pairs
        probability = model.settle_probability(*pair)
        parts.append(f"{_pair_name(pair)}={int(relaxed)}:{probability!r}")
    blob = "|".join(parts) + f"|atomicity:{model.atomicity}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def table1_rows(models: Iterable[MemoryModel] = PAPER_MODELS) -> list[dict[str, object]]:
    """Reproduce Table 1 as a list of row dicts (for the bench harness)."""
    rows = []
    for model in models:
        row: dict[str, object] = {"Name": model.name}
        row.update(model.table1_row())
        rows.append(row)
    return rows
