"""Bounded integer partitions — the combinatorics behind Claim 4.4.

The TSO analysis conditions on ``∆``, the total number of positions the
interspersed loads must climb, whose distribution is governed by

    ``φ(x, y, z)`` — the number of multisets of ``y`` positive integers
    summing to ``x`` with every integer at most ``z``

(a bounded variant of the partition number).  The paper only needs the
crude bound ``φ(x, y, z) ≥ 1`` for ``y ≤ x ≤ yz`` (witnessed by the
balanced construction); this module provides that bound *and* the exact
values via dynamic programming, which lets the library evaluate the
paper's decomposition exactly rather than only bounding it.

Identities used:

* subtracting 1 from every part bijects partitions of ``x`` into exactly
  ``y`` parts in ``[1, z]`` with partitions of ``x - y`` into at most ``y``
  parts in ``[0, z - 1]``;
* partitions of ``n`` into at most ``k`` parts each at most ``z`` satisfy
  ``p(n, k, z) = p(n, k - 1, z) + p(n - z, k, z - …)`` — we use the
  classic "largest part" recurrence ``p(n, k, z) = p(n, k, z - 1) +
  p(n - z, k - 1, z)``.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "bounded_partitions",
    "partitions_in_box",
    "balanced_partition",
    "phi_positive_range",
    "delta_support",
]


@lru_cache(maxsize=None)
def partitions_in_box(total: int, max_parts: int, max_part: int) -> int:
    """Partitions of ``total`` into at most ``max_parts`` parts, each ≤ ``max_part``.

    Equivalently, partitions whose Young diagram fits in a
    ``max_parts × max_part`` box.  ``partitions_in_box(0, k, z) = 1`` (the
    empty partition) for any ``k, z ≥ 0``.
    """
    if total < 0 or max_parts < 0 or max_part < 0:
        return 0
    if total == 0:
        return 1
    if max_parts == 0 or max_part == 0:
        return 0
    # Largest part is either < max_part, or equals max_part (remove it).
    return partitions_in_box(total, max_parts, max_part - 1) + partitions_in_box(
        total - max_part, max_parts - 1, max_part
    )


def bounded_partitions(total: int, parts: int, max_part: int) -> int:
    """The paper's ``φ(x, y, z)``: multisets of ``y`` integers in ``[1, z]``
    summing to ``x``.

    >>> bounded_partitions(5, 2, 4)  # 1+4, 2+3
    2
    >>> bounded_partitions(6, 2, 3)  # 3+3 only
    1
    """
    if parts < 0 or max_part < 0:
        raise ValueError(f"parts and max_part must be non-negative, got {parts}, {max_part}")
    if parts == 0:
        return 1 if total == 0 else 0
    # Subtract 1 from every part: at most `parts` parts, each ≤ max_part - 1.
    return partitions_in_box(total - parts, parts, max_part - 1)


def delta_support(parts: int, max_part: int) -> range:
    """The support of ``∆`` given ``q`` loads and ``µ`` stores: ``[q, µq]``.

    Matches the paper's observation ``∆ ≥ q`` (the store at Φ_µ must be
    passed by every load) and ``∆ ≤ µq`` (no load passes more than µ
    stores).  Empty when ``parts == 0`` is handled by the caller.
    """
    return range(parts, parts * max_part + 1)


def phi_positive_range(total: int, parts: int, max_part: int) -> bool:
    """The paper's Claim-4.4 bound: ``φ ≥ 1`` whenever ``y ≤ x ≤ yz``."""
    return parts <= total <= parts * max_part if parts > 0 else total == 0


def balanced_partition(total: int, parts: int, max_part: int) -> list[int]:
    """The witness construction from Claim 4.4.

    Sets ``total mod parts`` of the integers to ``ceil(total / parts)`` and
    the rest to ``floor(total / parts)``; valid whenever ``phi_positive_range``
    holds.  Returned sorted descending.
    """
    if parts == 0:
        if total == 0:
            return []
        raise ValueError("no zero-part partition of a positive total")
    if not phi_positive_range(total, parts, max_part):
        raise ValueError(
            f"no partition of {total} into {parts} parts bounded by {max_part}"
        )
    high_count = total % parts
    low = total // parts
    partition = [low + 1] * high_count + [low] * (parts - high_count)
    assert sum(partition) == total
    return partition
