"""The program model of §3.1.1 / Appendix A.1: random LD/ST programs.

A *program* in the paper's sense is a sequence of ``m`` body memory
operations followed by a *critical load* and a *critical store*:

    ``x_1, x_2, ..., x_m, LD X, ST X``

Body instruction ``x_i`` is a store with probability ``p`` (the paper sets
``p = 1/2``) and a load otherwise.  Each body instruction accesses its own
distinct location; only the two critical instructions share a location
(``X``).  The critical pair is lines 1 and 3 of the canonical atomicity
violation of §2.2 (the load and store of the racy read–modify–write); the
purely local line 2 carries no memory operation and is omitted.

This module defines the instruction/program data types and the random
program generator.  The settling process that reorders these programs lives
in :mod:`repro.core.settling`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ProgramError
from ..stats.rng import RandomSource

__all__ = [
    "InstructionType",
    "Instruction",
    "Program",
    "generate_program",
    "program_from_types",
    "DEFAULT_STORE_PROBABILITY",
]

#: The paper's ``p``: probability that a body instruction is a store.
DEFAULT_STORE_PROBABILITY = 0.5


class InstructionType(enum.Enum):
    """The two memory-operation types of the model: loads and stores."""

    LOAD = "LD"
    STORE = "ST"

    @property
    def mnemonic(self) -> str:
        """The two-letter mnemonic the paper uses (``LD`` / ``ST``)."""
        return self.value

    def __str__(self) -> str:
        return self.value


#: Shorthand aliases matching the paper's notation.
LD = InstructionType.LOAD
ST = InstructionType.STORE
__all__ += ["LD", "ST"]


@dataclass(frozen=True)
class Instruction:
    """One memory operation of a model program.

    Attributes
    ----------
    index:
        Position in the *initial* program order (1-based, matching the
        paper's ``x_1 .. x_{m+2}``).
    type:
        Whether the operation is a load or a store.
    location:
        Symbolic memory location.  Body instructions get unique locations
        ``"a<i>"``; the critical pair shares the location ``"X"``.
    is_critical:
        Whether this is the critical load or the critical store.
    """

    index: int
    type: InstructionType
    location: str
    is_critical: bool = False

    @property
    def is_load(self) -> bool:
        return self.type is InstructionType.LOAD

    @property
    def is_store(self) -> bool:
        return self.type is InstructionType.STORE

    def __str__(self) -> str:
        marker = "*" if self.is_critical else ""
        return f"{self.type.mnemonic}{marker}({self.location})"


#: Location shared by the critical load/store pair.
CRITICAL_LOCATION = "X"
__all__.append("CRITICAL_LOCATION")


class Program:
    """An initial program order ``S_0``: body + critical load + critical store.

    Instances are immutable; the settling process produces permutations of
    the index range rather than mutating the program.
    """

    def __init__(self, instructions: list[Instruction]):
        if len(instructions) < 2:
            raise ProgramError("a program needs at least the critical pair")
        critical = [instr for instr in instructions if instr.is_critical]
        if len(critical) != 2:
            raise ProgramError(f"expected exactly 2 critical instructions, found {len(critical)}")
        load, store = instructions[-2], instructions[-1]
        if not (load.is_critical and store.is_critical):
            raise ProgramError("the critical pair must be the final two instructions")
        if not load.is_load or not store.is_store:
            raise ProgramError("critical pair must be a load followed by a store")
        if load.location != store.location:
            raise ProgramError("critical load and store must share a location")
        body_locations = [instr.location for instr in instructions[:-2]]
        if len(set(body_locations)) != len(body_locations):
            raise ProgramError("body instructions must access distinct locations")
        if load.location in body_locations:
            raise ProgramError("body instructions must not touch the critical location")
        expected = list(range(1, len(instructions) + 1))
        if [instr.index for instr in instructions] != expected:
            raise ProgramError("instruction indices must be 1..m+2 in order")
        self._instructions = tuple(instructions)

    # ------------------------------------------------------------------

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return self._instructions

    @property
    def body_length(self) -> int:
        """The paper's ``m``: number of non-critical instructions."""
        return len(self._instructions) - 2

    @property
    def length(self) -> int:
        """Total instruction count ``m + 2``."""
        return len(self._instructions)

    @property
    def critical_load(self) -> Instruction:
        """``x_{m+1}``, the critical load."""
        return self._instructions[-2]

    @property
    def critical_store(self) -> Instruction:
        """``x_{m+2}``, the critical store."""
        return self._instructions[-1]

    def instruction(self, index: int) -> Instruction:
        """Look up an instruction by its 1-based initial-order index."""
        if not 1 <= index <= self.length:
            raise ProgramError(f"index {index} outside 1..{self.length}")
        return self._instructions[index - 1]

    def type_of(self, index: int) -> InstructionType:
        return self.instruction(index).type

    def types(self) -> list[InstructionType]:
        """Instruction types in initial program order."""
        return [instr.type for instr in self._instructions]

    def body_store_mask(self) -> np.ndarray:
        """Boolean array over the body: ``True`` marks stores.

        Vectorised consumers (the fast settling paths) work on this mask
        rather than on :class:`Instruction` objects.
        """
        return np.array([instr.is_store for instr in self._instructions[:-2]], dtype=bool)

    def store_count(self) -> int:
        """Number of stores in the body."""
        return int(self.body_store_mask().sum())

    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        return iter(self._instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._instructions == other._instructions

    def __hash__(self) -> int:
        return hash(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program(m={self.body_length})"

    def __str__(self) -> str:
        return " ".join(str(instr) for instr in self._instructions)


def program_from_types(body_types: list[InstructionType] | str) -> Program:
    """Build a program from explicit body types plus the critical pair.

    ``body_types`` may be a list of :class:`InstructionType` or a compact
    string of ``'L'``/``'S'`` characters, which is convenient in tests:

    >>> program_from_types("SSL").body_length
    3
    """
    if isinstance(body_types, str):
        mapping = {"L": InstructionType.LOAD, "S": InstructionType.STORE}
        try:
            body_types = [mapping[ch] for ch in body_types.upper()]
        except KeyError as exc:
            raise ProgramError(f"unknown type character {exc.args[0]!r}") from exc
    instructions = [
        Instruction(index=i + 1, type=instruction_type, location=f"a{i + 1}")
        for i, instruction_type in enumerate(body_types)
    ]
    m = len(instructions)
    instructions.append(
        Instruction(index=m + 1, type=InstructionType.LOAD, location=CRITICAL_LOCATION,
                    is_critical=True)
    )
    instructions.append(
        Instruction(index=m + 2, type=InstructionType.STORE, location=CRITICAL_LOCATION,
                    is_critical=True)
    )
    return Program(instructions)


def generate_program(
    body_length: int,
    source: RandomSource,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
) -> Program:
    """Sample an initial program order per §3.1.1.

    Parameters
    ----------
    body_length:
        The paper's ``m``.  The analysis takes ``m → ∞``; in simulation a
        few hundred suffices because instruction movement under settling is
        geometrically bounded (see :mod:`repro.core.settling`).
    source:
        Randomness stream.
    store_probability:
        The paper's ``p`` (default 1/2).
    """
    if body_length < 0:
        raise ProgramError(f"body_length must be non-negative, got {body_length}")
    if not 0.0 <= store_probability <= 1.0:
        raise ProgramError(f"store_probability must be in [0, 1], got {store_probability}")
    store_mask = source.type_array(store_probability, body_length)
    body = [InstructionType.STORE if is_store else InstructionType.LOAD for is_store in store_mask]
    return program_from_types(body)
