"""The TSO analysis chain of §4: L_µ, Ψ_µ, F_µ, ∆ and Claim 4.3 / Lemma 4.2.

The paper's hardest technical content is bounding, under TSO, the
distribution of the number of contiguous stores directly above the critical
load after the prefix settles (the events ``L_µ``), because that run is
exactly what the critical load can climb through.  This module implements
that analysis **three independent ways**, which the benchmarks and tests
cross-validate:

1. **The paper's decomposition** (Steps 1–4 of Theorem 4.1's proof):
   condition on Ψ_µ (interspersed loads), then on ∆ (total climb
   requirement, distributed via the bounded partition numbers φ), and fold
   in the steady-state store fraction of Claim 4.3.  With exact φ from
   :mod:`repro.core.partitions` this yields the paper's estimate of
   ``Pr[L_µ]`` and its closed-form lower bound ``(4/7)·2^{-µ}``.

2. **The trailing-run Markov chain** (this library's contribution): under
   TSO/PSO the trailing-store-run length is Markov over settling rounds
   (see :mod:`repro.core.settling`), so ``Pr[L_µ]`` is the chain's
   stationary law, computable to machine precision by iterating the
   truncated transition operator.  This path is *exact* (up to explicit
   truncation bounds) and generalises to any ``(p, s)``.

3. **Monte Carlo** over the settling simulator (in the test-suite and
   benches), which validates both.

The chain and the decomposition agree to many digits for ``p = s = 1/2``;
the decomposition is exact there too (the steady-state factor it uses is an
``i → ∞`` limit, matching the paper's ``m → ∞`` regime).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..errors import TruncationError
from .distributions import DiscreteDistribution, ValueWithError
from .partitions import bounded_partitions, delta_support

__all__ = [
    "steady_state_store_fraction",
    "store_fraction_sequence",
    "run_transition_matrix",
    "run_length_distribution",
    "psi_pmf",
    "delta_pmf",
    "f_probability_exact",
    "f_probability_lower_bound",
    "l_probability_paper",
    "l_lower_bound_paper",
    "paper_run_distribution",
]

#: Default truncation of the run-length state space.  Stationary mass at
#: run length k decays like (p·s)-geometrically; 128 states leave tail mass
#: far below double precision for any p, s ≤ 0.9.
DEFAULT_MAX_RUN = 128

#: Default number of chain iterations standing in for the paper's m → ∞.
DEFAULT_ROUNDS = 512


# ----------------------------------------------------------------------
# Claim 4.3 — the steady-state store fraction
# ----------------------------------------------------------------------


def steady_state_store_fraction(store_probability: float = 0.5, settle: float = 0.5) -> float:
    """Claim 4.3 generalised: ``lim_i Pr[S_{ST,i}(i)]``.

    The recurrence ``X_i = p + (1 - p) · s · X_{i-1}`` (instruction ``i``
    ends round ``i`` at the bottom as a ST either by being one, or by being
    a LD that swapped above a settled ST) has fixed point
    ``p / (1 - (1 - p) s)``; the paper's ``p = s = 1/2`` gives ``2/3``.
    """
    _check_probability("store_probability", store_probability)
    _check_probability("settle", settle)
    return store_probability / (1.0 - (1.0 - store_probability) * settle)


def store_fraction_sequence(
    rounds: int, store_probability: float = 0.5, settle: float = 0.5
) -> list[float]:
    """The finite-``i`` values ``Pr[S_{ST,i}(i)]`` of Claim 4.3's recurrence.

    ``X_1 = p`` and ``X_i = p + (1 - p) s X_{i-1}``; used by the Claim 4.3
    bench to show geometric convergence to the fixed point.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    values = [store_probability]
    for _ in range(rounds - 1):
        values.append(store_probability + (1.0 - store_probability) * settle * values[-1])
    return values


# ----------------------------------------------------------------------
# Path 2 — the trailing-run Markov chain (exact numeric Pr[L_µ])
# ----------------------------------------------------------------------


def run_transition_matrix(
    store_probability: float = 0.5,
    settle: float = 0.5,
    max_run: int = DEFAULT_MAX_RUN,
) -> np.ndarray:
    """One settling round's transition operator on the trailing-run length.

    ``T[k, j] = Pr[run j after the round | run k before]`` over states
    ``0 .. max_run`` (the top state absorbs growth, with the induced
    truncation error tracked by :func:`run_length_distribution`).

    From run ``k``: a new ST (prob ``p``) extends the run to ``k + 1``; a
    new LD climbs ``min(Geom(s), k)`` stores, landing the run at ``j < k``
    with probability ``(1 - p)(1 - s) s^j`` and leaving it at ``k`` with
    probability ``(1 - p) s^k``.
    """
    _check_probability("store_probability", store_probability)
    _check_probability("settle", settle)
    if max_run < 1:
        raise ValueError(f"max_run must be >= 1, got {max_run}")
    p, s = store_probability, settle
    size = max_run + 1
    matrix = np.zeros((size, size))
    for k in range(size):
        grow = min(k + 1, max_run)  # clamp growth at the truncation cap
        matrix[k, grow] += p
        # LD climbing: split to j < k, or clear the whole run.
        for j in range(k):
            matrix[k, j] += (1.0 - p) * (1.0 - s) * s**j
        matrix[k, k] += (1.0 - p) * s**k
    return matrix


@lru_cache(maxsize=256)
def run_length_distribution(
    store_probability: float = 0.5,
    settle: float = 0.5,
    rounds: int = DEFAULT_ROUNDS,
    max_run: int = DEFAULT_MAX_RUN,
    tolerance: float = 1e-7,
) -> DiscreteDistribution:
    """``Pr[L_µ]`` — exact-numeric law of the settled trailing-store run.

    Results are memoised (the solve is pure in its arguments and the
    returned distribution is immutable); sweeps that re-request the same
    parameters pay the matrix iteration once.

    Iterates the run chain from the empty program for ``rounds`` settling
    rounds (the paper's ``m → ∞`` is reached geometrically fast; the chain
    contracts towards its stationary law).  The returned distribution's
    ``tail_bound`` covers both the state-space truncation (mass parked at
    ``max_run``) and non-stationarity (bounded by the distance travelled in
    the last iteration).

    The stationary tail decays geometrically in the run length, but slowly
    when ``store_probability`` is close to 1; the state space and round
    count are grown automatically (up to a hard cap) until the combined
    truncation error is below ``tolerance``.
    """
    if max_run < 1:
        raise ValueError(f"max_run must be >= 1, got {max_run}")
    hard_cap = 4096
    while True:
        matrix = run_transition_matrix(store_probability, settle, max_run)
        state = np.zeros(max_run + 1)
        state[0] = 1.0
        effective_rounds = max(rounds, 4 * max_run)
        last_move = 1.0
        for _ in range(effective_rounds):
            next_state = state @ matrix
            last_move = float(np.abs(next_state - state).sum())
            state = next_state
        cap_mass = float(state[max_run])
        # The cap state's mass is an artefact of truncation; report it plus
        # the residual non-stationarity as tail/error mass.
        tail = cap_mass + last_move
        if tail <= tolerance:
            return DiscreteDistribution(state[:max_run], tail_bound=tail)
        if max_run >= hard_cap:
            raise TruncationError(
                f"run-length distribution not converged at max_run={max_run}: "
                f"cap mass {cap_mass:.2e}, last move {last_move:.2e}"
            )
        max_run = min(2 * max_run, hard_cap)


def run_chain_spectral_gap(
    store_probability: float = 0.5,
    settle: float = 0.5,
    max_run: int = 64,
) -> float:
    """The trailing-run chain's spectral gap ``1 − |λ₂|``.

    The chain contracts to its stationary law geometrically; the rate is
    governed by ``max(|λ₂|, p·s + …)`` — in practice the *reachability*
    term dominates: after ``m`` rounds no run longer than ``m`` exists,
    while the stationary law carries ``≈ (ps/(1-ps+…))``-geometric tail
    mass there, so the observed TV decay per round at the paper's
    parameters is ≈ 1/2 even though ``|λ₂| ≈ 0.29``.  Either way the
    finite-``m`` substitution documented in DESIGN.md converges
    geometrically: a few dozen rounds are past 1e-10 and the default body
    lengths are overkill by design.  :func:`mixing_rounds` gives the
    conservative round count for a target tolerance using the slower of
    the two rates.
    """
    matrix = run_transition_matrix(store_probability, settle, max_run)
    eigenvalues = np.linalg.eigvals(matrix)
    moduli = sorted(np.abs(eigenvalues), reverse=True)
    # moduli[0] is the Perron eigenvalue 1 (up to numerics).
    return float(1.0 - moduli[1])


def mixing_rounds(
    tolerance: float,
    store_probability: float = 0.5,
    settle: float = 0.5,
    max_run: int = 64,
) -> int:
    """Rounds needed for the run chain to be within ``tolerance`` TV of
    stationarity, from the spectral gap (a conservative geometric bound)."""
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    gap = run_chain_spectral_gap(store_probability, settle, max_run)
    if gap <= 0.0:
        raise TruncationError("run chain has no spectral gap at this truncation")
    # The stationary tail beyond run m decays like the per-round growth
    # probability; convergence is limited by the slower of that rate and
    # the spectral rate |lambda_2|.
    rate = max(1.0 - gap, store_probability)
    if rate <= 0.0:
        return 1
    return max(1, math.ceil(math.log(tolerance) / math.log(rate)))


__all__ += ["run_chain_spectral_gap", "mixing_rounds"]


# ----------------------------------------------------------------------
# Path 1 — the paper's decomposition (Ψ_µ, ∆, F_µ)
# ----------------------------------------------------------------------


def psi_pmf(mu: int, q: int, store_probability: float = 0.5) -> float:
    """``Pr[Ψ_µ = q]``: loads interspersed below the µ-th lowest store.

    The paper's ``2^{-µ} 2^{-q} C(µ+q-1, q)`` generalised to arbitrary
    ``p``: the region holds ``µ`` stores and ``q`` loads with the top
    instruction a store, giving ``C(µ+q-1, q)`` arrangements of weight
    ``p^µ (1-p)^q`` each.
    """
    if mu < 1:
        raise ValueError(f"psi_pmf requires mu >= 1, got {mu}")
    if q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    _check_probability("store_probability", store_probability)
    p = store_probability
    return (p**mu) * ((1.0 - p) ** q) * math.comb(mu + q - 1, q)


def delta_pmf(delta: int, q: int, mu: int) -> float:
    """``Pr[∆ = δ | Ψ_µ = q]`` via the bounded partition number φ(δ, q, µ).

    Each of the ``C(µ+q-1, q)`` arrangements is equally likely, and an
    arrangement's ∆ is determined by how many stores sit above each load —
    a multiset of ``q`` integers in ``[1, µ]`` summing to δ.
    """
    if q == 0:
        return 1.0 if delta == 0 else 0.0
    return bounded_partitions(delta, q, mu) / math.comb(mu + q - 1, q)


def f_probability_exact(mu: int, q: int, settle: float = 0.5) -> float:
    """``Pr[F_µ | Ψ_µ = q]`` evaluated exactly: ``Σ_δ φ(δ,q,µ) s^δ / C``.

    ``F_µ`` is the event that all ``q`` interspersed loads settle clear of
    the lowest ``µ`` stores; conditioned on ∆ = δ it needs δ successful
    swaps, each independent with probability ``s``.
    """
    if mu < 1:
        raise ValueError(f"f_probability requires mu >= 1, got {mu}")
    if q == 0:
        return 1.0
    _check_probability("settle", settle)
    total = sum(
        bounded_partitions(delta, q, mu) * settle**delta for delta in delta_support(q, mu)
    )
    return total / math.comb(mu + q - 1, q)


def f_probability_lower_bound(mu: int, q: int, settle: float = 0.5) -> float:
    """Claim 4.4's bound, generalised: ``Σ_{δ=q}^{µq} s^δ / C`` using φ ≥ 1.

    For ``s = 1/2`` this is the paper's ``(2^{-(q-1)} - 2^{-µq}) / C``.
    """
    if mu < 1:
        raise ValueError(f"f_probability requires mu >= 1, got {mu}")
    if q == 0:
        return 1.0
    _check_probability("settle", settle)
    s = settle
    if s == 0.0:
        return 0.0
    geometric_sum = (s**q - s ** (mu * q + 1)) / (1.0 - s)
    return geometric_sum / math.comb(mu + q - 1, q)


def l_probability_paper(
    mu: int,
    store_probability: float = 0.5,
    settle: float = 0.5,
    max_q: int = 64,
    exact_phi: bool = True,
) -> float:
    """``Pr[L_µ]`` through the paper's decomposition (Appendix B.1).

    ``Σ_q Pr[Ψ_µ = q] · Pr[F_µ | Ψ_µ = q] · (1 − s^q · X_∞)`` where
    ``X_∞`` is Claim 4.3's steady-state store fraction.  With
    ``exact_phi=True`` the exact φ values are used (this library's
    refinement); with ``False`` the paper's Claim-4.4 lower bound is
    substituted, reproducing the published ``(4/7)·2^{-µ}``-style bound.

    For ``µ = 0`` the decomposition degenerates; the paper derives
    ``Pr[L_0] = 1 − X_∞`` directly from Claim 4.3.
    """
    if mu == 0:
        return 1.0 - steady_state_store_fraction(store_probability, settle)
    fraction = steady_state_store_fraction(store_probability, settle)
    f_term = f_probability_exact if exact_phi else f_probability_lower_bound
    total = 0.0
    for q in range(max_q + 1):
        weight = psi_pmf(mu, q, store_probability)
        if weight < 1e-18 and q > 4:
            break
        total += weight * f_term(mu, q, settle) * (1.0 - settle**q * fraction)
    return total


def l_lower_bound_paper(mu: int) -> float:
    """Lemma 4.2's closed form for ``p = s = 1/2``: ``(4/7)·2^{-µ}``.

    (``Pr[L_0] = 1/3`` exactly.)
    """
    if mu < 0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if mu == 0:
        return 1.0 / 3.0
    return (4.0 / 7.0) * 2.0**-mu


def paper_run_distribution(
    store_probability: float = 0.5,
    settle: float = 0.5,
    max_mu: int = 48,
    max_q: int = 64,
) -> DiscreteDistribution:
    """The full ``Pr[L_µ]`` PMF via the paper's decomposition with exact φ.

    Complements :func:`run_length_distribution` (the Markov-chain solve);
    the two agree to high precision, which is the library's strongest
    internal check on the §4 analysis.
    """
    values = [
        l_probability_paper(mu, store_probability, settle, max_q=max_q)
        for mu in range(max_mu + 1)
    ]
    tail = max(0.0, 1.0 - sum(values))
    return DiscreteDistribution(np.array(values), tail_bound=tail + 1e-12)


# ----------------------------------------------------------------------
# Conditional (per-program) run distribution — Rao–Blackwell helper
# ----------------------------------------------------------------------


def conditional_run_distribution(
    store_mask: np.ndarray,
    settle: float = 0.5,
    max_run: int = DEFAULT_MAX_RUN,
) -> DiscreteDistribution:
    """Law of the trailing-store run given the *explicit* program prefix.

    Threads in the joined model (§6) share one initial program and reorder
    independently, so their windows are dependent through the program.
    This DP computes, for a fixed prefix (``store_mask[i]`` marks store),
    the exact conditional run-length distribution after settling — enabling
    low-variance (Rao–Blackwellised) estimators that average analytic
    conditional quantities over sampled programs only.

    O(m · max_run) via suffix sums.
    """
    _check_probability("settle", settle)
    s = settle
    size = max_run + 1
    state = np.zeros(size)
    state[0] = 1.0
    powers = s ** np.arange(size)
    for is_store in np.asarray(store_mask, dtype=bool):
        if is_store:
            overflow = state[-1]
            state[1:] = state[:-1]
            state[0] = 0.0
            state[-1] += overflow  # clamp at the cap
        else:
            # From k: to j<k w.p. (1-s)s^j; stay k w.p. s^k.
            # new[j] = (1-s) s^j Σ_{k>j} old[k] + old[j] s^j
            above = np.concatenate((np.cumsum(state[::-1])[::-1][1:], [0.0]))
            state = (1.0 - s) * powers * above + state * powers
    cap_mass = float(state[-1])
    return DiscreteDistribution(state[:-1], tail_bound=cap_mass + 1e-15)


__all__.append("conditional_run_distribution")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
