"""Scaling in the number of bugs — the dual axis to Theorem 6.3.

The paper scales the *thread count* n for a single canonical bug and finds
the memory-model gap vanishes.  Real programs scale along another axis:
one pair of threads, but **many** racy critical sections.  This module
analyses K independent atomicity violations at well-separated positions
of the (identical) two-thread program, under the paper's own execution
model:

* the threads' relative offset is a single shared value for the whole run
  (the shift model's per-thread shift):  ``d = s₂ − s₁``,
  ``Pr[d = 0] = (1−β)/(1+β)``, ``Pr[d = k] = (1−β)β^{|k|}/(1+β)``;
* for a given ``d > 0`` the j-th bug survives iff the *earlier* thread's
  j-th window ends before the later thread reaches it: ``Γ₁⁽ʲ⁾ < d``
  (symmetrically for d < 0) — only one thread's windows enter, and
  windows of well-separated sections live in disjoint program regions, so
  they are genuinely independent.  Hence **exactly**:

  ``Pr[no bug manifests] = Σ_{k≥1} Pr[|d| = k] · F_Γ(k − 1)^K``

  with ``F_Γ`` the window-length CDF.  (``d = 0`` loses every section.)

The headline result, benched as E16: under SC the windows are
deterministic (Γ ≡ 2), so the survival probability is **constant in K**
(= Pr[|d| ≥ 3] = 1/6), while any model with geometric window tails decays
like ``Θ(1/K)`` (Laplace's method on the sum).  Along the bug-count axis
the strict model's relative advantage *diverges* — the mirror image of
Theorem 6.3's vanishing gap along the thread axis.  Whether a strict
memory model is worth its cost therefore depends on which way a system
grows: more cores (no), or more unsynchronised code per core pair (yes).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelDefinitionError
from ..stats.montecarlo import BernoulliResult, estimate_event
from ..stats.rng import RandomSource
from .distributions import ValueWithError
from .memory_models import MemoryModel
from .settling import DEFAULT_BODY_LENGTH
from .shift import DEFAULT_SHIFT_RATIO
from .shift_analytic import WINDOW_LENGTH_OFFSET
from .window_analytic import window_distribution
from .window_sampling import sample_growth_matrix

__all__ = [
    "shift_difference_pmf",
    "multi_bug_survival",
    "estimate_multi_bug_survival",
    "multi_bug_gap_curve",
]


def shift_difference_pmf(k: int, beta: float = DEFAULT_SHIFT_RATIO) -> float:
    """``Pr[s₂ − s₁ = k]`` for i.i.d. geometric shifts of ratio β.

    The discrete two-sided law ``(1−β) β^{|k|} / (1+β)``; at β = 1/2 this
    gives 1/3 at k = 0 and 1/6 at |k| = 1, matching the direct sums used
    in the shift-analytic tests.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    return (1.0 - beta) * beta ** abs(k) / (1.0 + beta)


def multi_bug_survival(
    model: MemoryModel,
    bug_count: int,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    tolerance: float = 1e-12,
) -> ValueWithError:
    """Exact ``Pr[none of K separated bugs manifests]``, two threads.

    ``Σ_{k≥1} 2·Pr[d = k] · F_Γ(k−1)^K`` with adaptive truncation (the
    tail is bounded by the raw shift-difference tail).  ``bug_count = 1``
    reproduces :func:`repro.core.manifestation.non_manifestation_probability`
    at n = 2.
    """
    if bug_count < 1:
        raise ValueError(f"bug_count must be >= 1, got {bug_count}")
    growth = window_distribution(model, store_probability)
    prefix = growth.prefix
    cumulative = np.cumsum(prefix)

    def window_cdf(x: int) -> float:
        """Pr[Γ <= x] = Pr[growth <= x - WINDOW_LENGTH_OFFSET]."""
        index = x - WINDOW_LENGTH_OFFSET
        if index < 0:
            return 0.0
        if index >= cumulative.size:
            return 1.0  # beyond the stored prefix (tail bound folded below)
        return float(cumulative[index])

    total = 0.0
    k = 1
    while True:
        weight = 2.0 * shift_difference_pmf(k, beta)
        total += weight * window_cdf(k - 1) ** bug_count
        # Everything beyond k contributes at most the remaining shift mass.
        remaining = 2.0 * beta ** (k + 1) / (1.0 + beta)
        if remaining < tolerance:
            break
        k += 1
        if k > 10_000:  # pragma: no cover - geometric tails terminate long before
            break
    # Window-law truncation error: each CDF evaluation may be low by at
    # most the growth law's tail bound, amplified by K via the power —
    # bounded by K * tail per term, summed with the shift weights (<= 1).
    error = remaining + min(1.0, bug_count * growth.tail_bound)
    return ValueWithError(total, error)


def estimate_multi_bug_survival(
    model: MemoryModel,
    bug_count: int,
    trials: int,
    seed: int | None = 0,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
    body_length: int = DEFAULT_BODY_LENGTH,
    confidence: float = 0.99,
) -> BernoulliResult:
    """Monte-Carlo validation of :func:`multi_bug_survival`.

    Per trial: draw the shared offset ``d``; if ``d = 0`` every section
    overlaps; otherwise draw the earlier thread's K window growths
    (independent sections → independent programs) and require every
    window to close before ``|d|``.
    """
    if bug_count < 1:
        raise ValueError(f"bug_count must be >= 1, got {bug_count}")
    if model.uniform_settle_probability is None and model.relaxed_pairs:
        raise ModelDefinitionError(
            "multi-bug Monte Carlo needs a uniform settle probability"
        )

    def batch_trial(source: RandomSource, batch: int) -> int:
        d = source.geometric_array(beta, batch) - source.geometric_array(beta, batch)
        # Sections live in disjoint program regions: their windows are fully
        # independent, so sample them as separate single-thread draws (the
        # multi-thread sampler would wrongly couple them through one program).
        growths = sample_growth_matrix(
            model, source, batch * bug_count, 1, body_length, store_probability
        ).reshape(batch, bug_count)
        lengths = growths + WINDOW_LENGTH_OFFSET
        survive = (lengths < np.abs(d)[:, np.newaxis]).all(axis=1) & (d != 0)
        return int(survive.sum())

    return estimate_event(batch_trial, trials, seed=seed, confidence=confidence)


def multi_bug_gap_curve(
    bug_counts: list[int],
    models: tuple[MemoryModel, ...] | None = None,
    store_probability: float = 0.5,
    beta: float = DEFAULT_SHIFT_RATIO,
) -> list[dict[str, object]]:
    """Survival per model over bug counts, with the diverging SC/WO ratio.

    The dual of :func:`repro.analysis.asymptotics.exponent_gap_curve`:
    there the ratio tends to 1; here it grows without bound (≈ K/6·c).
    """
    from .memory_models import PAPER_MODELS

    chosen = models if models is not None else PAPER_MODELS
    rows = []
    for bug_count in bug_counts:
        row: dict[str, object] = {"bugs": bug_count}
        values = {}
        for model in chosen:
            value = multi_bug_survival(model, bug_count, store_probability, beta).value
            values[model.name] = value
            row[f"Pr[A] {model.name}"] = value
        if "SC" in values and "WO" in values and values["WO"] > 0:
            row["SC/WO ratio"] = values["SC"] / values["WO"]
        rows.append(row)
    return rows
