"""Fences in the settling model — the §7 extension the paper sketches.

The paper (§7): *"An important item for future work is to include
acquire/release fences … These fences act as one-way barriers, allowing
instructions to reorder into, but not out of, a critical section.  This
behavior can be easily modeled using settling."*  This module does exactly
that, and tests the paper's conjecture that *"adding fences will not
significantly change the main conclusions"*.

Semantics (settling moves instructions **upward**, toward earlier
positions):

* ``ACQUIRE`` — the top of a critical section.  No instruction may settle
  *above* an acquire (that would move it out of the section, upward);
  the fence itself never moves.
* ``RELEASE`` — the bottom of a critical section.  A later instruction
  *may* settle above a release (moving into the section from below), with
  the model's settle probability; the fence itself never moves.
* ``FULL`` — two-sided: nothing crosses, it never moves.

The canonical fenced scenario places an ``ACQUIRE`` ``fence_distance``
body instructions above the critical load (the §2.2 bug wrapped in a
lock-acquire whose lock variable we do not model).  The fence truncates
the critical load's climb, which yields *exact* fenced window laws:

* **TSO/PSO** — the trailing-store-run chain simply *restarts at the
  fence*: the run above the critical load is the chain's state after
  ``fence_distance`` rounds from empty (a finite-horizon law, not the
  stationary one), and the usual climb/chase folds apply unchanged.
* **WO** — the load climb is capped at ``fence_distance``:
  ``γ = min(Geom(s), k) − min(Geom(s), ·)`` with the store chase intact.
* **SC** — unchanged (nothing moves anyway).

A reference simulator over explicit fence-bearing sequences validates all
of these laws in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ModelDefinitionError, ProgramError
from ..stats.rng import RandomSource
from .distributions import DiscreteDistribution, point_mass
from .instructions import (
    DEFAULT_STORE_PROBABILITY,
    InstructionType,
    generate_program,
)
from .memory_models import PSO, SC, TSO, WO, MemoryModel
from .settling import DEFAULT_BODY_LENGTH
from .tso_analysis import run_transition_matrix
from .window_analytic import pso_window_from_load_gap, window_from_run_distribution

__all__ = [
    "Barrier",
    "FencedItem",
    "build_fenced_sequence",
    "settle_fenced_window",
    "finite_run_distribution",
    "fenced_window_distribution",
]


class Barrier(enum.Enum):
    """Fence kinds of §7 (plus the two-sided full barrier)."""

    ACQUIRE = "ACQ"
    RELEASE = "REL"
    FULL = "FENCE"


@dataclass(frozen=True)
class FencedItem:
    """One slot of a fenced instruction sequence.

    Exactly one of ``type`` (a memory operation) or ``barrier`` is set;
    ``critical`` marks the §2.2 critical load/store pair.
    """

    type: InstructionType | None = None
    barrier: Barrier | None = None
    critical: bool = False

    def __post_init__(self) -> None:
        if (self.type is None) == (self.barrier is None):
            raise ProgramError("a fenced item is either an operation or a barrier")

    @property
    def is_barrier(self) -> bool:
        return self.barrier is not None

    def __str__(self) -> str:
        if self.barrier is not None:
            return self.barrier.value
        assert self.type is not None
        return self.type.mnemonic + ("*" if self.critical else "")


def build_fenced_sequence(
    body: list[InstructionType],
    fence_distance: int,
    kind: Barrier = Barrier.ACQUIRE,
    add_release: bool = True,
) -> list[FencedItem]:
    """The canonical fenced scenario: body, fence, tail, critical pair.

    The fence sits ``fence_distance`` body instructions above the critical
    load; a trailing ``RELEASE`` closes the critical section (it sits
    below the critical store, where it never affects the window).
    """
    if fence_distance < 0:
        raise ProgramError(f"fence_distance must be non-negative, got {fence_distance}")
    if fence_distance > len(body):
        raise ProgramError(
            f"fence_distance {fence_distance} exceeds body length {len(body)}"
        )
    split = len(body) - fence_distance
    items = [FencedItem(type=instruction_type) for instruction_type in body[:split]]
    items.append(FencedItem(barrier=kind))
    items += [FencedItem(type=instruction_type) for instruction_type in body[split:]]
    items.append(FencedItem(type=InstructionType.LOAD, critical=True))
    items.append(FencedItem(type=InstructionType.STORE, critical=True))
    if add_release:
        items.append(FencedItem(barrier=Barrier.RELEASE))
    return items


def _swap_probability(
    model: MemoryModel, above: FencedItem, settling: FencedItem
) -> float:
    """ρ for one upward swap attempt in the fenced settling process."""
    if settling.is_barrier:
        return 0.0  # fences never move
    if above.is_barrier:
        if above.barrier in (Barrier.ACQUIRE, Barrier.FULL):
            return 0.0  # nothing leaves the critical section upward
        # RELEASE: reordering *into* the section is allowed at the model's
        # rate for this instruction kind (use the uniform settle rate).
        uniform = model.uniform_settle_probability
        return uniform if uniform is not None else 0.0
    if above.critical and settling.critical:
        return 0.0  # the critical pair shares a location
    assert above.type is not None and settling.type is not None
    return model.settle_probability(above.type, settling.type)


def settle_fenced_window(
    items: list[FencedItem], model: MemoryModel, source: RandomSource
) -> int:
    """Reference simulator: settle a fenced sequence, return window growth.

    The round-based process of Appendix A.2 extended with the barrier
    rules above.  O(length²) worst case; used to validate the exact laws.
    """
    order: list[int] = []
    for round_index, item in enumerate(items):
        position = len(order)
        order.append(round_index)
        while position > 0:
            above = items[order[position - 1]]
            if not source.bernoulli(_swap_probability(model, above, item)):
                break
            order[position - 1], order[position] = order[position], order[position - 1]
            position -= 1
    critical_positions = sorted(
        position for position, index in enumerate(order) if items[index].critical
    )
    if len(critical_positions) != 2:
        raise ProgramError("fenced sequence must contain exactly the critical pair")
    return critical_positions[1] - critical_positions[0] - 1


def sample_fenced_window_growth(
    model: MemoryModel,
    source: RandomSource,
    fence_distance: int,
    body_length: int = DEFAULT_BODY_LENGTH,
    store_probability: float = DEFAULT_STORE_PROBABILITY,
    kind: Barrier = Barrier.ACQUIRE,
) -> int:
    """Sample the fenced window growth via the reference simulator."""
    program = generate_program(body_length, source, store_probability)
    body = [instruction.type for instruction in program.instructions[:-2]]
    items = build_fenced_sequence(body, fence_distance, kind)
    return settle_fenced_window(items, model, source)


__all__.append("sample_fenced_window_growth")


# ----------------------------------------------------------------------
# Exact fenced window laws
# ----------------------------------------------------------------------


def finite_run_distribution(
    rounds: int,
    store_probability: float = 0.5,
    settle: float = 0.5,
) -> DiscreteDistribution:
    """Trailing-store-run law after exactly ``rounds`` settling rounds.

    This is the run chain *started fresh at the fence*: an acquire resets
    the run structure because no load below it can climb past it, exactly
    as the program's beginning does.  Exact (the support is bounded by
    ``rounds``).
    """
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if rounds == 0:
        return point_mass(0)
    matrix = run_transition_matrix(store_probability, settle, max_run=rounds)
    state = np.zeros(rounds + 1)
    state[0] = 1.0
    for _ in range(rounds):
        state = state @ matrix
    return DiscreteDistribution(state, tail_bound=0.0)


def fenced_window_distribution(
    model: MemoryModel,
    fence_distance: int,
    store_probability: float = 0.5,
) -> DiscreteDistribution:
    """Exact window-growth law with an ACQUIRE ``fence_distance`` above the
    critical load (the canonical fenced scenario).

    ``fence_distance = 0`` forces every model to the SC law — the fence
    sits directly above the critical load, so the window cannot grow.
    """
    if fence_distance < 0:
        raise ValueError(f"fence_distance must be non-negative, got {fence_distance}")
    if model.relaxed_pairs == SC.relaxed_pairs or fence_distance == 0:
        return point_mass(0)
    settle = model.uniform_settle_probability
    if settle is None:
        raise ModelDefinitionError(
            f"no exact fenced law for {model.name} with non-uniform settle "
            "probabilities; use the reference simulator"
        )
    if model.relaxed_pairs == WO.relaxed_pairs:
        return _fenced_wo_window(settle, fence_distance)
    if model.relaxed_pairs in (TSO.relaxed_pairs, PSO.relaxed_pairs):
        runs = finite_run_distribution(fence_distance, store_probability, settle)
        load_gap = window_from_run_distribution(runs, settle)
        if model.relaxed_pairs == PSO.relaxed_pairs:
            return pso_window_from_load_gap(load_gap, settle)
        return load_gap
    raise ModelDefinitionError(
        f"no exact fenced law for relaxation set of {model.name}"
    )


def fenced_non_manifestation(
    model: MemoryModel,
    fence_distance: int,
    n: int = 2,
    store_probability: float = 0.5,
    beta: float = 0.5,
):
    """``Pr[A]`` for n fenced threads (Theorem 6.2's pipeline + fences).

    Exact for SC/WO at any n and for every model at n = 2 (only window
    marginals enter); for TSO/PSO at n ≥ 3 it is the independent-window
    approximation, as in the unfenced analytic route.

    The paper's §7 conjecture, checked by the fence bench: fences increase
    Pr[A] (fewer legal reorderings) but change no qualitative conclusion —
    at ``fence_distance = 0`` every model collapses onto SC's 1/6, and
    the Theorem 6.3 asymptotics are untouched.
    """
    from .shift_analytic import disjointness_iid

    growth = fenced_window_distribution(model, fence_distance, store_probability)
    return disjointness_iid(growth, n, beta)


__all__.append("fenced_non_manifestation")


def _fenced_wo_window(settle: float, cap: int) -> DiscreteDistribution:
    """WO with a capped load climb: i' = min(Geom(s), cap), chase intact.

    ``Pr[i' = i] = (1-s)s^i`` for i < cap and ``s^cap`` at the cap (the
    climb stops at the fence).  Given i', the store chases
    ``j = min(Geom(s), i')`` and γ = i' − j, exactly as unfenced.
    """
    s = settle
    size = cap + 1
    climb = np.zeros(size)
    for i in range(cap):
        climb[i] = (1.0 - s) * s**i
    climb[cap] = s**cap
    window = np.zeros(size)
    for i in range(size):
        # chase j < i with prob (1-s)s^j -> gamma = i - j;  j = i with s^i.
        window[0] += climb[i] * s**i
        for j in range(i):
            window[i - j] += climb[i] * (1.0 - s) * s**j
    return DiscreteDistribution(window, tail_bound=0.0)
