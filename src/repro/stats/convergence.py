"""Convergence diagnostics for Monte-Carlo estimates.

The benchmark harness does not just print point estimates; it checks that
each empirical estimate has *stabilised* (batch means agree within noise)
and reports how many trials a target resolution would need.  These helpers
keep that logic in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .intervals import normal_quantile

__all__ = [
    "required_trials",
    "standard_error",
    "BatchSummary",
    "summarise_batches",
]


def standard_error(probability: float, trials: int) -> float:
    """Standard error of a binomial proportion estimate."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    probability = min(max(probability, 0.0), 1.0)
    return math.sqrt(probability * (1.0 - probability) / trials)


def required_trials(
    probability: float, half_width: float, confidence: float = 0.99
) -> int:
    """Trials needed so a Wilson interval has roughly the given half-width.

    Uses the normal-approximation sizing formula
    ``n = z^2 p (1 - p) / w^2`` with the worst case ``p (1 - p) <= 1/4``
    when ``probability`` is 0 or 1 (i.e. unknown).
    """
    if half_width <= 0.0:
        raise ValueError(f"half_width must be positive, got {half_width}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = normal_quantile(0.5 + confidence / 2.0)
    variance = probability * (1.0 - probability)
    if variance == 0.0:
        variance = 0.25
    return max(1, math.ceil(z * z * variance / (half_width * half_width)))


@dataclass(frozen=True)
class BatchSummary:
    """Agreement diagnostics across independent estimate batches."""

    batch_estimates: tuple[float, ...]
    pooled_estimate: float
    max_deviation: float
    tolerance: float

    @property
    def converged(self) -> bool:
        """Whether every batch mean lies within tolerance of the pool."""
        return self.max_deviation <= self.tolerance


def summarise_batches(
    batch_estimates: list[float],
    batch_trials: int,
    confidence: float = 0.99,
) -> BatchSummary:
    """Check that independent batch estimates of one probability agree.

    The tolerance is the ``confidence``-level normal radius for a single
    batch around the pooled estimate; disagreement beyond it flags either
    insufficient trials or (more usefully in development) a seeding bug
    making batches dependent.
    """
    if not batch_estimates:
        raise ValueError("need at least one batch")
    if batch_trials <= 0:
        raise ValueError(f"batch_trials must be positive, got {batch_trials}")
    pooled = sum(batch_estimates) / len(batch_estimates)
    z = normal_quantile(0.5 + confidence / 2.0)
    tolerance = z * standard_error(pooled, batch_trials) + 1e-12
    max_deviation = max(abs(estimate - pooled) for estimate in batch_estimates)
    return BatchSummary(tuple(batch_estimates), pooled, max_deviation, tolerance)
