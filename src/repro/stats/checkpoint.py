"""Run manifests: journal completed shards, resume interrupted runs.

A production-scale trial budget can run for hours; an interruption (crash,
preemption, ctrl-C) must not discard the shards that already finished.
Because each shard of a :class:`~repro.stats.parallel.ShardPlan` is a pure
function of ``(seed, shards, i)``, a completed shard's result is valid
forever — so the engine can journal results as they arrive and a resumed
run can load the finished shards and execute only the remainder, merging
to **exactly** the result of an uninterrupted run.

The journal is an append-only JSONL file.  Each line carries:

* ``key`` — the hex identity hash of the run (:func:`plan_key`), derived
  from ``(trials, shards, seed)`` plus a caller label.  ``load`` ignores
  records whose key differs, so one file can safely accumulate several
  runs (e.g. one per memory model) without cross-contamination.
* ``shard`` — the shard index within the plan.
* ``data`` — the shard result, pickled and base64-encoded (shard results
  are library value objects — ``BernoulliResult``, numpy aggregates —
  not JSON-native).

Torn trailing lines (a crash mid-append) and undecodable payloads are
skipped on load: the affected shard simply re-executes, which is always
safe.  **Reuse rules**: the key does *not* hash the trial function, so a
checkpoint is only safe to reuse for the same experiment — same kernel,
same parameters — that wrote it; the high-level estimators encode their
experiment parameters in the label for exactly this reason.  Like any
pickle-based format, only load checkpoint files you wrote yourself.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .parallel import ShardPlan

__all__ = ["CHECKPOINT_FORMAT", "plan_key", "ShardCheckpoint"]

#: Journal format version, folded into every key: bumping it orphans old
#: records rather than misreading them.
CHECKPOINT_FORMAT = 1


def plan_key(trials: int, shards: int, seed: int | None, label: str = "") -> str:
    """The identity hash a checkpoint is keyed by.

    Two runs share a key exactly when they share the statistical identity
    ``(trials, shards, seed)`` *and* the caller's ``label`` (which the
    high-level estimators use to encode the experiment — kernel family,
    model, thread count — since the trial function itself cannot be
    hashed portably).
    """
    payload = f"v{CHECKPOINT_FORMAT}:{trials}:{shards}:{seed!r}:{label}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ShardCheckpoint:
    """An append-only JSONL journal of completed shard results for one run."""

    def __init__(self, path: str | Path, key: str):
        self.path = Path(path)
        self.key = key

    @classmethod
    def for_plan(cls, path: str | Path, plan: "ShardPlan",
                 label: str = "") -> "ShardCheckpoint":
        """The checkpoint for ``plan`` (keyed via :func:`plan_key`)."""
        return cls(path, plan_key(plan.trials, plan.shards, plan.seed, label))

    def load(self) -> dict[int, Any]:
        """Completed shard results recorded under this run's key.

        Later records win on duplicate shard indices (an interrupted
        retry may journal a shard twice; both payloads are bit-identical
        by the purity argument, so either is correct).
        """
        results: dict[int, Any] = {}
        if not self.path.exists():
            return results
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:  # torn tail from a crash mid-append
                    continue
                if not isinstance(record, dict) or record.get("key") != self.key:
                    continue
                try:
                    value = pickle.loads(base64.b64decode(record["data"]))
                    index = int(record["shard"])
                except Exception:  # undecodable payload: re-execute that shard
                    continue
                results[index] = value
        return results

    def record(self, shard: int, result: Any) -> None:
        """Append one completed shard's result (flushed immediately)."""
        payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        line = json.dumps({"key": self.key, "shard": int(shard), "data": payload})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardCheckpoint(path={str(self.path)!r}, key={self.key!r})"
