"""Run manifests: journal completed shards, resume interrupted runs.

A production-scale trial budget can run for hours; an interruption (crash,
preemption, ctrl-C) must not discard the shards that already finished.
Because each shard of a :class:`~repro.stats.parallel.ShardPlan` is a pure
function of ``(seed, shards, i)`` *and the shard kernel*, a completed
shard's result is valid forever — so the engine can journal results as
they arrive and a resumed run can load the finished shards and execute
only the remainder, merging to **exactly** the result of an uninterrupted
run.

The journal is an append-only JSONL file.  Each line carries:

* ``key`` — the hex identity hash of the run (:func:`plan_key`), derived
  from ``(trials, shards, seed)``, a caller label, and — since format 2 —
  the **kernel fingerprint** (:func:`kernel_fingerprint`): a stable
  digest of the shard kernel's qualified name, compiled code, and bound
  closure parameters.  ``load`` ignores records whose key differs, so one
  file can safely accumulate several runs (e.g. one per memory model)
  without cross-contamination.
* ``shard`` — the shard index within the plan.
* ``data`` — the shard result, pickled and base64-encoded (shard results
  are library value objects — ``BernoulliResult``, numpy aggregates —
  not JSON-native).

Torn trailing lines (a crash mid-append) and undecodable payloads are
skipped on load — the affected shard simply re-executes, which is always
safe — and counted in :attr:`ShardCheckpoint.skipped_lines` so the engine
can surface recovery-vs-corruption to operators.

**Why the fingerprint exists.**  Format 1 deliberately omitted the trial
function from the key, so any two experiments colliding on
``(trials, shards, seed, label)`` silently reused each other's journaled
shards and merged wrong numbers.  Format 2 closes that hole: the
fingerprint digests the *computation* (function identity, code, bound
parameters, backend — distinct kernel functions have distinct qualified
names), so a different kernel can never satisfy a shard from another
kernel's journal.  Mismatches are conservative by construction — a false
mismatch merely re-executes a shard; only a collision could merge wrong
numbers, and the fingerprint is a SHA-256 digest of the full closure.
Like any pickle-based format, only load checkpoint files you wrote
yourself.
"""

from __future__ import annotations

import base64
import dataclasses
import functools
import hashlib
import json
import pickle
import re
import types
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .parallel import ShardPlan

__all__ = ["CHECKPOINT_FORMAT", "plan_key", "kernel_fingerprint",
           "ShardCheckpoint"]

#: Journal format version, folded into every key: bumping it orphans old
#: records rather than misreading them.  Format 2 added the kernel
#: fingerprint; format-1 journals are orphaned by design (their shards
#: re-execute — always safe).
CHECKPOINT_FORMAT = 2

#: ``repr`` of live objects can embed memory addresses ("... at
#: 0x7f3a...") that change every process; scrub them so fingerprints are
#: stable across runs.
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def plan_key(trials: int, shards: int, seed: int | None, label: str = "",
             fingerprint: str = "", rng_plan: str = "spawn") -> str:
    """The identity hash a checkpoint is keyed by.

    Two runs share a key exactly when they share the statistical identity
    ``(trials, shards, seed)``, the caller's ``label`` (free-text
    experiment salt), the kernel ``fingerprint``
    (:func:`kernel_fingerprint` — the digest of what each shard actually
    computes), *and* the RNG plan.  The label is length-prefixed in the
    hash payload and the fingerprint is pure hex, so no concatenation of
    components can collide structurally with a different split of the
    same characters.

    ``rng_plan`` selects the shard-stream derivation (see
    :mod:`repro.stats.rng`).  The default ``"spawn"`` contributes nothing
    to the payload, so every key minted before the plan knob existed is
    unchanged — old journals and cache entries stay valid.  Any other
    plan appends a ``:rng=<plan>`` suffix, which cannot collide with a
    spawn-plan key because the fingerprint component is pure hex and the
    suffix is not.
    """
    payload = (f"v{CHECKPOINT_FORMAT}:{trials}:{shards}:{seed!r}"
               f":{len(label)}:{label}:{fingerprint}")
    if rng_plan != "spawn":
        payload += f":rng={rng_plan}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _code_digest(code: types.CodeType) -> str:
    """Stable digest of a compiled function body.

    Hashes the bytecode, referenced names, and constants — recursing into
    nested code objects (comprehensions, inner functions) — while
    scrubbing memory addresses from constant reprs.  Stable across
    processes for a fixed interpreter; a new Python version may change
    bytecode and therefore the digest, which is the safe direction
    (re-execute, never reuse wrongly).
    """
    hasher = hashlib.sha256()

    def feed(obj: types.CodeType) -> None:
        hasher.update(obj.co_name.encode("utf-8"))
        hasher.update(obj.co_code)
        hasher.update(repr(obj.co_names).encode("utf-8"))
        for constant in obj.co_consts:
            if isinstance(constant, types.CodeType):
                feed(constant)
            else:
                hasher.update(_ADDRESS.sub("0x", repr(constant)).encode("utf-8"))

    feed(code)
    return hasher.hexdigest()


def _canonical(value: Any) -> str:
    """A stable, address-free textual form of a kernel parameter.

    Covers the parameter types the estimators actually bind into their
    shard kernels — scalars, containers, numpy arrays, dataclasses
    (memory models, schedulers), and callables — and falls back to a
    scrubbed ``repr`` for anything else.  Collisions here would reuse a
    wrong shard, so types that cannot be distinguished textually (two
    objects whose scrubbed reprs agree) must differ in type tag or field
    values to differ at all; mismatches merely re-execute.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(item) for item in value)
        return f"{type(value).__name__}:[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_canonical(item) for item in value))
        return f"{type(value).__name__}:{{{inner}}}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}={item}"
            for key, item in sorted((_canonical(k), _canonical(v))
                                    for k, v in value.items())
        )
        return f"dict:{{{inner}}}"
    try:
        import numpy as np
        if isinstance(value, np.ndarray):
            digest = hashlib.sha256(value.tobytes()).hexdigest()[:16]
            return f"ndarray:{value.dtype}:{value.shape}:{digest}"
        if isinstance(value, np.generic):
            return f"{type(value).__name__}:{value!r}"
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={_canonical(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__module__}.{type(value).__qualname__}:({fields})"
    if isinstance(value, functools.partial) or callable(value):
        return _describe_callable(value)
    state = getattr(value, "__dict__", None)
    tag = f"{type(value).__module__}.{type(value).__qualname__}"
    if isinstance(state, dict) and state:
        fields = ",".join(f"{name}={_canonical(item)}"
                          for name, item in sorted(state.items()))
        return f"{tag}:({fields})"
    return f"{tag}:{_ADDRESS.sub('0x', repr(value))}"


def _describe_callable(kernel: Any) -> str:
    """Canonical description of a callable, unwrapping ``functools.partial``.

    A partial contributes its bound positional and keyword arguments plus
    the description of the wrapped callable (recursively — the estimators
    nest partials two deep).  Plain functions contribute module, qualified
    name, code digest, defaults, and closure cell contents; bound methods
    add the receiver; callable objects their type and state.
    """
    if isinstance(kernel, functools.partial):
        args = ",".join(_canonical(item) for item in kernel.args)
        keywords = ",".join(
            f"{name}={_canonical(item)}"
            for name, item in sorted(kernel.keywords.items())
        )
        return f"partial:({_describe_callable(kernel.func)};{args};{keywords})"
    if isinstance(kernel, types.MethodType):
        return (f"method:({_describe_callable(kernel.__func__)};"
                f"{_canonical(kernel.__self__)})")
    if isinstance(kernel, types.FunctionType):
        parts = [f"{kernel.__module__}.{kernel.__qualname__}",
                 _code_digest(kernel.__code__)]
        if kernel.__defaults__:
            parts.append(",".join(_canonical(item)
                                  for item in kernel.__defaults__))
        if kernel.__kwdefaults__:
            parts.append(",".join(f"{name}={_canonical(item)}"
                                  for name, item in
                                  sorted(kernel.__kwdefaults__.items())))
        if kernel.__closure__:
            cells = []
            for cell in kernel.__closure__:
                try:
                    cells.append(_canonical(cell.cell_contents))
                except ValueError:  # empty cell
                    cells.append("cell:empty")
            parts.append(",".join(cells))
        return "function:(" + ";".join(parts) + ")"
    if isinstance(kernel, (types.BuiltinFunctionType, types.BuiltinMethodType)):
        return f"builtin:{getattr(kernel, '__module__', '')}.{kernel.__qualname__}"
    tag = f"{type(kernel).__module__}.{type(kernel).__qualname__}"
    state = getattr(kernel, "__dict__", None)
    if isinstance(state, dict) and state:
        fields = ",".join(f"{name}={_canonical(item)}"
                          for name, item in sorted(state.items()))
        return f"callable:{tag}:({fields})"
    return f"callable:{tag}"


def kernel_fingerprint(kernel: Any, extra: Any = None) -> str:
    """A stable hex digest of a shard kernel's computational identity.

    The digest covers the kernel's qualified name, its compiled code, its
    defaults and closure, and — through recursive ``functools.partial``
    unwrapping — every parameter the estimators bound into it (trial
    function, memory model, thread count, batch size, backend-specific
    kernel function, ...).  Two kernels that compute different things get
    different fingerprints; the same kernel fingerprints identically
    across processes and machines (memory addresses are scrubbed, hashes
    are SHA-256, no ``PYTHONHASHSEED`` dependence).

    ``extra`` optionally folds additional salt (any :func:`_canonical`-
    representable value) into the digest for callers whose identity is
    not fully captured by the callable itself.
    """
    payload = _describe_callable(kernel)
    if extra is not None:
        payload += "|" + _canonical(extra)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ShardCheckpoint:
    """An append-only JSONL journal of completed shard results for one run.

    :attr:`skipped_lines` holds, after each :meth:`load`, the number of
    torn or undecodable journal lines that were dropped — zero for a
    healthy journal, positive when a crash tore the tail or the file was
    corrupted (the affected shards re-execute either way).
    """

    def __init__(self, path: str | Path, key: str):
        self.path = Path(path)
        self.key = key
        self.skipped_lines = 0

    @classmethod
    def for_plan(cls, path: str | Path, plan: "ShardPlan", label: str = "",
                 fingerprint: str = "") -> "ShardCheckpoint":
        """The checkpoint for ``plan`` (keyed via :func:`plan_key`).

        ``fingerprint`` is the kernel fingerprint the engine derives via
        :func:`kernel_fingerprint`; constructing a checkpoint with an
        explicit fingerprint (or pre-keying one with ``ShardCheckpoint(
        path, key)``) is the caller's assertion of the run's identity.
        The plan's ``rng_plan`` folds into the key as well (a spawn-plan
        and a philox-plan run never share journal records).
        """
        return cls(path, plan_key(plan.trials, plan.shards, plan.seed,
                                  label, fingerprint,
                                  getattr(plan, "rng_plan", "spawn")))

    def load(self) -> dict[int, Any]:
        """Completed shard results recorded under this run's key.

        Later records win on duplicate shard indices (an interrupted
        retry may journal a shard twice; both payloads are bit-identical
        by the purity argument, so either is correct).  Torn or
        undecodable lines are skipped and counted in
        :attr:`skipped_lines`; records keyed to other runs are invisible
        (and not counted — sharing one file across runs is normal).
        """
        results: dict[int, Any] = {}
        self.skipped_lines = 0
        if not self.path.exists():
            return results
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:  # torn tail from a crash mid-append
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict) or record.get("key") != self.key:
                    continue
                try:
                    value = pickle.loads(base64.b64decode(record["data"]))
                    index = int(record["shard"])
                except Exception:  # undecodable payload: re-execute that shard
                    self.skipped_lines += 1
                    continue
                results[index] = value
        return results

    def record(self, shard: int, result: Any) -> None:
        """Append one completed shard's result (flushed immediately)."""
        payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        line = json.dumps({"key": self.key, "shard": int(shard), "data": payload})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardCheckpoint(path={str(self.path)!r}, key={self.key!r})"
