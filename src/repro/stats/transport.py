"""Zero-copy shard result transport over ``multiprocessing.shared_memory``.

The pooled engine's historical result channel pickles each shard's result
object through the ``ProcessPoolExecutor`` pipe — cheap for a
``BernoulliResult`` (two ints), but a measurable per-shard tax for
categorical PMFs and a real one for window-measurement shards, whose
duration arrays scale with the trial budget.  This module supplies the
fast path: the parent preallocates one shared-memory **table** with a
fixed-width ``int64`` row per shard, workers execute the unchanged shard
kernel and *pack* its result into their row in place, and only a tiny
:class:`Packed` marker rides back through the pickle pipe.  The parent
unpacks rows in shard order, so the merge consumes exactly the result
objects it always did — **bit-identical** to the pickle transport by
construction, because the kernel, its random draws, and the merge are
untouched; only the bytes' route home changes.

Three row layouts cover the engine's three shard result kinds:

* :class:`BernoulliLayout` — ``[successes, trials]``;
* :class:`CategoricalLayout` — ``[trials, pairs, cat_0, count_0, ...]``
  with a fixed category capacity;
* :class:`WindowLayout` — ``[overlap, manifest, manifest_wo, count,
  durations...]`` sized for the largest shard.

A result that does not fit its row (e.g. a categorical shard observing
more distinct categories than the layout's capacity) is returned through
the normal pickle channel instead — packing is an optimisation with an
**automatic per-shard fallback**, never a constraint on what kernels may
produce.  The same holds for the transport as a whole:
``run_sharded(transport="auto")`` uses shared memory only when a layout
is supplied and a pool is actually in play, and ``transport="pickle"``
forces the historical channel (see :mod:`repro.stats.parallel`).

Layouts carry the *constant* result metadata (confidence level, thread
count) themselves, so rows hold only per-shard variables; the
transported row therefore measures the true per-shard payload, which the
scaling bench tracks as ``shard_payload_bytes`` against the pickled
result size.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

__all__ = [
    "TRANSPORTS",
    "resolve_transport",
    "BernoulliLayout",
    "CategoricalLayout",
    "WindowLayout",
    "Packed",
    "ShardTable",
    "ShardWriter",
    "pickled_payload_bytes",
]

#: The recognised result-transport channels of ``run_sharded``.
TRANSPORTS = ("auto", "pickle", "shm")


def resolve_transport(transport: str) -> str:
    """Validate a transport name; returns it unchanged.

    >>> resolve_transport("auto")
    'auto'
    """
    if transport not in TRANSPORTS:
        known = ", ".join(TRANSPORTS)
        raise ValueError(
            f"unknown transport {transport!r}; known transports: {known}"
        )
    return transport


def pickled_payload_bytes(result: Any) -> int:
    """Bytes the pickle channel ships for one shard result (bench metric)."""
    return len(pickle.dumps(result))


@dataclass(frozen=True)
class BernoulliLayout:
    """Row layout for ``BernoulliResult`` shards: ``[successes, trials]``."""

    confidence: float

    kind = "bernoulli"

    def row_width(self, max_shard_trials: int) -> int:
        return 2

    def pack(self, result: Any, row: np.ndarray) -> bool:
        row[0] = result.successes
        row[1] = result.trials
        return True

    def unpack(self, row: np.ndarray) -> Any:
        from .montecarlo import BernoulliResult

        return BernoulliResult(int(row[0]), int(row[1]), self.confidence, None)


@dataclass(frozen=True)
class CategoricalLayout:
    """Row layout for ``CategoricalResult`` shards.

    ``[trials, pairs, category_0, count_0, ..., category_{p-1},
    count_{p-1}]`` — ``capacity`` bounds the number of distinct
    categories a row can hold (the engine's categorical supports are
    small integer outcomes: final counter values, window growths).  A
    shard observing more falls back to pickle transport on its own.
    """

    confidence: float
    capacity: int = 64

    kind = "categorical"

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def row_width(self, max_shard_trials: int) -> int:
        return 2 + 2 * self.capacity

    def pack(self, result: Any, row: np.ndarray) -> bool:
        counts = result.counts
        if len(counts) > self.capacity:
            return False
        row[0] = result.trials
        row[1] = len(counts)
        offset = 2
        for category in sorted(counts):
            row[offset] = category
            row[offset + 1] = counts[category]
            offset += 2
        return True

    def unpack(self, row: np.ndarray) -> Any:
        from .montecarlo import CategoricalResult

        pairs = int(row[1])
        counts = {int(row[2 + 2 * index]): int(row[3 + 2 * index])
                  for index in range(pairs)}
        return CategoricalResult(counts, int(row[0]), self.confidence, None)


@dataclass(frozen=True)
class WindowLayout:
    """Row layout for window-measurement shards (``_WindowShard``).

    ``[overlap_trials, manifest_trials, manifest_without_overlap,
    durations_count, durations...]`` — each shard contributes one window
    duration per (trial, thread), so rows are sized
    ``4 + max_shard_trials * threads``.
    """

    threads: int

    kind = "window"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be positive, got {self.threads}")

    def row_width(self, max_shard_trials: int) -> int:
        return 4 + max_shard_trials * self.threads

    def pack(self, result: Any, row: np.ndarray) -> bool:
        durations = result.durations
        if 4 + durations.size > row.size:
            return False
        row[0] = result.overlap_trials
        row[1] = result.manifest_trials
        row[2] = result.manifest_without_overlap
        row[3] = durations.size
        row[4:4 + durations.size] = durations
        return True

    def unpack(self, row: np.ndarray) -> Any:
        from repro.sim.measurement import _WindowShard

        count = int(row[3])
        return _WindowShard(
            durations=np.array(row[4:4 + count], dtype=np.int64),
            overlap_trials=int(row[0]),
            manifest_trials=int(row[1]),
            manifest_without_overlap=int(row[2]),
        )


@dataclass(frozen=True)
class Packed:
    """Marker a :class:`ShardWriter` returns instead of a packed result.

    ``row`` is the table row the real result was written to; the parent
    swaps the marker for ``layout.unpack(table.row(row))``.  Riding the
    existing result channel (rather than a side signal) keeps retry,
    checkpoint, and observability semantics untouched: a marker only
    exists for a shard whose row is fully written.
    """

    row: int


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without enrolling it for cleanup.

    Only the creating parent owns the segment's lifetime.  Python 3.13+
    exposes ``track=False`` to keep an attachment out of the resource
    tracker; earlier interpreters register attachments too (bpo-38119),
    but pool workers share the parent's tracker process, so the re-
    registration is a set no-op and the parent's ``unlink`` (which
    unregisters) remains the single balancing removal — unregistering
    here by hand would leave the tracker's ledger short and make that
    final unlink raise inside the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg; see docstring
        return shared_memory.SharedMemory(name=name)


class ShardTable:
    """A parent-owned shared-memory table: one ``int64`` row per shard.

    The parent creates it before fan-out and must :meth:`close` it (which
    also unlinks the segment) when the run finishes — ``run_sharded``
    does so in a ``finally``.  Rows are read through :meth:`row`, a
    zero-copy view; callers that keep unpacked results past ``close``
    copy out (the layouts' ``unpack`` methods already do).
    """

    def __init__(self, rows: int, width: int):
        if rows < 1 or width < 1:
            raise ValueError(f"table needs positive rows/width, got {rows}x{width}")
        self.rows = rows
        self.width = width
        self._segment = shared_memory.SharedMemory(
            create=True, size=rows * width * np.dtype(np.int64).itemsize
        )
        self._table = np.ndarray((rows, width), dtype=np.int64,
                                 buffer=self._segment.buf)
        self._table.fill(0)
        self.name = self._segment.name

    def row(self, index: int) -> np.ndarray:
        return self._table[index]

    def close(self) -> None:
        """Release the mapping and remove the segment (idempotent)."""
        if self._segment is None:
            return
        self._table = None
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._segment = None

    def __enter__(self) -> "ShardTable":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ShardWriter:
    """The picklable worker-side wrapper of the shared-memory transport.

    Runs the *unchanged* shard kernel, then packs its result into this
    task's table row and returns a :class:`Packed` marker — or the result
    itself when the layout cannot hold it (the automatic pickle
    fallback).  The wrapper deliberately wraps only the result's route
    home: the kernel sees exactly the ``(source, count)`` call it sees
    under pickle transport, so the transports are bit-identical for any
    fixed ``(seed, shards)``.
    """

    def __init__(self, kernel: Callable[..., Any], layout: Any, name: str,
                 width: int):
        self.kernel = kernel
        self.layout = layout
        self.name = name
        self.width = width

    def __call__(self, source: Any, count: int, row: int) -> Any:
        result = self.kernel(source, count)
        segment = _attach(self.name)
        try:
            view = np.ndarray((self.width,), dtype=np.int64,
                              buffer=segment.buf,
                              offset=row * self.width * np.dtype(np.int64).itemsize)
            packed = self.layout.pack(result, view)
            del view  # the buffer must be unreferenced before close()
        finally:
            segment.close()
        return Packed(row) if packed else result
