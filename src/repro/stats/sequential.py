"""Sequential Monte-Carlo estimation to a target precision.

The fixed-trial harness of :mod:`repro.stats.montecarlo` is right when the
budget is known; exploratory work usually wants the dual: *"estimate this
probability to ±0.001 and stop"*.  :func:`estimate_to_precision` runs
batches until the Wilson interval's half-width reaches the target (or a
trial cap), growing the batch size geometrically so the overhead of the
early, uninformative batches stays negligible.

The stopping rule peeks at the interval repeatedly, which inflates the
nominal miss rate by a modest factor (law-of-the-iterated-logarithm
territory); for the library's use — sizing experiments, not hypothesis
testing — this is the standard, documented trade-off.
"""

from __future__ import annotations

from collections.abc import Callable

from .intervals import wilson_interval
from .montecarlo import BernoulliResult
from .rng import RandomSource

__all__ = ["estimate_to_precision"]


def estimate_to_precision(
    batch_trial: Callable[[RandomSource, int], int],
    half_width: float,
    seed: int | None = 0,
    confidence: float = 0.99,
    initial_batch: int = 1024,
    growth: float = 2.0,
    max_trials: int = 50_000_000,
) -> BernoulliResult:
    """Run batches of ``batch_trial`` until the interval is tight enough.

    Parameters
    ----------
    batch_trial:
        ``(source, size) -> successes`` — the same vectorised contract as
        :func:`repro.stats.montecarlo.estimate_event`.
    half_width:
        Target half-width of the Wilson interval.
    initial_batch, growth:
        First batch size and the geometric growth factor between batches.
    max_trials:
        Hard cap; the result is returned (with its wider interval) when
        reached.

    >>> from repro.stats import RandomSource
    >>> result = estimate_to_precision(
    ...     lambda source, size: int(source.bernoulli_array(0.5, size).sum()),
    ...     half_width=0.02,
    ... )
    >>> result.proportion.half_width <= 0.02
    True
    """
    if half_width <= 0.0:
        raise ValueError(f"half_width must be positive, got {half_width}")
    if initial_batch < 1:
        raise ValueError(f"initial_batch must be >= 1, got {initial_batch}")
    if growth < 1.0:
        raise ValueError(f"growth must be >= 1, got {growth}")

    root = RandomSource(seed)
    successes = 0
    trials = 0
    batch = initial_batch
    while True:
        step = min(batch, max_trials - trials)
        if step <= 0:
            break
        successes += int(batch_trial(root.child(), step))
        trials += step
        interval = wilson_interval(successes, trials, confidence)
        if interval.half_width <= half_width:
            break
        batch = int(batch * growth)
    return BernoulliResult(successes, trials, confidence, seed)
