"""Sharded parallel execution of Monte-Carlo trial budgets.

Every empirical estimate in the library is a sum over independent trials,
which makes the work embarrassingly parallel — *if* the randomness is
partitioned with care.  This module supplies that partitioning plus the
process fan-out, under one discipline:

* **Seed-disciplined sharding** — a trial budget is split into ``shards``
  near-equal shards, and shard ``i`` draws from the ``i``-th child stream
  of the experiment's root :class:`~repro.stats.rng.RandomSource` (one
  ``SeedSequence.spawn`` of the root, indexed by shard).  Each shard is
  therefore a deterministic function of ``(seed, shards)`` alone.
* **Worker-count independence** — workers only decide *where* shards run,
  never *what* they compute, and per-shard results are merged in shard
  order.  A run with fixed ``(seed, shards)`` is bit-identical for any
  number of workers and any scheduling of shards onto them.
* **Zero-overhead serial fallback** — ``workers=1`` short-circuits to a
  plain loop with no executor, no pickling, no queues; a trial function
  that cannot be pickled (a lambda, a closure) silently degrades to the
  same serial loop instead of crashing mid-experiment.

The consuming layers (:mod:`repro.stats.montecarlo`,
:mod:`repro.sim.executor`, :mod:`repro.sim.measurement`,
:mod:`repro.analysis.sweeps`) build their ``workers=``/``shards=`` paths
on :func:`run_sharded` and :func:`parallel_map`; ``repro.parallel`` is the
user-facing facade.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, TypeVar

from .rng import RandomSource

__all__ = [
    "ShardPlan",
    "plan_shards",
    "resolve_workers",
    "run_sharded",
    "parallel_map",
    "is_picklable",
]

T = TypeVar("T")
U = TypeVar("U")


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument: ``None`` means one per CPU."""
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return workers


def plan_shards(trials: int, shards: int) -> tuple[int, ...]:
    """Split ``trials`` into ``shards`` near-equal positive-or-zero parts.

    The split is balanced (sizes differ by at most one, larger shards
    first) and exact: the parts always sum to ``trials``.  More shards
    than trials leaves trailing empty shards rather than failing, so a
    shard count chosen for one budget remains valid for smaller ones.

    >>> plan_shards(10, 4)
    (3, 3, 2, 2)
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(trials, shards)
    return tuple(base + (1 if index < extra else 0) for index in range(shards))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one trial budget into seeded shards.

    The plan is the *statistical identity* of a sharded run: two runs with
    equal ``(trials, shards, seed)`` draw identical randomness shard by
    shard, no matter how many worker processes execute them.
    """

    trials: int
    shards: int
    seed: int | None

    def __post_init__(self) -> None:
        plan_shards(self.trials, self.shards)  # validate eagerly

    def shard_trials(self) -> tuple[int, ...]:
        """Per-shard trial counts (balanced, summing to ``trials``)."""
        return plan_shards(self.trials, self.shards)

    def shard_sources(self) -> list[RandomSource]:
        """One independent child stream per shard, in shard order.

        All shards spawn from the root in a single ``spawn`` call, so the
        stream of shard ``i`` depends only on ``(seed, shards, i)`` — never
        on which shards ran before it or on which process runs it.
        """
        return RandomSource(self.seed).spawn(self.shards)


def is_picklable(value: Any) -> bool:
    """Whether ``value`` survives :mod:`pickle` (process-pool transport)."""
    try:
        pickle.dumps(value)
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False
    return True


def run_sharded(
    kernel: Callable[[RandomSource, int], T],
    plan: ShardPlan,
    workers: int | None = 1,
) -> list[T]:
    """Run ``kernel(shard_source, shard_trials)`` once per shard.

    Returns the per-shard results **in shard order** regardless of
    completion order, so any merge of the returned list is deterministic.
    ``workers=1`` (the default), a single-shard plan, and kernels that
    cannot be pickled all take the serial path — same results, no pool.
    ``workers=None`` uses one worker per CPU.
    """
    workers = resolve_workers(workers)
    counts = plan.shard_trials()
    sources = plan.shard_sources()
    active = sum(1 for count in counts if count > 0)
    if workers == 1 or active <= 1 or not is_picklable(kernel):
        return [kernel(source, count) for source, count in zip(sources, counts)]
    with ProcessPoolExecutor(max_workers=min(workers, active)) as pool:
        futures = [
            pool.submit(kernel, source, count)
            for source, count in zip(sources, counts)
        ]
        return [future.result() for future in futures]


def parallel_map(
    function: Callable[[U], T],
    items: Iterable[U] | Sequence[U],
    workers: int | None = 1,
) -> list[T]:
    """Map ``function`` over ``items``, preserving input order.

    The grid-point analogue of :func:`run_sharded`: parameter sweeps fan
    their (independent, deterministic) point evaluations onto the same
    process pool.  Serial fallback rules match ``run_sharded`` — one
    worker, one item, or an unpicklable function/item runs inline.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if (
        workers == 1
        or len(items) <= 1
        or not is_picklable(function)
        or not all(is_picklable(item) for item in items)
    ):
        return [function(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(function, items))
