"""Sharded parallel execution of Monte-Carlo trial budgets.

Every empirical estimate in the library is a sum over independent trials,
which makes the work embarrassingly parallel — *if* the randomness is
partitioned with care.  This module supplies that partitioning plus the
process fan-out, under one discipline:

* **Seed-disciplined sharding** — a trial budget is split into ``shards``
  near-equal shards, and shard ``i`` draws from the ``i``-th child stream
  of the experiment's root :class:`~repro.stats.rng.RandomSource` (one
  ``SeedSequence.spawn`` of the root, indexed by shard).  Each shard is
  therefore a deterministic function of ``(seed, shards)`` alone.
* **Worker-count independence** — workers only decide *where* shards run,
  never *what* they compute, and per-shard results are merged in shard
  order.  A run with fixed ``(seed, shards)`` is bit-identical for any
  number of workers and any scheduling of shards onto them.
* **Zero-overhead serial fallback** — ``workers=1`` short-circuits to a
  plain loop with no executor, no pickling, no queues; a trial function
  that cannot be pickled (a lambda, a closure) silently degrades to the
  same serial loop instead of crashing mid-experiment.
* **Worker-independent defaults** — when parallelism is requested but no
  shard count is given, the plan uses the fixed :data:`DEFAULT_SHARDS`,
  **never** the worker count or the host CPU count: default-sharded
  results are identical across ``workers ∈ {2, 4, None}`` and across
  machines (:func:`resolve_shards`).
* **Fault tolerance and resumability** — shard execution routes through
  :mod:`repro.stats.faults` (bounded retry, per-shard timeouts,
  ``BrokenProcessPool`` recovery) and can journal completed shards to a
  :class:`repro.stats.checkpoint.ShardCheckpoint`; both are sound
  because each shard is a pure function of ``(seed, shards, i)``.
* **Read-only observability** — an optional
  :class:`repro.obs.RunObserver` receives per-shard wall times, retry
  and timeout events, and pool recycles over the existing result
  channel; enabling it cannot perturb the seeding discipline or any
  merged number (see ``docs/OBSERVABILITY.md``).

The consuming layers (:mod:`repro.stats.montecarlo`,
:mod:`repro.sim.executor`, :mod:`repro.sim.measurement`,
:mod:`repro.analysis.sweeps`) build their ``workers=``/``shards=`` paths
on :func:`run_sharded` and :func:`parallel_map`; ``repro.parallel`` is the
user-facing facade.
"""

from __future__ import annotations

import os
import pickle
import sys
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TypeVar

import numpy as np

from repro.obs import RunObserver, ShardEvent

from ..runconfig import UNSET, RunConfig, resolve_run_config
from .checkpoint import ShardCheckpoint, kernel_fingerprint, plan_key
from .faults import RetryPolicy, execute_tasks
from .rng import PhiloxSource, RandomSource, resolve_rng_plan
from .transport import Packed, ShardTable, ShardWriter

__all__ = [
    "DEFAULT_SHARDS",
    "ShardPlan",
    "plan_shards",
    "resolve_shards",
    "resolve_workers",
    "run_sharded",
    "parallel_map",
    "is_picklable",
]

#: Shard count used whenever parallelism is requested and ``shards`` is
#: unset.  A fixed constant — never the worker count, never the CPU count —
#: so default-sharded numbers are reproducible across worker counts and
#: machines.  Large enough to load-balance the worker counts in practical
#: use, small enough that per-shard overhead stays negligible.
DEFAULT_SHARDS = 16

T = TypeVar("T")
U = TypeVar("U")


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument: ``None`` means one per CPU."""
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return workers


def resolve_shards(workers: int | None, shards: int | None) -> int:
    """Default a ``shards`` argument without consulting the worker count.

    The shard count is the *statistical identity* of a run, so it must
    never be derived from anything machine- or schedule-dependent:
    ``shards=None`` maps to :data:`DEFAULT_SHARDS` whenever parallelism is
    requested (``workers=None`` or ``workers > 1`` — even on a single-CPU
    host) and to a single shard for the serial ``workers=1`` case.  Note
    ``workers`` is inspected *raw*: ``workers=None`` means "use every
    CPU", which must select the same shard count on every machine.
    """
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        return shards
    if workers == 1:
        return 1
    return DEFAULT_SHARDS


def plan_shards(trials: int, shards: int) -> tuple[int, ...]:
    """Split ``trials`` into ``shards`` near-equal positive-or-zero parts.

    The split is balanced (sizes differ by at most one, larger shards
    first) and exact: the parts always sum to ``trials``.  More shards
    than trials leaves trailing empty shards rather than failing, so a
    shard count chosen for one budget remains valid for smaller ones.

    >>> plan_shards(10, 4)
    (3, 3, 2, 2)
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(trials, shards)
    return tuple(base + (1 if index < extra else 0) for index in range(shards))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one trial budget into seeded shards.

    The plan is the *statistical identity* of a sharded run: two runs with
    equal ``(trials, shards, seed, rng_plan)`` draw identical randomness
    shard by shard, no matter how many worker processes execute them.

    ``rng_plan`` selects how shard streams derive from the seed (see
    :mod:`repro.stats.rng`).  The default ``"spawn"`` pre-spawns one
    ``SeedSequence`` child per shard — the discipline every published
    number was produced under.  ``"philox"`` addresses shard ``i``'s
    stream directly as the counter ``(seed, i)`` of a counter-based
    Philox generator: no spawning, no per-shard RNG state shipped to
    workers, and any batch's stream is derivable after the fact from its
    indices alone.  The two plans sample the same laws from different
    streams, so their fixed-seed numbers differ — checkpoint and cache
    keys fold the plan in (:func:`repro.stats.checkpoint.plan_key`) and
    the engine never silently mixes them.  A Philox plan requires a
    concrete seed; ``seed=None`` is resolved to fresh OS entropy at plan
    construction (once, so all shards share it).
    """

    trials: int
    shards: int
    seed: int | None
    rng_plan: str = "spawn"

    def __post_init__(self) -> None:
        plan_shards(self.trials, self.shards)  # validate eagerly
        resolve_rng_plan(self.rng_plan)
        if self.rng_plan == "philox" and self.seed is None:
            object.__setattr__(self, "seed",
                               int(np.random.SeedSequence().entropy))

    def shard_trials(self) -> tuple[int, ...]:
        """Per-shard trial counts (balanced, summing to ``trials``)."""
        return plan_shards(self.trials, self.shards)

    def shard_sources(self) -> list[RandomSource]:
        """One independent child stream per shard, in shard order.

        Under the spawn plan, all shards spawn from the root in a single
        ``spawn`` call; under the Philox plan, shard ``i`` is the
        counter address ``(seed, i)``.  Either way the stream of shard
        ``i`` depends only on ``(seed, shards, i)`` and the plan — never
        on which shards ran before it or on which process runs it.
        """
        if self.rng_plan == "philox":
            return [PhiloxSource(self.seed, (index,))
                    for index in range(self.shards)]
        return RandomSource(self.seed).spawn(self.shards)


def is_picklable(value: Any) -> bool:
    """Whether ``value`` survives :mod:`pickle` (process-pool transport)."""
    try:
        pickle.dumps(value)
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False
    return True


#: Fingerprint-keyed memo of :func:`is_picklable` verdicts.  A sweep calls
#: ``run_sharded`` once per grid point with a freshly-bound partial of the
#: same kernel; the fingerprint captures exactly the bound computation, so
#: equal fingerprints pickle identically and the ``pickle.dumps`` probe
#: runs once per distinct kernel instead of once per call.
_PICKLABLE_MEMO: dict[str, bool] = {}


def _kernel_picklable(kernel: Any, fingerprint: str | None) -> bool:
    """Memoized picklability probe (falls back to a direct probe unkeyed)."""
    if fingerprint is None:
        return is_picklable(kernel)
    verdict = _PICKLABLE_MEMO.get(fingerprint)
    if verdict is None:
        verdict = _PICKLABLE_MEMO[fingerprint] = is_picklable(kernel)
    return verdict


def run_sharded(
    kernel: Callable[[RandomSource, int], T],
    plan: ShardPlan,
    workers: int | None = UNSET,
    *,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    checkpoint_label: str = "",
    fingerprint: str | None = UNSET,
    cache: Any = UNSET,
    fault_injector: Callable[[int, int], None] | None = None,
    observer: RunObserver | None = None,
    transport: str = UNSET,
    layout: Any = None,
    config: RunConfig | None = None,
) -> list[T]:
    """Run ``kernel(shard_source, shard_trials)`` once per non-empty shard.

    Returns the per-shard results **in shard order** regardless of
    completion order, so any merge of the returned list is deterministic.
    Shards the plan left empty (``shards > trials``) are skipped outright
    — no kernel call, no pool transport — so the returned list holds one
    result per *non-empty* shard.  ``workers=1`` (the default), at most
    one outstanding shard, and kernels that cannot be pickled all take
    the serial path — same results, no pool.  ``workers=None`` uses one
    worker per CPU.

    Fault tolerance (:mod:`repro.stats.faults`): ``retries`` extra
    attempts per shard with exponential backoff, ``timeout`` seconds per
    pooled shard attempt, and automatic ``BrokenProcessPool`` recovery
    re-executing only the lost shards.  ``checkpoint`` (a path, or a
    pre-keyed :class:`~repro.stats.checkpoint.ShardCheckpoint`) journals
    each completed shard; a resumed run loads the finished shards and
    executes only the remainder — bit-identical to an uninterrupted run.
    ``checkpoint_label`` salts the checkpoint key (callers encode their
    experiment parameters; ignored when ``checkpoint`` is pre-keyed).
    ``fingerprint`` is the kernel fingerprint folded into the v2 key;
    left ``None``, it is derived from ``kernel`` via
    :func:`~repro.stats.checkpoint.kernel_fingerprint` whenever a
    checkpoint, cache, or observer needs a key — so two different
    kernels can never reuse each other's journaled or cached shards.
    ``fault_injector`` is the deterministic kill hook used by tests
    (see :class:`~repro.stats.faults.ScriptedFaults`).

    ``cache`` (``"auto"``, a directory, or a
    :class:`repro.cache.ShardStore`; see ``docs/CACHING.md``) consults
    the content-addressed shard store before executing: shards whose
    entry key — the run's v2 key plus the shard index and trial count —
    is already stored are fetched instead of recomputed, and newly
    executed shards are stored for future runs.  Because the entry key
    encodes the full computational identity, cached merges are
    bit-identical to uncached ones.

    ``observer`` (a :class:`repro.obs.RunObserver`) receives the run's
    telemetry: a ``run_started`` description of the plan, one
    ``shard_resumed``/``shard_finished`` per shard (with in-worker wall
    time and pid), every failed attempt, and every pool recycle.
    Observation rides the existing result channel and cannot change any
    number; ``observer=None`` (the default) leaves the hot path
    untouched.

    ``transport``/``layout`` select the shard result channel (see
    :mod:`repro.stats.transport`).  With a ``layout`` describing the
    result's fixed row shape, ``transport="shm"`` (or ``"auto"``, the
    default, whenever a pool is actually in play) has workers write
    packed results into a preallocated shared-memory table — one row per
    shard, zero pickling of result objects — and the parent unpack rows
    in shard order; results that overflow their row fall back to pickle
    per shard automatically.  ``transport="pickle"`` forces the
    historical channel.  The transport is a scheduling concern like
    ``workers``: it is absent from every checkpoint/cache key and the
    merged numbers are bit-identical across transports.

    ``config`` (a :class:`repro.runconfig.RunConfig`) supplies every one
    of the knobs above in a single validated record; the per-knob
    keywords are deprecated aliases that override the matching config
    field when passed explicitly.  The plan — not the config — is the
    run's statistical identity, so ``config.shards``/``config.rng_plan``
    are ignored here (they matter to the callers that *build* the plan).
    When the config carries observability knobs and no ``observer`` was
    passed, the implied observer is created — and finished — in-house.
    """
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout, checkpoint=checkpoint,
                             fingerprint=fingerprint, cache=cache,
                             transport=transport).resolve()
    owned_observer = False
    if observer is None and config is not None:
        observer = cfg.observer(checkpoint_label)
        owned_observer = observer is not None
    if owned_observer and observer.tracer is not None:
        # Estimators open the run/shards spans themselves; a bare
        # run_sharded(config=...) call owns its observer, so the whole
        # call is the "run" span (closed by finish() below).
        observer.tracer.start_span("run")
    retries, timeout, transport = cfg.retries, cfg.timeout, cfg.transport
    checkpoint, fingerprint, cache = cfg.checkpoint, cfg.fingerprint, cfg.cache
    workers = resolve_workers(cfg.workers)
    if transport == "shm" and layout is None:
        raise ValueError("transport='shm' requires a result layout")
    counts = plan.shard_trials()
    sources = plan.shard_sources()
    active = [index for index, count in enumerate(counts) if count > 0]

    store = None
    if cache is not None and cache is not False:
        from repro.cache import resolve_cache
        store = resolve_cache(cache)

    # The fingerprint keys checkpoints, cache entries, *and* the
    # picklability memo, so it is also derived whenever a pool is
    # plausible (workers and more than one shard requested).
    if fingerprint is None and (checkpoint is not None or store is not None
                                or observer is not None
                                or (workers > 1 and len(active) > 1)):
        fingerprint = kernel_fingerprint(kernel)

    journal: ShardCheckpoint | None = None
    journal_skipped = 0
    completed: dict[int, T] = {}
    if checkpoint is not None:
        journal = (checkpoint if isinstance(checkpoint, ShardCheckpoint)
                   else ShardCheckpoint.for_plan(checkpoint, plan,
                                                 label=checkpoint_label,
                                                 fingerprint=fingerprint or ""))
        stored = journal.load()
        journal_skipped = journal.skipped_lines
        if journal_skipped:
            print(f"[repro] warning: skipped {journal_skipped} torn/undecodable "
                  f"line(s) in checkpoint journal {journal.path}; the affected "
                  "shards will re-execute", file=sys.stderr)
        completed = {local: stored[shard]
                     for local, shard in enumerate(active) if shard in stored}
    resumed_locals = set(completed)

    run_key = (journal.key if journal is not None
               else plan_key(plan.trials, plan.shards, plan.seed,
                             checkpoint_label, fingerprint or "",
                             plan.rng_plan))

    cached_locals: set[int] = set()
    cache_misses: dict[int, str] = {}  # local index -> store entry key
    cache_stored = 0
    cache_evicted = 0
    if store is not None:
        from repro.cache import shard_entry_key
        miss = object()
        for local, shard in enumerate(active):
            if local in completed:
                continue
            entry_key = shard_entry_key(run_key, shard, counts[shard])
            value = store.get(entry_key, miss)
            if value is miss:
                cache_misses[local] = entry_key
            else:
                completed[local] = value
                cached_locals.add(local)
        if journal is not None:
            # Keep the journal complete: cache-fetched shards are as
            # final as executed ones, and a later journal-only resume
            # should not have to recompute them.
            for local in sorted(cached_locals):
                journal.record(active[local], completed[local])

    on_result = None
    if journal is not None or cache_misses:
        def on_result(local: int, result: T) -> None:
            nonlocal cache_stored, cache_evicted
            if journal is not None:
                journal.record(active[local], result)
            entry_key = cache_misses.get(local)
            if entry_key is not None:
                cache_evicted += store.put(entry_key, result)
                cache_stored += 1

    outstanding = len(active) - len(completed)
    serial = (
        workers == 1
        or outstanding <= 1
        or not _kernel_picklable(kernel, fingerprint)
        or (fault_injector is not None and not is_picklable(fault_injector))
    )

    # Shared-memory transport: one preallocated int64 row per active
    # shard; workers pack results in place and return a tiny marker.
    # "auto" engages it only when a layout exists and a pool will
    # actually carry results; forcing "shm" exercises the same packing
    # on the serial path (the parent attaches to its own table).
    use_shm = transport == "shm" or (transport == "auto"
                                     and layout is not None and not serial)
    table: ShardTable | None = None
    runner: Callable[..., Any] = kernel
    tasks: list[tuple] = [(sources[index], counts[index]) for index in active]
    if use_shm:
        width = layout.row_width(max(counts[index] for index in active))
        table = ShardTable(len(active), width)
        runner = ShardWriter(kernel, layout, table.name, width)
        tasks = [(sources[index], counts[index], local)
                 for local, index in enumerate(active)]
        if on_result is not None:
            journal_or_cache = on_result

            def on_result(local: int, result: Any,
                          _inner=journal_or_cache) -> None:
                # Journals and caches must see real result objects, not
                # transport markers; rows are fully written before the
                # marker exists, so unpacking here is race-free.
                if isinstance(result, Packed):
                    result = layout.unpack(table.row(result.row))
                _inner(local, result)

    on_event = None
    if observer is not None:
        observer.run_started(
            trials=plan.trials,
            shards=plan.shards,
            seed=plan.seed,
            workers=workers,
            active_shards=len(active),
            label=checkpoint_label or None,
            key=run_key,
            retries=retries,
            timeout=timeout,
            checkpoint=str(journal.path) if journal is not None else None,
        )
        if journal_skipped:
            observer.journal_skipped(journal_skipped)
        for local, shard in enumerate(active):
            if local in cached_locals:
                observer.shard_cached(shard, counts[shard])
            elif local in resumed_locals:
                observer.shard_resumed(shard, counts[shard])

        def on_event(name: str, payload: dict,
                     _observer: RunObserver = observer) -> None:
            # execute_tasks speaks local task indices; translate to the
            # global shard numbering of the plan.
            if name == "task_finished":
                _observer.shard_finished(ShardEvent(
                    shard=active[payload["index"]],
                    trials=counts[active[payload["index"]]],
                    seconds=payload["seconds"],
                    attempts=payload["attempts"],
                    worker=payload["worker"],
                ))
            elif name == "task_failed":
                _observer.task_failed(active[payload["index"]],
                                      payload["attempt"], payload["kind"],
                                      payload["error"])
            elif name == "pool_recycled":
                _observer.pool_recycled()

    try:
        results = execute_tasks(
            runner,
            tasks,
            workers=workers,
            policy=RetryPolicy(retries=retries, timeout=timeout),
            serial=serial,
            fault_injector=fault_injector,
            on_result=on_result,
            completed=completed,
            on_event=on_event,
        )
        if use_shm:
            results = [layout.unpack(table.row(result.row))
                       if isinstance(result, Packed) else result
                       for result in results]
    finally:
        if table is not None:
            table.close()
    if observer is not None and store is not None:
        observer.cache_summary(hits=len(cached_locals),
                               misses=len(cache_misses),
                               stored=cache_stored,
                               evictions=cache_evicted)
    if owned_observer:
        observer.finish()
    return results


def parallel_map(
    function: Callable[[U], T],
    items: Iterable[U] | Sequence[U],
    workers: int | None = UNSET,
    *,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    observer: RunObserver | None = None,
    config: RunConfig | None = None,
) -> list[T]:
    """Map ``function`` over ``items``, preserving input order.

    The grid-point analogue of :func:`run_sharded`: parameter sweeps fan
    their (independent, deterministic) point evaluations onto the same
    process pool, with the same per-task retry/timeout machinery
    (``retries`` extra attempts, ``timeout`` seconds per pooled attempt,
    ``BrokenProcessPool`` recovery).  Serial fallback rules match
    ``run_sharded`` — one worker, one item, or an unpicklable
    function/item runs inline.  ``observer`` receives per-item telemetry
    exactly as :func:`run_sharded` does per shard (each item counts as
    one "trial" of the observed run).  ``config`` follows
    :func:`run_sharded`: one validated record for
    ``workers``/``retries``/``timeout``, with the per-knob keywords as
    deprecated aliases that win when passed explicitly, and an implied
    observer created (and finished) in-house when the config carries
    observability knobs and none was passed.
    """
    cfg = resolve_run_config(config, workers=workers, retries=retries,
                             timeout=timeout).resolve()
    owned_observer = False
    if observer is None and config is not None:
        observer = cfg.observer()
        owned_observer = observer is not None
    if owned_observer and observer.tracer is not None:
        # As in run_sharded: the whole owned call is the "run" span,
        # closed by finish() in the finally below.
        observer.tracer.start_span("run")
    retries, timeout = cfg.retries, cfg.timeout
    items = list(items)
    workers = resolve_workers(cfg.workers)
    serial = (
        workers == 1
        or len(items) <= 1
        or not is_picklable(function)
        or not all(is_picklable(item) for item in items)
    )

    on_event = None
    if observer is not None and items:
        observer.run_started(trials=len(items), shards=len(items), seed=None,
                             workers=workers, retries=retries, timeout=timeout)

        def on_event(name: str, payload: dict,
                     _observer: RunObserver = observer) -> None:
            if name == "task_finished":
                _observer.shard_finished(ShardEvent(
                    shard=payload["index"],
                    trials=1,
                    seconds=payload["seconds"],
                    attempts=payload["attempts"],
                    worker=payload["worker"],
                ))
            elif name == "task_failed":
                _observer.task_failed(payload["index"], payload["attempt"],
                                      payload["kind"], payload["error"])
            elif name == "pool_recycled":
                _observer.pool_recycled()

    try:
        return execute_tasks(
            function,
            [(item,) for item in items],
            workers=workers,
            policy=RetryPolicy(retries=retries, timeout=timeout),
            serial=serial,
            on_event=on_event,
        )
    finally:
        if owned_observer:
            observer.finish()
