"""Bootstrap confidence intervals for non-binomial statistics.

The binomial machinery in :mod:`repro.stats.intervals` covers event
probabilities; machine-side measurements (mean critical-window duration,
cycle counts) need intervals for means of arbitrary empirical
distributions.  The percentile bootstrap is the standard non-parametric
tool; it is seeded and vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rng import RandomSource

__all__ = ["BootstrapInterval", "bootstrap_mean_interval"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A mean estimate with a percentile-bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    samples: int
    resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "BootstrapInterval") -> bool:
        """Whether two intervals intersect (a coarse difference test)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} [{self.low:.4f}, {self.high:.4f}] "
            f"({self.samples} samples @ {self.confidence:.0%})"
        )


def bootstrap_mean_interval(
    values: np.ndarray | list[float],
    confidence: float = 0.99,
    resamples: int = 2000,
    seed: int | None = 0,
) -> BootstrapInterval:
    """Percentile-bootstrap interval for the mean of ``values``.

    >>> interval = bootstrap_mean_interval([1.0, 2.0, 3.0, 2.0], seed=1)
    >>> interval.low <= 2.0 <= interval.high
    True
    """
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("values must be a non-empty 1-d collection")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    generator = RandomSource(seed).generator
    indices = generator.integers(0, data.size, size=(resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = 1.0 - confidence
    low, high = np.quantile(means, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(
        mean=float(data.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
        samples=int(data.size),
        resamples=resamples,
    )
