"""Fault-tolerant task execution for the sharded Monte-Carlo engine.

Long production-scale runs of the paper's estimators (Theorem 6.2/6.3
sweeps at large ``n``) fail for boring reasons — an OOM-killed worker, a
wedged process, a transient filesystem hiccup — and a failure thousands of
shards into a budget must not discard the completed work or, worse, change
the numbers.  This module supplies the recovery machinery, and it is safe
*only because of* the engine's seeding discipline: each shard is a pure
function of ``(seed, shards, i)``, so a retried shard is **bit-identical**
to the attempt it replaces, and a merged result is independent of how many
times any shard had to run.

Three mechanisms, composable and all off by default:

* **Bounded per-task retry** (:class:`RetryPolicy`) — a task that raises
  is re-executed up to ``retries`` extra attempts with exponential
  backoff; exhausting the budget raises :class:`ShardExecutionError`
  naming the task and chaining the last cause.
* **Per-task timeouts** — in pooled execution, a task that exceeds
  ``timeout`` seconds is charged a failed attempt and the pool is
  recycled (a running future cannot be cancelled, so the stuck worker is
  abandoned with its executor).  Timeouts are not enforceable on the
  in-process serial path and are ignored there.
* **``BrokenProcessPool`` recovery** — a worker dying (segfault,
  ``os._exit``, OOM kill) breaks the whole executor; the engine rebuilds
  the pool and re-executes *only the tasks whose results were lost*, each
  charged one failed attempt.

Determinism of the recovery path is testable through the **fault
injection hook**: :func:`execute_tasks` accepts a picklable callable
``injector(index, attempt)`` that runs in the worker before the real
task; :class:`ScriptedFaults` kills chosen tasks on chosen attempts,
either by raising (:class:`InjectedFault`) or by hard-exiting the worker
process (provoking ``BrokenProcessPool``).

:func:`repro.stats.parallel.run_sharded` and
:func:`~repro.stats.parallel.parallel_map` route through
:func:`execute_tasks`; checkpointing of completed shards lives in
:mod:`repro.stats.checkpoint` and plugs in via the ``completed`` /
``on_result`` parameters.

Failures are **never silent**: the engine emits structured events
(``task_failed`` with an ``error``/``timeout``/``pool`` kind,
``task_finished`` with attempt count and in-worker wall time,
``pool_recycled``) through the ``on_event`` hook, which
:mod:`repro.obs` turns into metrics, the live progress line, and the
run manifest's retry ledger.  With ``timed=True`` each task's wall time
and worker pid piggyback on the pool's own result transport
(:class:`TaskTelemetry`) — a process-safe telemetry channel with no
extra queues or shared state.  Both hooks default off, leaving the
un-observed path byte-for-byte as before.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, TypeVar

__all__ = [
    "RetryPolicy",
    "InjectedFault",
    "ShardExecutionError",
    "ScriptedFaults",
    "TaskTelemetry",
    "execute_tasks",
]

T = TypeVar("T")

#: Attempt-number ceiling guarding against pathological retry policies.
MAX_ATTEMPTS = 64


class InjectedFault(RuntimeError):
    """Deterministic failure raised by a test fault injector."""


class ShardExecutionError(RuntimeError):
    """A task failed on every attempt its :class:`RetryPolicy` allowed."""

    def __init__(self, index: int, attempts: int, cause: BaseException):
        self.index = index
        self.attempts = attempts
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): {cause!r}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a shard dead.

    ``retries`` is the number of *extra* attempts after the first (the
    default 0 preserves fail-fast behaviour); ``timeout`` bounds one
    pooled attempt in seconds (``None`` = unbounded); the backoff before
    re-running a task that has failed ``k`` times is
    ``min(backoff * backoff_factor**(k - 1), max_backoff)`` seconds.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.retries + 1 > MAX_ATTEMPTS:
            raise ValueError(f"retries must be at most {MAX_ATTEMPTS - 1}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 0 or self.backoff_factor < 1 or self.max_backoff < 0:
            raise ValueError("backoff parameters must be non-negative "
                             "with backoff_factor >= 1")

    def delay(self, failures: int) -> float:
        """Seconds to wait before re-running a task with ``failures`` failures."""
        if self.backoff <= 0 or failures < 1:
            return 0.0
        return min(self.backoff * self.backoff_factor ** (failures - 1),
                   self.max_backoff)


@dataclass(frozen=True)
class ScriptedFaults:
    """A deterministic, picklable fault injector for tests and benches.

    ``failures`` maps a task index to how many of its first attempts must
    die; attempts are numbered from 0, so ``{2: 1}`` kills task 2 exactly
    once and lets its retry through.  ``kind="raise"`` raises
    :class:`InjectedFault` inside the task (exercising the retry path);
    ``kind="exit"`` hard-exits the worker process (exercising
    ``BrokenProcessPool`` recovery — never use it on the serial path, it
    would kill the calling process).
    """

    failures: dict[int, int] = field(default_factory=dict)
    kind: str = "raise"

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "exit"):
            raise ValueError(f"kind must be 'raise' or 'exit', got {self.kind!r}")

    def __call__(self, index: int, attempt: int) -> None:
        if attempt < self.failures.get(index, 0):
            if self.kind == "exit":
                os._exit(13)
            raise InjectedFault(f"injected fault: task {index}, attempt {attempt}")


@dataclass(frozen=True)
class TaskTelemetry:
    """In-worker measurements that ride back with a task's result.

    ``seconds`` is the wall time of the successful attempt measured
    *inside* the worker (queueing and pickling excluded); ``worker`` is
    the executing process's pid.  Both are observability-only — they are
    stripped before results reach any merge.
    """

    seconds: float
    worker: int


def _run_task(
    function: Callable[..., T],
    arguments: tuple,
    index: int,
    attempt: int,
    injector: Callable[[int, int], None] | None,
    timed: bool = False,
) -> T | tuple[T, TaskTelemetry]:
    """One attempt of one task (module level: picklable for pool transport).

    With ``timed=True`` the return value is ``(result, TaskTelemetry)``
    — the telemetry channel of the observability layer.
    """
    if injector is not None:
        injector(index, attempt)
    if not timed:
        return function(*arguments)
    started = time.perf_counter()
    value = function(*arguments)
    return value, TaskTelemetry(time.perf_counter() - started, os.getpid())


def execute_tasks(
    function: Callable[..., T],
    argument_tuples: Sequence[tuple],
    workers: int = 1,
    policy: RetryPolicy | None = None,
    serial: bool | None = None,
    fault_injector: Callable[[int, int], None] | None = None,
    on_result: Callable[[int, T], None] | None = None,
    completed: dict[int, T] | None = None,
    on_event: Callable[[str, dict], None] | None = None,
) -> list[T]:
    """Run ``function(*argument_tuples[i])`` for every ``i``, fault-tolerantly.

    Returns results **in task order** regardless of completion order.
    ``completed`` pre-loads already-known results by index (checkpoint
    resume); those tasks are never executed.  ``on_result(index, result)``
    fires in the parent process as each task finishes — the checkpoint
    journaling hook.  ``serial`` forces the in-process path (``None``
    auto-selects: serial when one worker or at most one outstanding task).

    ``on_event(name, payload)`` is the observability hook, fired in the
    parent:  ``("task_finished", {index, attempts, seconds, worker})``
    when a task completes (``seconds``/``worker`` measured in-worker via
    :class:`TaskTelemetry`), ``("task_failed", {index, attempt, kind,
    error})`` for each failed attempt that will be retried (``kind`` is
    ``"error"``, ``"timeout"`` or ``"pool"``), and ``("pool_recycled",
    {})`` when the pool is torn down and rebuilt.  Passing ``on_event``
    enables in-task timing; leaving it ``None`` keeps the execution path
    identical to the un-instrumented engine.

    Retry correctness is the caller's contract: tasks must be pure
    (deterministic in their arguments, no side effects that accumulate
    across attempts), which every seed-disciplined shard kernel satisfies.
    """
    policy = policy or RetryPolicy()
    tasks = list(argument_tuples)
    results: dict[int, Any] = dict(completed or {})
    unknown = [index for index in results if not 0 <= index < len(tasks)]
    if unknown:
        raise ValueError(f"completed indices out of range: {sorted(unknown)}")
    outstanding = [index for index in range(len(tasks)) if index not in results]
    if serial is None:
        serial = workers == 1 or len(outstanding) <= 1
    if outstanding:
        if serial:
            _execute_serial(function, tasks, outstanding, policy,
                            fault_injector, on_result, results, on_event)
        else:
            _execute_pooled(function, tasks, outstanding, workers, policy,
                            fault_injector, on_result, results, on_event)
    return [results[index] for index in range(len(tasks))]


def _execute_serial(
    function: Callable[..., T],
    tasks: list[tuple],
    outstanding: Sequence[int],
    policy: RetryPolicy,
    fault_injector: Callable[[int, int], None] | None,
    on_result: Callable[[int, T], None] | None,
    results: dict[int, Any],
    on_event: Callable[[str, dict], None] | None = None,
) -> None:
    """In-process execution with retry (timeouts are not enforceable here)."""
    timed = on_event is not None
    for index in outstanding:
        failures = 0
        while True:
            try:
                outcome = _run_task(function, tasks[index], index, failures,
                                    fault_injector, timed)
            except Exception as error:
                failures += 1
                if on_event is not None:
                    on_event("task_failed", {"index": index,
                                             "attempt": failures - 1,
                                             "kind": "error",
                                             "error": repr(error)})
                if failures > policy.retries:
                    raise ShardExecutionError(index, failures, error) from error
                time.sleep(policy.delay(failures))
            else:
                if timed:
                    result, telemetry = outcome
                    on_event("task_finished", {"index": index,
                                               "attempts": failures + 1,
                                               "seconds": telemetry.seconds,
                                               "worker": telemetry.worker})
                else:
                    result = outcome
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
                break


def _failure_kind(error: BaseException) -> str:
    if isinstance(error, _FutureTimeout):
        return "timeout"
    if isinstance(error, BrokenExecutor):
        return "pool"
    return "error"


def _execute_pooled(
    function: Callable[..., T],
    tasks: list[tuple],
    outstanding: Sequence[int],
    workers: int,
    policy: RetryPolicy,
    fault_injector: Callable[[int, int], None] | None,
    on_result: Callable[[int, T], None] | None,
    results: dict[int, Any],
    on_event: Callable[[str, dict], None] | None = None,
) -> None:
    """Process-pool execution in waves: submit all pending, harvest, retry.

    A wave submits every pending task, then harvests each future with the
    policy timeout.  Tasks that raised are charged a failed attempt; a
    timeout or a broken executor additionally recycles the pool (the
    former because the stuck worker cannot be cancelled, the latter
    because the executor is unusable), after which only the tasks whose
    results were lost are resubmitted.
    """
    timed = on_event is not None
    remaining: dict[int, int] = {index: 0 for index in outstanding}
    pool: ProcessPoolExecutor | None = None
    pool_size = min(workers, len(remaining))
    stuck = False  # a timed-out task may occupy a worker forever
    try:
        while remaining:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=pool_size)
                stuck = False
            futures = {
                index: pool.submit(_run_task, function, tasks[index], index,
                                   remaining[index], fault_injector, timed)
                for index in sorted(remaining)
            }
            recycle = False
            failed: dict[int, BaseException] = {}
            for index, future in futures.items():
                try:
                    outcome = future.result(timeout=policy.timeout)
                except _FutureTimeout as error:
                    failed[index] = error
                    recycle = stuck = True
                except BrokenExecutor as error:
                    failed[index] = error
                    recycle = True
                except Exception as error:
                    failed[index] = error
                else:
                    if timed:
                        result, telemetry = outcome
                        on_event("task_finished",
                                 {"index": index,
                                  "attempts": remaining[index] + 1,
                                  "seconds": telemetry.seconds,
                                  "worker": telemetry.worker})
                    else:
                        result = outcome
                    results[index] = result
                    del remaining[index]
                    if on_result is not None:
                        on_result(index, result)
            for index, error in failed.items():
                if on_event is not None:
                    on_event("task_failed", {"index": index,
                                             "attempt": remaining[index],
                                             "kind": _failure_kind(error),
                                             "error": repr(error)})
                remaining[index] += 1
                if remaining[index] > policy.retries:
                    raise ShardExecutionError(index, remaining[index],
                                              error) from error
            if recycle:
                pool.shutdown(wait=not stuck, cancel_futures=True)
                pool = None
                if on_event is not None:
                    on_event("pool_recycled", {})
            if remaining and failed:
                time.sleep(policy.delay(max(remaining[index]
                                            for index in failed)))
    finally:
        if pool is not None:
            # Waiting is safe unless a worker is wedged on a timed-out task.
            pool.shutdown(wait=not stuck, cancel_futures=True)
