"""A small Monte-Carlo harness used by every empirical experiment.

The harness standardises three things across the library:

1. **Seeding discipline** — a run takes one experiment seed and derives
   per-batch child streams, so results are reproducible and trial batches
   are independent.
2. **Counting** — trials are Bernoulli (event counters) or categorical
   (PMF estimation over a countable support); both produce estimates with
   confidence intervals from :mod:`repro.stats.intervals`.
3. **Reporting** — results carry enough metadata (trial counts, seeds,
   confidence level) for the benchmark harness to print self-describing
   rows.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from .intervals import Proportion, wilson_interval
from .rng import RandomSource, iter_batches

__all__ = [
    "BernoulliResult",
    "CategoricalResult",
    "run_bernoulli_trials",
    "run_categorical_trials",
    "estimate_event",
]

#: Default number of trials per vectorised batch.
DEFAULT_BATCH_SIZE = 4096


@dataclass(frozen=True)
class BernoulliResult:
    """Outcome of a Bernoulli Monte-Carlo estimation."""

    successes: int
    trials: int
    confidence: float
    seed: int | None

    @property
    def proportion(self) -> Proportion:
        """The estimate with its Wilson confidence interval."""
        return wilson_interval(self.successes, self.trials, self.confidence)

    @property
    def estimate(self) -> float:
        return self.successes / self.trials

    def agrees_with(self, value: float) -> bool:
        """Whether the analytic ``value`` lies inside the interval."""
        return self.proportion.contains(value)

    def __str__(self) -> str:
        return str(self.proportion)


@dataclass(frozen=True)
class CategoricalResult:
    """Outcome of a categorical Monte-Carlo estimation (an empirical PMF)."""

    counts: dict[int, int]
    trials: int
    confidence: float
    seed: int | None
    _cache: dict[int, Proportion] = field(default_factory=dict, compare=False, repr=False)

    def probability(self, category: int) -> Proportion:
        """Estimate (with interval) of the probability of one category."""
        if category not in self._cache:
            self._cache[category] = wilson_interval(
                self.counts.get(category, 0), self.trials, self.confidence
            )
        return self._cache[category]

    def estimate(self, category: int) -> float:
        return self.counts.get(category, 0) / self.trials

    @property
    def support(self) -> list[int]:
        """Observed categories, sorted."""
        return sorted(self.counts)

    def tail_probability(self, category: int) -> Proportion:
        """Estimate of ``Pr[X >= category]`` with interval."""
        successes = sum(count for value, count in self.counts.items() if value >= category)
        return wilson_interval(successes, self.trials, self.confidence)

    def mean(self) -> float:
        """Empirical mean of the category values."""
        return sum(value * count for value, count in self.counts.items()) / self.trials


def run_bernoulli_trials(
    trial: Callable[[RandomSource], bool],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
) -> BernoulliResult:
    """Run ``trials`` independent Bernoulli trials of ``trial``.

    ``trial`` receives a fresh independent :class:`RandomSource` for each
    invocation and returns whether the event occurred.
    """
    _check_trials(trials)
    root = RandomSource(seed)
    successes = 0
    for batch in iter_batches(trials, DEFAULT_BATCH_SIZE):
        batch_source = root.child()
        sources = batch_source.spawn(batch)
        successes += sum(1 for source in sources if trial(source))
    return BernoulliResult(successes, trials, confidence, seed)


def run_categorical_trials(
    trial: Callable[[RandomSource], int],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
) -> CategoricalResult:
    """Run ``trials`` independent categorical trials of ``trial``.

    ``trial`` returns an integer category (e.g. the observed critical-window
    growth γ); the result aggregates the counts into an empirical PMF.
    """
    _check_trials(trials)
    root = RandomSource(seed)
    counts: Counter[int] = Counter()
    for batch in iter_batches(trials, DEFAULT_BATCH_SIZE):
        batch_source = root.child()
        sources = batch_source.spawn(batch)
        counts.update(trial(source) for source in sources)
    return CategoricalResult(dict(counts), trials, confidence, seed)


def estimate_event(
    batch_trial: Callable[[RandomSource, int], int],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> BernoulliResult:
    """Vectorised Bernoulli estimation.

    ``batch_trial(source, size)`` must run ``size`` independent trials using
    ``source`` and return the number of successes.  This is the fast path
    for numpy-vectorisable events (e.g. shift-process disjointness), where
    spawning one :class:`RandomSource` per trial would dominate runtime.
    """
    _check_trials(trials)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    root = RandomSource(seed)
    successes = 0
    for batch in iter_batches(trials, batch_size):
        successes += int(batch_trial(root.child(), batch))
    return BernoulliResult(successes, trials, confidence, seed)


def merge_bernoulli(results: Iterable[BernoulliResult]) -> BernoulliResult:
    """Pool several independent Bernoulli results into one.

    All inputs must share a confidence level.  The pooled seed is ``None``
    because the merged result no longer corresponds to a single stream.
    """
    results = list(results)
    if not results:
        raise ValueError("cannot merge an empty collection of results")
    confidence = results[0].confidence
    if any(result.confidence != confidence for result in results):
        raise ValueError("cannot merge results with differing confidence levels")
    successes = sum(result.successes for result in results)
    trials = sum(result.trials for result in results)
    return BernoulliResult(successes, trials, confidence, None)


def _check_trials(trials: int) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")


__all__.append("merge_bernoulli")
