"""A small Monte-Carlo harness used by every empirical experiment.

The harness standardises three things across the library:

1. **Seeding discipline** — a run takes one experiment seed and derives
   per-batch child streams, so results are reproducible and trial batches
   are independent.
2. **Counting** — trials are Bernoulli (event counters) or categorical
   (PMF estimation over a countable support); both produce estimates with
   confidence intervals from :mod:`repro.stats.intervals`.
3. **Reporting** — results carry enough metadata (trial counts, seeds,
   confidence level) for the benchmark harness to print self-describing
   rows.

Every estimator additionally exposes the observability knobs
``manifest=PATH`` (append a validated run manifest), ``trace=PATH``
(JSONL span trace: ``run`` > ``shards`` > ``merge``), and
``progress=True`` (live stderr progress line) — all off by default and
all strictly read-only with respect to the estimates (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
import time
from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path

from repro.obs import RunObserver, ShardEvent

from ..runconfig import UNSET, RunConfig, resolve_run_config
from .checkpoint import ShardCheckpoint
from .intervals import Proportion, wilson_interval
from .parallel import ShardPlan, resolve_shards, run_sharded
from .rng import RandomSource, iter_batches
from .transport import BernoulliLayout, CategoricalLayout

__all__ = [
    "BernoulliResult",
    "CategoricalResult",
    "run_bernoulli_trials",
    "run_categorical_trials",
    "run_event_trials",
    "estimate_event",
    "merge_bernoulli",
    "merge_categorical",
]

#: Default number of trials per vectorised batch.
DEFAULT_BATCH_SIZE = 4096


@dataclass(frozen=True)
class BernoulliResult:
    """Outcome of a Bernoulli Monte-Carlo estimation."""

    successes: int
    trials: int
    confidence: float
    seed: int | None

    @property
    def proportion(self) -> Proportion:
        """The estimate with its Wilson confidence interval."""
        return wilson_interval(self.successes, self.trials, self.confidence)

    @property
    def estimate(self) -> float:
        return self.successes / self.trials

    def agrees_with(self, value: float) -> bool:
        """Whether the analytic ``value`` lies inside the interval."""
        return self.proportion.contains(value)

    def __str__(self) -> str:
        return str(self.proportion)


@dataclass(frozen=True)
class CategoricalResult:
    """Outcome of a categorical Monte-Carlo estimation (an empirical PMF)."""

    counts: dict[int, int]
    trials: int
    confidence: float
    seed: int | None
    # init=False keeps the memo out of __init__ *and* dataclasses.replace:
    # a replaced copy gets a fresh dict instead of aliasing the original's.
    _cache: dict[int, Proportion] = field(
        default_factory=dict, compare=False, repr=False, init=False
    )

    def probability(self, category: int) -> Proportion:
        """Estimate (with interval) of the probability of one category."""
        if category not in self._cache:
            self._cache[category] = wilson_interval(
                self.counts.get(category, 0), self.trials, self.confidence
            )
        return self._cache[category]

    def estimate(self, category: int) -> float:
        return self.counts.get(category, 0) / self.trials

    @property
    def support(self) -> list[int]:
        """Observed categories, sorted."""
        return sorted(self.counts)

    def tail_probability(self, category: int) -> Proportion:
        """Estimate of ``Pr[X >= category]`` with interval."""
        successes = sum(count for value, count in self.counts.items() if value >= category)
        return wilson_interval(successes, self.trials, self.confidence)

    def mean(self) -> float:
        """Empirical mean of the category values."""
        return sum(value * count for value, count in self.counts.items()) / self.trials


def _bernoulli_shard(
    source: RandomSource,
    shard_trials: int,
    trial: Callable[[RandomSource], bool],
    confidence: float,
) -> BernoulliResult:
    """Shard kernel for :func:`run_bernoulli_trials` (module level: picklable)."""
    successes = 0
    for batch in iter_batches(shard_trials, DEFAULT_BATCH_SIZE):
        successes += sum(1 for s in source.child().spawn(batch) if trial(s))
    return BernoulliResult(successes, shard_trials, confidence, None)


def _categorical_shard(
    source: RandomSource,
    shard_trials: int,
    trial: Callable[[RandomSource], int],
    confidence: float,
) -> CategoricalResult:
    """Shard kernel for :func:`run_categorical_trials`."""
    counts: Counter[int] = Counter()
    for batch in iter_batches(shard_trials, DEFAULT_BATCH_SIZE):
        counts.update(trial(s) for s in source.child().spawn(batch))
    return CategoricalResult(dict(counts), shard_trials, confidence, None)


def _event_shard(
    source: RandomSource,
    shard_trials: int,
    batch_trial: Callable[[RandomSource, int], int],
    batch_size: int,
    confidence: float,
) -> BernoulliResult:
    """Shard kernel for :func:`run_event_trials`.

    ``batch_trial`` is guaranteed to only ever see positive batch sizes:
    vectorised kernels are entitled to reject ``batch <= 0`` as a
    programming error, so empty batches — zero-trial shards, or budgets
    that divide exactly into ``shards * batch_size`` — are skipped here
    without touching the kernel or its random stream.
    """
    successes = 0
    for batch in iter_batches(shard_trials, batch_size):
        if batch <= 0:
            continue
        successes += int(batch_trial(source.child(), batch))
    return BernoulliResult(successes, shard_trials, confidence, None)


def _resolve_plan(
    trials: int, seed: int | None, workers: int | None, shards: int | None,
    rng_plan: str = "spawn",
) -> ShardPlan | None:
    """The shard plan for a run, or ``None`` for the legacy serial path.

    ``shards=None`` with ``workers=1`` keeps the historical single-stream
    derivation (bit-compatible with pre-parallel releases); any explicit
    shard count — or any request for parallelism — switches to the
    sharded derivation, whose results depend only on ``(seed, shards,
    rng_plan)``.  Crucially, ``shards`` defaults via
    :func:`~repro.stats.parallel.resolve_shards` to the fixed
    :data:`~repro.stats.parallel.DEFAULT_SHARDS`, **never** the worker
    count (which would make published numbers depend on how many
    processes — or, for ``workers=None``, how many CPUs — ran them).

    The legacy path exists only under the default ``rng_plan="spawn"``:
    the Philox plan is counter-addressed per shard, so it always builds
    a (possibly single-shard) plan — there is no pre-plan derivation to
    stay bit-compatible with.
    """
    if rng_plan == "spawn" and shards is None and workers == 1:
        return None
    return ShardPlan(trials, resolve_shards(workers, shards), seed, rng_plan)


def _run_observed(observer, execute, merge, seed):
    """Run a sharded estimation, optionally under a :class:`RunObserver`.

    ``execute(observer)`` must return the per-shard results (it forwards
    the observer into :func:`~repro.stats.parallel.run_sharded`);
    ``merge`` pools them.  With an observer the work is wrapped in the
    canonical span tree (``run`` > ``shards`` / ``merge``) and
    ``observer.finish`` seals progress, trace, and manifest.
    """
    if observer is None:
        return replace(merge(execute(None)), seed=seed)
    with observer.span("run"):
        with observer.span("shards"):
            parts = execute(observer)
        with observer.span("merge"):
            merged = replace(merge(parts), seed=seed)
    observer.finish(merged)
    return merged


def _run_legacy_observed(observer, label, trials, seed, compute):
    """Observe the legacy single-stream serial path (``mode="serial-legacy"``).

    The legacy derivation has no shard plan, so the manifest records one
    synthetic shard covering the whole budget, timed around ``compute``.
    """
    if observer is None:
        return compute()
    observer.run_started(trials=trials, shards=1, seed=seed, workers=1,
                         label=label, mode="serial-legacy")
    with observer.span("run"):
        with observer.span("shards"):
            started = time.perf_counter()
            result = compute()
            observer.shard_finished(ShardEvent(
                shard=0, trials=trials,
                seconds=time.perf_counter() - started,
                attempts=1, worker=os.getpid()))
    observer.finish(result)
    return result


def run_bernoulli_trials(
    trial: Callable[[RandomSource], bool],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
) -> BernoulliResult:
    """Run ``trials`` independent Bernoulli trials of ``trial``.

    ``trial`` receives a fresh independent :class:`RandomSource` for each
    invocation and returns whether the event occurred.

    With parallelism requested (``workers`` unset or above 1) the budget
    splits into seed-disciplined shards — ``shards`` if given, else the
    fixed :data:`~repro.stats.parallel.DEFAULT_SHARDS` — fanned out over
    ``workers`` processes; the outcome is bit-identical for fixed
    ``(seed, shards)`` at any worker count.  A non-picklable ``trial``
    (lambda/closure) degrades to in-process execution with the same
    sharded result.  ``retries``/``timeout``/``checkpoint`` configure the
    fault-tolerance layer, and ``fingerprint``/``cache`` the v2
    checkpoint keying and content-addressed shard cache (see
    :func:`~repro.stats.parallel.run_sharded`; the legacy serial path
    has no shard plan and therefore never caches).

    ``manifest``/``trace``/``progress`` are the observability knobs
    (run manifest JSON, JSONL span trace, live stderr progress); all are
    read-only with respect to the estimate — see ``docs/OBSERVABILITY.md``.

    ``rng_plan`` selects the shard-stream derivation (``"spawn"`` — the
    published-numbers default — or the counter-based ``"philox"`` fast
    path; see :class:`~repro.stats.parallel.ShardPlan`) and ``transport``
    the shard result channel (see :mod:`repro.stats.transport`); neither
    affects which estimate a fixed plan computes, and plan-dependent
    streams are never silently mixed.

    ``config`` (a :class:`repro.runconfig.RunConfig`) supplies every
    execution knob above in one validated record.  The per-knob keywords
    are deprecated aliases: each one, when passed explicitly, overrides
    the matching config field — defaults are identical either way, so
    existing calls keep their exact fixed-seed results.
    """
    _check_trials(trials)
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, rng_plan=rng_plan,
                             transport=transport).resolve()
    plan = _resolve_plan(trials, seed, cfg.workers, cfg.shards, cfg.rng_plan)
    observer = cfg.observer("bernoulli")
    if plan is None:
        def compute() -> BernoulliResult:
            root = RandomSource(seed)
            successes = 0
            for batch in iter_batches(trials, DEFAULT_BATCH_SIZE):
                batch_source = root.child()
                sources = batch_source.spawn(batch)
                successes += sum(1 for source in sources if trial(source))
            return BernoulliResult(successes, trials, confidence, seed)
        return _run_legacy_observed(observer, "bernoulli", trials, seed, compute)
    kernel = partial(_bernoulli_shard, trial=trial, confidence=confidence)

    def execute(obs: RunObserver | None) -> list[BernoulliResult]:
        return run_sharded(
            kernel, plan, cfg.workers, checkpoint_label="bernoulli",
            observer=obs, layout=BernoulliLayout(confidence),
            **cfg.engine_options(),
        )

    return _run_observed(observer, execute, merge_bernoulli, seed)


def run_categorical_trials(
    trial: Callable[[RandomSource], int],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
) -> CategoricalResult:
    """Run ``trials`` independent categorical trials of ``trial``.

    ``trial`` returns an integer category (e.g. the observed critical-window
    growth γ); the result aggregates the counts into an empirical PMF.
    Sharding/parallelism/fault tolerance, the ``fingerprint``/``cache``
    keying and caching channel, the
    ``manifest``/``trace``/``progress`` observability knobs, the
    ``rng_plan``/``transport`` engine knobs, and the ``config`` record
    (with its deprecated keyword aliases) follow
    :func:`run_bernoulli_trials`.
    """
    _check_trials(trials)
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, rng_plan=rng_plan,
                             transport=transport).resolve()
    plan = _resolve_plan(trials, seed, cfg.workers, cfg.shards, cfg.rng_plan)
    observer = cfg.observer("categorical")
    if plan is None:
        def compute() -> CategoricalResult:
            root = RandomSource(seed)
            counts: Counter[int] = Counter()
            for batch in iter_batches(trials, DEFAULT_BATCH_SIZE):
                batch_source = root.child()
                sources = batch_source.spawn(batch)
                counts.update(trial(source) for source in sources)
            return CategoricalResult(dict(counts), trials, confidence, seed)
        return _run_legacy_observed(observer, "categorical", trials, seed, compute)
    kernel = partial(_categorical_shard, trial=trial, confidence=confidence)

    def execute(obs: RunObserver | None) -> list[CategoricalResult]:
        return run_sharded(
            kernel, plan, cfg.workers, checkpoint_label="categorical",
            observer=obs, layout=CategoricalLayout(confidence),
            **cfg.engine_options(),
        )

    return _run_observed(observer, execute, merge_categorical, seed)


def run_event_trials(
    batch_trial: Callable[[RandomSource, int], int],
    trials: int,
    seed: int | None = 0,
    confidence: float = 0.99,
    batch_size: int = DEFAULT_BATCH_SIZE,
    workers: int | None = UNSET,
    shards: int | None = UNSET,
    retries: int = UNSET,
    timeout: float | None = UNSET,
    checkpoint: str | Path | ShardCheckpoint | None = UNSET,
    checkpoint_label: str = "event",
    fingerprint: str | None = UNSET,
    cache: object | None = UNSET,
    manifest: str | Path | None = UNSET,
    trace: str | Path | None = UNSET,
    progress: bool = UNSET,
    rng_plan: str = UNSET,
    transport: str = UNSET,
    config: RunConfig | None = None,
) -> BernoulliResult:
    """Vectorised Bernoulli estimation.

    ``batch_trial(source, size)`` must run ``size`` independent trials using
    ``source`` and return the number of successes, and is only ever called
    with ``size >= 1`` (empty batches are filtered by the engine, so
    kernels may treat ``size <= 0`` as a programming error).  This is the
    fast path for numpy-vectorisable events (e.g. shift-process
    disjointness), where spawning one :class:`RandomSource` per trial
    would dominate runtime — the :mod:`repro.kernels` batch kernels all
    ride this entry point.  Sharding/parallelism/fault tolerance, the
    ``fingerprint``/``cache`` keying and caching channel, and the
    ``manifest``/``trace``/``progress`` observability knobs follow
    :func:`run_bernoulli_trials`; ``checkpoint_label`` lets callers key
    the checkpoint by their experiment parameters (different events with
    the same ``(trials, shards, seed)`` must not share journal records)
    and doubles as the manifest run label.  Since the v2 key format the
    kernel itself is fingerprinted into the key as well, so two
    *different* ``batch_trial`` callables can no longer silently share a
    journal even under an identical label.

    ``rng_plan``/``transport`` follow :func:`run_bernoulli_trials`; note
    that under ``rng_plan="philox"`` the per-batch stream a kernel's
    ``source.child()`` yields is the counter address ``(seed, shard,
    batch_index)`` — derivable after the fact without replaying the run.

    ``config`` (with its deprecated per-knob keyword aliases) follows
    :func:`run_bernoulli_trials`.  ``estimate_event`` is the historical
    name for this function and remains available as an alias.
    """
    _check_trials(trials)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    cfg = resolve_run_config(config, workers=workers, shards=shards,
                             retries=retries, timeout=timeout,
                             checkpoint=checkpoint, fingerprint=fingerprint,
                             cache=cache, manifest=manifest, trace=trace,
                             progress=progress, rng_plan=rng_plan,
                             transport=transport).resolve()
    plan = _resolve_plan(trials, seed, cfg.workers, cfg.shards, cfg.rng_plan)
    observer = cfg.observer(checkpoint_label)
    if plan is None:
        def compute() -> BernoulliResult:
            root = RandomSource(seed)
            successes = 0
            for batch in iter_batches(trials, batch_size):
                successes += int(batch_trial(root.child(), batch))
            return BernoulliResult(successes, trials, confidence, seed)
        return _run_legacy_observed(observer, checkpoint_label, trials, seed,
                                    compute)
    kernel = partial(_event_shard, batch_trial=batch_trial,
                     batch_size=batch_size, confidence=confidence)

    def execute(obs: RunObserver | None) -> list[BernoulliResult]:
        return run_sharded(
            kernel, plan, cfg.workers, checkpoint_label=checkpoint_label,
            observer=obs, layout=BernoulliLayout(confidence),
            **cfg.engine_options(),
        )

    return _run_observed(observer, execute, merge_bernoulli, seed)


#: Historical alias for :func:`run_event_trials` (the pre-kernels name).
estimate_event = run_event_trials


def merge_bernoulli(results: Iterable[BernoulliResult]) -> BernoulliResult:
    """Pool several independent Bernoulli results into one.

    All inputs must share a confidence level.  The pooled seed is ``None``
    because the merged result no longer corresponds to a single stream.
    Degenerate zero-trial inputs (e.g. empty shards recorded by an older
    checkpoint, or manual merges of optional legs) are filtered out —
    they contribute nothing and their ``.proportion``/``.estimate`` are
    undefined — but at least one non-degenerate input is required.
    """
    results = [result for result in list(results) if result.trials > 0]
    if not results:
        raise ValueError("cannot merge: no results with trials > 0")
    confidence = results[0].confidence
    if any(result.confidence != confidence for result in results):
        raise ValueError("cannot merge results with differing confidence levels")
    successes = sum(result.successes for result in results)
    trials = sum(result.trials for result in results)
    return BernoulliResult(successes, trials, confidence, None)


def merge_categorical(results: Iterable[CategoricalResult]) -> CategoricalResult:
    """Pool several independent categorical results into one empirical PMF.

    The counter-summing analogue of :func:`merge_bernoulli`: per-category
    counts add, trial totals add, and — addition being commutative — the
    merged PMF is independent of merge order.  All inputs must share a
    confidence level; the pooled seed is ``None``.  Degenerate zero-trial
    inputs are filtered out (as in :func:`merge_bernoulli`).
    """
    results = [result for result in list(results) if result.trials > 0]
    if not results:
        raise ValueError("cannot merge: no results with trials > 0")
    confidence = results[0].confidence
    if any(result.confidence != confidence for result in results):
        raise ValueError("cannot merge results with differing confidence levels")
    counts: Counter[int] = Counter()
    for result in results:
        counts.update(result.counts)
    trials = sum(result.trials for result in results)
    return CategoricalResult(dict(counts), trials, confidence, None)


def _check_trials(trials: int) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
