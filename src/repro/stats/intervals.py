"""Confidence intervals and point estimates for binomial proportions.

The Monte-Carlo halves of every experiment estimate probabilities of events
(a window of size γ, disjoint shifts, bug manifestation).  Each estimate is
a binomial proportion, and the benchmarks report it with a confidence
interval so that "matches the paper's closed form" is a checkable statement
rather than a vibe.

Two interval constructions are provided:

* :func:`wilson_interval` — the Wilson score interval.  Good coverage for
  moderate counts, never escapes ``[0, 1]``, cheap.  This is the default
  everywhere.
* :func:`clopper_pearson_interval` — the exact (conservative) interval via
  the beta-distribution quantile identity.  Used in tests of the interval
  code itself and available for callers who want guaranteed coverage.

Both are implemented from scratch (the Clopper–Pearson case through a
continued-fraction incomplete-beta evaluation) so the library's core has no
SciPy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Proportion",
    "wilson_interval",
    "clopper_pearson_interval",
    "normal_quantile",
]


@dataclass(frozen=True)
class Proportion:
    """A binomial proportion estimate with a confidence interval.

    Attributes
    ----------
    successes, trials:
        The raw counts the estimate was computed from.
    estimate:
        The maximum-likelihood point estimate ``successes / trials``.
    low, high:
        The confidence-interval endpoints.
    confidence:
        The nominal coverage of ``[low, high]``, e.g. ``0.99``.
    """

    successes: int
    trials: int
    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the confidence interval."""
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        """Half the width of the interval — a resolution measure."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.estimate:.6f} "
            f"[{self.low:.6f}, {self.high:.6f}] "
            f"({self.successes}/{self.trials} @ {self.confidence:.0%})"
        )


def normal_quantile(probability: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Uses the Acklam rational approximation (relative error below 1.15e-9
    over the full open interval), refined with one Halley step against the
    exact CDF computed from :func:`math.erfc`.  Accurate to close to machine
    precision, which is far tighter than any Monte-Carlo use requires.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")

    # Acklam's coefficients.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425

    if probability < p_low:
        q = math.sqrt(-2.0 * math.log(probability))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif probability <= 1.0 - p_low:
        q = probability - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - probability))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)

    # One Halley refinement step against the exact normal CDF.
    cdf = 0.5 * math.erfc(-x / math.sqrt(2.0))
    pdf = math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)
    error = cdf - probability
    if pdf > 0.0:
        u = error / pdf
        x -= u / (1.0 + x * u / 2.0)
    return x


def wilson_interval(successes: int, trials: int, confidence: float = 0.99) -> Proportion:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    successes, trials:
        Event counts; requires ``0 <= successes <= trials`` and
        ``trials >= 1``.
    confidence:
        Nominal two-sided coverage in ``(0, 1)``.
    """
    _check_counts(successes, trials, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2.0 * trials)) / denom
    spread = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
    low = max(0.0, centre - spread)
    high = min(1.0, centre + spread)
    # Degenerate counts: the MLE endpoint itself must be inside the interval
    # (float rounding of centre ± spread can otherwise exclude 0 or 1).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return Proportion(successes, trials, p_hat, low, high, confidence)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.99
) -> Proportion:
    """Exact (Clopper–Pearson) interval for a binomial proportion.

    Conservative: actual coverage is at least the nominal level.  Endpoints
    are beta-distribution quantiles, solved by bisection on a from-scratch
    regularised incomplete beta function.
    """
    _check_counts(successes, trials, confidence)
    alpha = 1.0 - confidence
    p_hat = successes / trials
    if successes == 0:
        low = 0.0
    else:
        low = _beta_quantile(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        high = 1.0
    else:
        high = _beta_quantile(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return Proportion(successes, trials, p_hat, low, high, confidence)


def _check_counts(successes: int, trials: int, confidence: float) -> None:
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_cdf(x: float, a: float, b: float) -> float:
    """Regularised incomplete beta I_x(a, b) via Lentz continued fractions."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    front = math.exp(log_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(x, a, b) / a
    return 1.0 - math.exp(
        b * math.log1p(-x) + a * math.log(x) - _log_beta(b, a)
    ) * _beta_continued_fraction(1.0 - x, b, a) / b


def _beta_continued_fraction(x: float, a: float, b: float) -> float:
    """Lentz's algorithm for the incomplete-beta continued fraction."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    result = d
    for m in range(1, 300):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        result *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        result *= delta
        if abs(delta - 1.0) < 1e-14:
            return result
    return result  # pragma: no cover - 300 iterations always suffices here


def _beta_quantile(probability: float, a: float, b: float) -> float:
    """Quantile of Beta(a, b) by bisection on the regularised CDF."""
    low, high = 0.0, 1.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if _beta_cdf(mid, a, b) < probability:
            low = mid
        else:
            high = mid
        if high - low < 1e-13:
            break
    return (low + high) / 2.0
