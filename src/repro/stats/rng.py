"""Seeded random-number streams and the geometric sampling primitives.

Every stochastic component of the library draws randomness through this
module rather than calling :mod:`numpy.random` directly.  That gives us:

* **Reproducibility** — every experiment takes a seed and produces the same
  output for the same seed, across processes.
* **Independent substreams** — a single experiment seed can be split into
  arbitrarily many statistically independent child streams (one per thread,
  per trial batch, per process stage) using ``numpy``'s ``SeedSequence``
  spawning, so adding a new consumer of randomness never perturbs existing
  ones.
* **The paper's distributions as first-class samplers** — the settling
  process consumes Bernoulli(s) swap outcomes and the shift process consumes
  geometric shifts with ``Pr[s_i = k] = (1 - beta) * beta**k``; both are
  provided here in scalar and vectorised forms.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator

import numpy as np

__all__ = ["RandomSource", "spawn_sources", "DEFAULT_SEED"]

#: Seed used by convenience constructors when the caller does not supply one.
DEFAULT_SEED = 0x5EED

#: The recognised shard-stream derivations (the engine's ``rng_plan`` knob).
#: ``"spawn"`` is the historical ``SeedSequence``-spawning discipline every
#: published number was produced under; ``"philox"`` derives any stream
#: directly from counters (see :class:`PhiloxSource`).
RNG_PLANS = ("spawn", "philox")


def resolve_rng_plan(rng_plan: str) -> str:
    """Validate an ``rng_plan`` name; returns it unchanged.

    >>> resolve_rng_plan("spawn")
    'spawn'
    """
    if rng_plan not in RNG_PLANS:
        known = ", ".join(RNG_PLANS)
        raise ValueError(f"unknown rng_plan {rng_plan!r}; known plans: {known}")
    return rng_plan


class RandomSource:
    """A seeded, splittable stream of the random primitives the models need.

    Parameters
    ----------
    seed:
        Any value acceptable to :class:`numpy.random.SeedSequence` — an int,
        a sequence of ints, or an existing ``SeedSequence``.  ``None`` draws
        entropy from the OS (non-reproducible; discouraged outside
        exploratory use).

    Examples
    --------
    >>> src = RandomSource(7)
    >>> flip = src.bernoulli(0.5)
    >>> isinstance(flip, bool)
    True
    >>> shifts = src.geometric_array(0.5, size=4)
    >>> shifts.shape
    (4,)
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = DEFAULT_SEED):
        if isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)
        self._generator = np.random.Generator(np.random.PCG64(self._sequence))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._generator

    def spawn(self, count: int) -> list["RandomSource"]:
        """Split off ``count`` statistically independent child sources."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [RandomSource(child) for child in self._sequence.spawn(count)]

    def child(self) -> "RandomSource":
        """Split off a single independent child source."""
        return self.spawn(1)[0]

    # ------------------------------------------------------------------
    # Scalar primitives
    # ------------------------------------------------------------------

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability.

        Probabilities of exactly 0 and 1 short-circuit without consuming
        randomness, so deterministic memory models (``s = 0`` pairs under
        SC) do not advance the stream.
        """
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return bool(self._generator.random() < probability)

    def geometric(self, beta: float) -> int:
        """Sample ``k >= 0`` with ``Pr[k] = (1 - beta) * beta**k``.

        This is the "shift" distribution of Definition 1 in the paper; for
        ``beta = 1/2`` it is ``Pr[k] = 2**-(k+1)``.  The distribution counts
        *failures before the first success* of a Bernoulli(1 - beta)
        process, hence the ``- 1`` relative to numpy's 1-based geometric.
        """
        _check_beta(beta)
        if beta == 0.0:
            return 0
        return int(self._generator.geometric(1.0 - beta)) - 1

    def uniform_int(self, low: int, high: int) -> int:
        """Sample an integer uniformly from ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return int(self._generator.integers(low, high + 1))

    # ------------------------------------------------------------------
    # Vectorised primitives
    # ------------------------------------------------------------------

    def bernoulli_array(self, probability: float, size: int | tuple[int, ...]) -> np.ndarray:
        """Vectorised :meth:`bernoulli`; returns a boolean array."""
        if probability <= 0.0:
            return np.zeros(size, dtype=bool)
        if probability >= 1.0:
            return np.ones(size, dtype=bool)
        return self._generator.random(size) < probability

    def geometric_array(self, beta: float, size: int | tuple[int, ...]) -> np.ndarray:
        """Vectorised :meth:`geometric`; returns an int64 array of shifts."""
        _check_beta(beta)
        if beta == 0.0:
            return np.zeros(size, dtype=np.int64)
        return self._generator.geometric(1.0 - beta, size=size).astype(np.int64) - 1

    def type_array(self, store_probability: float, size: int) -> np.ndarray:
        """Sample an instruction-type vector: ``True`` marks a store.

        This is the program-generation primitive of §3.1.1: each of the
        ``size`` body instructions is a ST with probability ``p``
        independently.
        """
        return self.bernoulli_array(store_probability, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(entropy={self._sequence.entropy!r})"


def spawn_sources(seed: int | None, count: int) -> list[RandomSource]:
    """Create ``count`` independent sources from one experiment seed."""
    return RandomSource(seed).spawn(count)


def _philox_key(seed: int, path: tuple[int, ...]) -> np.ndarray:
    """The 128-bit Philox key for one ``(seed, path)`` counter address.

    A SHA-256 digest of the textual address, truncated to the two 64-bit
    key words Philox consumes.  Distinct addresses get independent keys
    (collisions are 2^-128 events); the derivation involves no Python
    hash randomisation and no process state, so the same address yields
    the same stream on every machine.
    """
    payload = "philox:" + repr(seed) + ":" + ":".join(str(p) for p in path)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return np.frombuffer(digest[:16], dtype=np.uint64).copy()


class PhiloxSource(RandomSource):
    """A :class:`RandomSource` whose stream is a pure function of counters.

    Where the spawn plan derives shard streams by *pre-spawning*
    ``SeedSequence`` children (stateful, and the children must be built —
    and shipped — up front), a Philox source is addressed directly by
    ``(seed, path)``: the ``path`` is a tuple of counter indices (shard
    index, batch index, per-trial index, ...), and the underlying
    counter-based :class:`numpy.random.Philox` bit generator is keyed by
    a digest of that address alone.  Consequences:

    * any shard/batch stream is derivable *after the fact* from its
      indices — nothing needs pre-spawning;
    * pickling ships only ``(seed, path)`` (two small ints and a tuple),
      never generator state — workers rebuild the stream locally;
    * :meth:`child`/:meth:`spawn` extend the path with sequential
      indices, so the ``i``-th child of the shard-``s`` source is exactly
      ``PhiloxSource(seed, (s, i))`` — the engine's kernels compose
      unchanged.

    The draws of a Philox stream differ from the spawn plan's PCG64
    streams bit-for-bit (same laws, different numbers), which is why the
    engine keys checkpoints and caches by the plan (see
    :func:`repro.stats.checkpoint.plan_key`).

    Note the ship-fresh contract implied by :meth:`__reduce__`: a pickled
    source reconstructs at its *initial* state (consumed draws and the
    child counter are not carried).  The engine only ever ships untouched
    shard sources, which is precisely what makes the no-state transport
    sound.
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = DEFAULT_SEED,
                 path: tuple[int, ...] = ()):
        if isinstance(seed, np.random.SeedSequence):
            seed = seed.entropy
        if seed is None:
            seed = int(np.random.SeedSequence().entropy)
        self._seed = int(seed)
        self._path = tuple(int(index) for index in path)
        self._children = 0
        self._generator = np.random.Generator(
            np.random.Philox(key=_philox_key(self._seed, self._path))
        )

    @property
    def seed(self) -> int:
        """The (always concrete) experiment seed of this stream's address."""
        return self._seed

    @property
    def path(self) -> tuple[int, ...]:
        """The counter address of this stream under its seed."""
        return self._path

    def spawn(self, count: int) -> list["PhiloxSource"]:
        """Split off ``count`` children at the next ``count`` path indices."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        start = self._children
        self._children += count
        return [PhiloxSource(self._seed, self._path + (start + offset,))
                for offset in range(count)]

    def __reduce__(self):
        return (PhiloxSource, (self._seed, self._path))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhiloxSource(seed={self._seed!r}, path={self._path!r})"


def philox_stream(seed: int, shard: int, batch: int | None = None) -> PhiloxSource:
    """The Philox-plan stream at a ``(seed, shard[, batch])`` counter address.

    ``philox_stream(seed, s)`` is the shard-``s`` source the engine hands
    a shard kernel under ``rng_plan="philox"``; ``philox_stream(seed, s,
    b)`` is the stream its ``b``-th ``child()`` call yields (batch ``b``
    of shard ``s``) — the direct derivation needs neither the plan
    geometry nor any spawning history.
    """
    path = (shard,) if batch is None else (shard, batch)
    return PhiloxSource(seed, path)


__all__ += ["RNG_PLANS", "resolve_rng_plan", "PhiloxSource", "philox_stream"]


def _check_beta(beta: float) -> None:
    if not 0.0 <= beta < 1.0:
        raise ValueError(f"geometric ratio beta must lie in [0, 1), got {beta}")


def iter_batches(total: int, batch_size: int) -> Iterator[int]:
    """Yield batch sizes covering ``total`` trials in ``batch_size`` chunks.

    A convenience for Monte-Carlo loops that want vectorised batches with an
    exact total:

    >>> list(iter_batches(10, 4))
    [4, 4, 2]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    remaining = total
    while remaining > 0:
        step = min(batch_size, remaining)
        yield step
        remaining -= step


__all__.append("iter_batches")
