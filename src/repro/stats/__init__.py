"""Statistics substrate: seeded RNG streams, intervals, Monte-Carlo harness.

This subpackage is the only place in the library that touches
:mod:`numpy.random`; every stochastic model takes a
:class:`~repro.stats.rng.RandomSource` so experiments are reproducible and
splittable.
"""

from .bootstrap import BootstrapInterval, bootstrap_mean_interval
from .checkpoint import ShardCheckpoint, kernel_fingerprint, plan_key
from .convergence import BatchSummary, required_trials, standard_error, summarise_batches
from .faults import (
    InjectedFault,
    RetryPolicy,
    ScriptedFaults,
    ShardExecutionError,
)
from .intervals import (
    Proportion,
    clopper_pearson_interval,
    normal_quantile,
    wilson_interval,
)
from .montecarlo import (
    BernoulliResult,
    CategoricalResult,
    estimate_event,
    merge_bernoulli,
    merge_categorical,
    run_bernoulli_trials,
    run_categorical_trials,
    run_event_trials,
)
from .parallel import (
    DEFAULT_SHARDS,
    ShardPlan,
    parallel_map,
    plan_shards,
    resolve_shards,
    resolve_workers,
    run_sharded,
)
from .rng import (
    DEFAULT_SEED,
    RNG_PLANS,
    PhiloxSource,
    RandomSource,
    iter_batches,
    philox_stream,
    resolve_rng_plan,
    spawn_sources,
)
from .sequential import estimate_to_precision

__all__ = [
    "BatchSummary",
    "BootstrapInterval",
    "bootstrap_mean_interval",
    "BernoulliResult",
    "CategoricalResult",
    "DEFAULT_SEED",
    "DEFAULT_SHARDS",
    "InjectedFault",
    "PhiloxSource",
    "RNG_PLANS",
    "Proportion",
    "RandomSource",
    "RetryPolicy",
    "ScriptedFaults",
    "ShardCheckpoint",
    "ShardExecutionError",
    "clopper_pearson_interval",
    "estimate_event",
    "estimate_to_precision",
    "iter_batches",
    "kernel_fingerprint",
    "merge_bernoulli",
    "merge_categorical",
    "normal_quantile",
    "parallel_map",
    "philox_stream",
    "plan_key",
    "plan_shards",
    "resolve_rng_plan",
    "required_trials",
    "resolve_shards",
    "resolve_workers",
    "run_bernoulli_trials",
    "run_categorical_trials",
    "run_event_trials",
    "run_sharded",
    "ShardPlan",
    "spawn_sources",
    "standard_error",
    "summarise_batches",
    "wilson_interval",
]
