"""``repro.runconfig`` — the unified execution context for the engine.

Every trial-based estimator in the library runs on the same sharded
Monte-Carlo engine, and the engine has grown ~13 execution knobs:
parallelism (``workers``/``shards``), fault tolerance
(``retries``/``timeout``/``checkpoint``), keying and caching
(``fingerprint``/``cache``), observability
(``manifest``/``trace``/``progress``), and the kernel/stream/transport
selections (``backend``/``rng_plan``/``transport``).  Hand-threading
those through every estimator, sweep, and CLI path produced real bugs —
flags parsed but silently dropped on some paths — so :class:`RunConfig`
collapses them into one frozen, validated record with a **single
resolution point** (:meth:`RunConfig.resolve`):

>>> from repro.runconfig import RunConfig
>>> config = RunConfig(workers=4, retries=2, rng_plan="philox")
>>> # estimate_non_manifestation(TSO, 2, 100_000, config=config)

Design rules:

* **One record, one resolve.**  ``resolve()`` validates every knob
  (unknown ``rng_plan``/``transport``/``backend`` names raise), applies
  the calling driver's native backend default, and rejects backends the
  driver does not implement (``backend="fused"`` exists only on the
  joined-model paths) — so an invalid combination fails loudly at the
  call site instead of being silently ignored downstream.
* **Experiment identity stays out.**  ``trials``/``seed``/model
  parameters are *what* is estimated; ``RunConfig`` is *how* the
  estimation executes.  Of its fields, only ``shards``, ``rng_plan``,
  and ``fingerprint`` enter the statistical/computational identity (the
  v2 ``plan_key``; see :meth:`plan_key_inputs`) — everything else is a
  scheduling or observability concern that can never change a merged
  number.
* **Keyword aliases keep working.**  Every estimator still accepts the
  historical per-knob keywords; they are deprecated aliases that fold
  into the config via :func:`resolve_run_config` (an explicit keyword
  overrides the same field of a passed ``config``).  Defaults are
  identical, so fixed-seed outputs and v2 plan keys are byte-for-byte
  unchanged.  See ``docs/API.md`` ("RunConfig") for the knob table and
  the deprecation policy.
* **The CLI builds exactly one.**  :meth:`RunConfig.from_args` maps the
  global engine flags onto the config in one place; every subcommand
  handler forwards ``args.run_config`` instead of hand-picking keywords,
  so a new knob is a one-line addition (field + flag), not a repo-wide
  sweep.

This module imports nothing from the rest of the package at module
level (validators and the observer are imported lazily inside methods),
so any layer — stats engine, estimators, CLI, a future service front
end — can depend on it without import cycles.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # real types without runtime import cycles
    from repro.cache.store import ShardStore
    from repro.obs import RunObserver
    from repro.stats.checkpoint import ShardCheckpoint

__all__ = ["UNSET", "RunConfig", "resolve_run_config"]


class _Unset:
    """Sentinel type for "keyword alias not passed" (singleton ``UNSET``)."""

    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: Default for the estimators' deprecated per-knob keyword aliases:
#: distinguishes "caller said nothing" (the ``config``/default value
#: applies) from an explicit override, including explicit ``None``.
UNSET: Any = _Unset()


def _knob(default: Any, cli: str | None, args: str | None = None,
          doc: str = "", **extra: Any) -> Any:
    """A ``RunConfig`` field with its CLI binding in the metadata.

    ``cli`` is the command-line flag serving the knob (``None`` for the
    API-only knobs); ``args`` the ``argparse`` attribute it parses into
    when it differs from the field name; ``doc`` a one-line summary used
    to *generate* the README flag table and the ``--help`` epilog (see
    :meth:`RunConfig.flag_table_markdown`).  The docs-consistency suite
    walks this metadata to keep the config, the CLI, and ``docs/API.md``
    from drifting apart.
    """
    metadata = {"cli": cli, "args": args or (cli.lstrip("-").replace("-", "_")
                                             if cli else None), "doc": doc}
    metadata.update(extra)
    return field(default=default, metadata=metadata)


@dataclass(frozen=True)
class RunConfig:
    """Every execution knob of the sharded engine, in one validated record.

    Fields (all optional — the default config is the historical serial
    behaviour of every estimator):

    ``workers``
        Worker processes (``None`` = one per CPU; ``1`` = serial).
    ``shards``
        Seed-disciplined shard count — part of a run's statistical
        identity.  ``None`` defaults to the fixed
        :data:`~repro.stats.parallel.DEFAULT_SHARDS` whenever
        parallelism is requested, never the worker count.
    ``retries`` / ``timeout``
        Fault tolerance: extra attempts per failed shard, and the
        per-shard pooled timeout in seconds.
    ``checkpoint``
        Resumable shard journal (path or pre-keyed
        :class:`~repro.stats.checkpoint.ShardCheckpoint`).
    ``fingerprint``
        Explicit kernel fingerprint for the v2 plan key (API-only;
        derived automatically when unset).
    ``cache``
        Content-addressed shard result cache (``"auto"``, a directory,
        or a :class:`~repro.cache.ShardStore`).
    ``manifest`` / ``trace`` / ``progress``
        The observability knobs; :meth:`observer` derives the
        :class:`~repro.obs.RunObserver` they imply.
    ``backend``
        Simulation kernel (``"scalar"``/``"vectorized"``/``"fused"``);
        ``None`` keeps each driver's native default, and drivers
        without a fused kernel reject ``"fused"`` at :meth:`resolve`.
    ``rng_plan``
        Shard-stream derivation (``"spawn"`` reproduces every published
        number; ``"philox"`` is the counter-addressed fast path).  Part
        of the plan key — spawn and philox runs are never silently
        mixed.
    ``transport``
        Shard result channel (``"auto"``/``"pickle"``/``"shm"``); a
        scheduling concern, absent from every key.
    """

    workers: int | None = _knob(
        1, "--workers",
        doc="worker processes (`1` = serial; `None` = one per CPU)")
    shards: int | None = _knob(
        None, "--shards",
        doc="seed-disciplined shard count — part of the run's statistical "
            "identity (unset: 16 fixed shards whenever parallelism is on)")
    retries: int = _knob(
        0, "--retries",
        doc="extra attempts per failed shard, with exponential backoff")
    timeout: float | None = _knob(
        None, "--shard-timeout",
        doc="per-shard timeout in seconds for pooled execution")
    checkpoint: "str | Path | ShardCheckpoint | None" = _knob(
        None, "--checkpoint",
        doc="append-only JSONL journal of completed shards; re-runs resume "
            "the missing shards only")
    fingerprint: str | None = _knob(
        None, None,
        doc="explicit kernel fingerprint for the v2 plan key (derived from "
            "the kernel when unset)")
    cache: "str | Path | ShardStore | None" = _knob(
        None, "--cache",
        doc="content-addressed shard result cache (`\"auto\"` or a directory)")
    manifest: str | Path | None = _knob(
        None, "--manifest",
        doc="append a validated run manifest (JSON) to this file")
    trace: str | Path | None = _knob(
        None, "--trace",
        doc="write a JSONL span trace of the run to this file")
    progress: bool | Callable[..., None] = _knob(
        False, "--progress",
        doc="live stderr progress line (shards done, trials/s, ETA), or a "
            "snapshot callback")
    backend: str | None = _knob(
        None, "--backend",
        doc="simulation kernel: `scalar`, `vectorized`, or `fused` (unset: "
            "each driver's native default)")
    rng_plan: str = _knob(
        "spawn", "--rng-plan",
        doc="shard-stream derivation: `spawn` (published numbers) or "
            "`philox` (counter-addressed fast path)")
    transport: str = _knob(
        "auto", "--transport",
        doc="shard result channel: `auto`, `pickle`, or `shm` (scheduling "
            "only — never changes a number)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_args(cls, args: Any) -> "RunConfig":
        """The config implied by parsed CLI ``args`` — the one builder.

        Reads each knob's ``argparse`` attribute (from the field
        metadata; missing attributes keep the field default, so the
        builder works for every subcommand regardless of which flags its
        parser declares) and validates the result.  Replaces the
        per-subcommand keyword lists that historically dropped flags.
        """
        values = {
            spec.name: getattr(args, spec.metadata["args"])
            for spec in fields(cls)
            if spec.metadata.get("args") and hasattr(args, spec.metadata["args"])
        }
        return cls(**values).resolve()

    @classmethod
    def cli_bindings(cls) -> dict[str, str | None]:
        """Field name -> CLI flag (``None`` for API-only knobs)."""
        return {spec.name: spec.metadata.get("cli") for spec in fields(cls)}

    @classmethod
    def flag_table_markdown(cls) -> str:
        """The canonical engine-knob table, generated from the fields.

        One markdown row per knob — field name, CLI flag (or *API-only*),
        default, and the one-line ``doc`` from the field metadata.  The
        README embeds this table verbatim between ``engine-flags`` marker
        comments and the docs-consistency suite regenerates and compares
        it, so the flag table can never again lag a newly added knob
        (``--transport`` shipped with no README mention once).
        """
        lines = ["| knob | CLI flag | default | what it does |",
                 "|---|---|---|---|"]
        for spec in fields(cls):
            flag = spec.metadata.get("cli")
            flag_cell = f"`{flag}`" if flag else "*(API-only)*"
            default = spec.default
            default_cell = f"`{default!r}`" if default is not None else "`None`"
            lines.append(f"| `{spec.name}` | {flag_cell} | {default_cell} "
                         f"| {spec.metadata.get('doc', '')} |")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire format (the service API serialises configs as JSON)
    # ------------------------------------------------------------------

    #: Field name -> JSON types accepted on the wire.  ``bool`` must be
    #: listed before the ``int`` check bites (it subclasses ``int``), so
    #: fields that do not list it reject booleans explicitly.
    _WIRE_TYPES: ClassVar[dict[str, tuple[type, ...]]] = {
        "workers": (int, type(None)),
        "shards": (int, type(None)),
        "retries": (int,),
        "timeout": (int, float, type(None)),
        "checkpoint": (str, type(None)),
        "fingerprint": (str, type(None)),
        "cache": (str, type(None)),
        "manifest": (str, type(None)),
        "trace": (str, type(None)),
        "progress": (bool,),
        "backend": (str, type(None)),
        "rng_plan": (str,),
        "transport": (str,),
    }

    def to_json_dict(self) -> dict[str, Any]:
        """This config as a JSON-ready wire dict (every field, plain types).

        The wire format carries exactly the thirteen knob fields with
        JSON-native values: paths become strings, and fields holding
        live objects (a pre-keyed ``ShardCheckpoint``, a ``ShardStore``,
        a progress callback) raise ``TypeError`` — the wire is for
        configs a *client* can express, and live objects are
        process-local by nature.  :data:`UNSET` can never leak: it is
        not a valid field value (only the deprecated keyword aliases use
        it) and is rejected here as a safety net.  The round-trip
        ``from_json_dict(json.loads(json.dumps(to_json_dict())))`` is
        byte-identical (tested field by field).
        """
        wire: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is UNSET:
                raise ValueError(
                    f"RunConfig.{spec.name} holds UNSET; the sentinel must "
                    "never reach a constructed config, let alone the wire")
            if isinstance(value, Path):
                value = str(value)
            allowed = self._WIRE_TYPES[spec.name]
            if bool not in allowed and isinstance(value, bool):
                raise TypeError(
                    f"RunConfig.{spec.name}={value!r} is not wire-representable")
            if not isinstance(value, allowed):
                raise TypeError(
                    f"RunConfig.{spec.name}={value!r} is not "
                    "wire-representable; serialise paths as strings and "
                    "keep live objects (stores, checkpoints, callbacks) "
                    "out of wire configs")
            wire[spec.name] = value
        return wire

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any],
                       base: "RunConfig | None" = None) -> "RunConfig":
        """Build (and validate) a config from a wire dict.

        ``payload`` may name any subset of the knob fields; unknown keys
        raise ``ValueError`` (a client typo must fail loudly, not
        silently drop a knob — the exact bug class ``RunConfig`` was
        built to kill) and wrongly-typed values raise ``TypeError``.
        Keys the payload *omits* keep the value from ``base`` (default:
        the all-defaults config) — this is how the service folds a
        request's config over the server's, without an ``UNSET`` ever
        appearing on the wire.  The result is validated via
        :meth:`resolve` before it is returned.
        """
        if not isinstance(payload, dict):
            raise TypeError(f"wire config must be an object, got "
                            f"{type(payload).__name__}")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown RunConfig field(s) on the wire: "
                             f"{unknown}; known fields: {sorted(known)}")
        for name, value in payload.items():
            allowed = cls._WIRE_TYPES[name]
            if ((bool not in allowed and isinstance(value, bool))
                    or not isinstance(value, allowed)):
                names = "/".join(t.__name__ for t in allowed)
                raise TypeError(f"RunConfig.{name} must be {names} on the "
                                f"wire, got {value!r}")
        start = base if base is not None else cls()
        merged = replace(start, **payload) if payload else start
        merged.resolve()  # validate knob values; backend stays un-defaulted
        return merged

    # ------------------------------------------------------------------
    # The single resolution point
    # ------------------------------------------------------------------

    def resolve(
        self,
        *,
        default_backend: str | None = None,
        allowed_backends: tuple[str, ...] | None = None,
    ) -> "RunConfig":
        """Validate every knob and apply the driver's backend default.

        This is the engine's **single resolution point**: each driver
        calls it once, naming its native ``default_backend`` and — when
        it does not implement every kernel — the ``allowed_backends``
        subset (so e.g. ``backend="fused"`` raises on the machine paths
        instead of being silently substituted).  Unknown
        ``rng_plan``/``transport``/``backend`` names, non-positive
        ``workers``/``shards``/``timeout``, and negative ``retries``
        raise ``ValueError``.  Returns a config whose ``backend`` is
        concrete whenever the driver supplied a default.
        """
        from .stats.rng import resolve_rng_plan
        from .stats.transport import resolve_transport

        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        resolve_rng_plan(self.rng_plan)
        resolve_transport(self.transport)
        backend = self.backend if self.backend is not None else default_backend
        if backend is not None:
            from .kernels import resolve_backend

            backend = resolve_backend(backend, allowed=allowed_backends)
        if backend == self.backend:
            return self
        return replace(self, backend=backend)

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------

    def updated(self, **overrides: Any) -> "RunConfig":
        """A copy with every non-``UNSET`` override applied.

        The folding primitive behind the deprecated keyword aliases: an
        estimator collects its per-knob keywords (defaulted to
        :data:`UNSET`) and folds the explicitly-passed ones over the
        ``config`` — so a keyword always wins over the same field of a
        passed config, and an untouched keyword never masks it.
        """
        updates = {name: value for name, value in overrides.items()
                   if value is not UNSET}
        return replace(self, **updates) if updates else self

    def observer(self, label: str = "") -> "RunObserver | None":
        """The :class:`~repro.obs.RunObserver` the observability knobs imply.

        ``None`` when ``manifest``/``trace``/``progress`` are all off —
        the engine's zero-overhead fast path.
        """
        from .obs import RunObserver

        return RunObserver.from_options(manifest=self.manifest,
                                        trace=self.trace,
                                        progress=self.progress, label=label)

    def resolved_shards(self) -> int:
        """The concrete shard count (``shards`` defaulted machine-independently)."""
        from .stats.parallel import resolve_shards

        return resolve_shards(self.workers, self.shards)

    def plan_key_inputs(self) -> dict[str, Any]:
        """This config's contributions to the v2 ``plan_key``.

        Exactly three knobs enter a run's statistical/computational
        identity: the resolved ``shards``, the ``rng_plan``, and the
        kernel ``fingerprint`` (``None`` = derived from the kernel by
        the engine).  Everything else — workers, retries, timeouts,
        cache, observability, transport — is scheduling and can never
        change a merged number.
        """
        return {
            "shards": self.resolved_shards(),
            "rng_plan": self.rng_plan,
            "fingerprint": self.fingerprint,
        }

    def engine_options(self) -> dict[str, Any]:
        """The knobs :func:`~repro.stats.parallel.run_sharded` consumes
        directly, ready to splat (``workers`` and the observer travel
        separately; ``backend`` is resolved before the kernel is built)."""
        return {
            "retries": self.retries,
            "timeout": self.timeout,
            "checkpoint": self.checkpoint,
            "fingerprint": self.fingerprint,
            "cache": self.cache,
            "transport": self.transport,
        }


def resolve_run_config(config: RunConfig | None = None,
                       **overrides: Any) -> RunConfig:
    """Fold deprecated per-knob keyword aliases into one ``RunConfig``.

    ``config=None`` starts from the all-defaults config (the historical
    serial behaviour); ``overrides`` are the estimator's keyword aliases,
    ignored when :data:`UNSET`.  The caller still runs
    :meth:`RunConfig.resolve` to validate and apply its backend policy.
    """
    base = config if config is not None else RunConfig()
    return base.updated(**overrides)
