"""Span-style timing contexts with an opt-in JSONL trace writer.

A long estimator run has internal phases — settle the windows, execute
the shards, merge the results, write the manifest — and "where did the
time go?" should not require a profiler.  :class:`Tracer` provides
nestable spans:

>>> tracer = Tracer()
>>> with tracer.span("settle"):
...     with tracer.span("merge"):
...         pass
>>> [span.name for span in tracer.spans]
['merge', 'settle']

Completed spans record their name, start offset (seconds since the
tracer's origin), duration, nesting depth, and parent span name.  Spans
close innermost-first, so ``tracer.spans`` is in *completion* order —
the same order an opt-in JSONL writer streams them to disk (one JSON
object per line, append-only, crash-tolerant: a torn final line loses
only that span).

The engine emits ``run`` (the whole sharded run), ``shards`` (fan-out
and harvest) and ``merge`` (result merging) spans when tracing is
enabled via the ``trace=`` keyword / ``--trace`` CLI flag; kernels and
callers are free to add their own (``span("settle")``) either on a
:class:`Tracer` they own or on the module-level :func:`span` default.
The reference of engine-emitted spans lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

__all__ = ["Span", "Tracer", "span", "default_tracer"]

#: The in-memory span list is bounded so a module-level default tracer
#: in a long-lived process cannot grow without limit.
MAX_RECORDED_SPANS = 100_000


@dataclass(frozen=True)
class Span:
    """One completed timing context."""

    name: str
    start: float  # seconds since the tracer's origin
    duration: float  # seconds
    depth: int  # 0 = top level
    parent: str | None  # enclosing span name, if any
    attributes: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record


@dataclass
class _OpenSpan:
    name: str
    started: float
    attributes: dict[str, object]


class Tracer:
    """Records nested spans; optionally streams them to a JSONL file.

    Spans measure wall time (``time.perf_counter``); they are
    observability, not statistics — nothing the tracer records feeds
    back into any estimate.  The tracer is single-threaded by design
    (the parent process orchestrates; workers never see it).
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.spans: list[Span] = []
        self._stack: list[_OpenSpan] = []
        self._origin = time.perf_counter()
        self._handle: IO[str] | None = None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[None]:
        """Time a block as a span named ``name`` (nests freely)."""
        self.start_span(name, **attributes)
        try:
            yield
        finally:
            self.end_span()

    def start_span(self, name: str, **attributes: object) -> None:
        """Open a span without a ``with`` block (pair with ``end_span``)."""
        self._stack.append(_OpenSpan(name, time.perf_counter(), dict(attributes)))

    def end_span(self) -> Span:
        """Close the innermost open span and record it."""
        if not self._stack:
            raise RuntimeError("end_span with no open span")
        open_span = self._stack.pop()
        now = time.perf_counter()
        completed = Span(
            name=open_span.name,
            start=open_span.started - self._origin,
            duration=now - open_span.started,
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            attributes=open_span.attributes,
        )
        if len(self.spans) < MAX_RECORDED_SPANS:
            self.spans.append(completed)
        self._write(completed)
        return completed

    def _write(self, completed: Span) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(completed.as_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close every still-open span, then the JSONL handle."""
        while self._stack:
            self.end_span()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    """The module-level tracer behind the bare :func:`span` helper."""
    return _DEFAULT


@contextmanager
def span(name: str, **attributes: object) -> Iterator[None]:
    """Time a block on the module-level default tracer.

    The zero-setup form for exploratory use — library runs that need a
    durable trace should pass ``trace=PATH`` to an estimator (or own a
    :class:`Tracer`) instead.
    """
    with _DEFAULT.span(name, **attributes):
        yield
